"""EXP-A1..A3 benchmark — ablation sweeps over the paper's constants.

Times full gatherings while sweeping the start interval L, the merge
length cap k_max and the viewing path length V; the recorded `rounds`
extra-info reproduces the ablation tables of EXPERIMENTS.md.
"""

import pytest

from repro.core.config import Parameters
from repro.core.simulator import gather
from repro.chains import square_ring

SIDE = 24


@pytest.mark.parametrize("interval", [7, 13, 21])
def test_start_interval(benchmark, interval):
    params = Parameters(start_interval=interval)

    def run():
        return gather(square_ring(SIDE), params=params, engine="vectorized")

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["L"] = interval
    benchmark.extra_info["rounds"] = result.rounds


@pytest.mark.parametrize("k_max", [5, 8, 10])
def test_merge_cap(benchmark, k_max):
    # k_max < passing_distance + 2 loses liveness: a good pair enters the
    # run-passing operation before its middle segment becomes mergeable
    # (EXP-A2 documents the stall); benchmark the live range only.
    params = Parameters(k_max=k_max)

    def run():
        return gather(square_ring(SIDE), params=params, engine="vectorized",
                      max_rounds=4000)

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["k_max"] = k_max
    benchmark.extra_info["rounds"] = result.rounds


def test_merge_cap_liveness_boundary(benchmark):
    """The k_max = 3 stall itself, timed to its (bounded) budget."""
    params = Parameters(k_max=3)

    def run():
        return gather(square_ring(12), params=params, engine="vectorized",
                      max_rounds=800)

    result = benchmark(run)
    benchmark.extra_info["gathered"] = result.gathered


@pytest.mark.parametrize("viewing", [7, 11, 15])
def test_viewing_range(benchmark, viewing):
    params = Parameters(viewing_path_length=viewing)

    def run():
        return gather(square_ring(SIDE), params=params, engine="vectorized",
                      max_rounds=6000)

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["V"] = viewing
    benchmark.extra_info["rounds"] = result.rounds
