"""EXP-B1/B2 benchmark — baselines vs the local algorithm.

Regenerates the strategy comparison (local vs global vision vs compass)
and the Manhattan-Hopper open-chain shortening, timing each strategy on
the same inputs.
"""

import random

import pytest

from repro.core.simulator import gather
from repro.chains import square_ring
from repro.baselines import (
    gather_compass, gather_global_vision, shorten_open_chain,
)

SIDE = 32


def test_local_algorithm(benchmark):
    result = benchmark(lambda: gather(square_ring(SIDE), engine="vectorized"))
    assert result.gathered
    benchmark.extra_info["rounds"] = result.rounds


def test_global_vision_baseline(benchmark):
    result = benchmark(lambda: gather_global_vision(square_ring(SIDE)))
    assert result.gathered
    benchmark.extra_info["rounds"] = result.rounds


def test_compass_baseline(benchmark):
    result = benchmark(lambda: gather_compass(square_ring(SIDE)))
    assert result.gathered
    benchmark.extra_info["rounds"] = result.rounds


def _open_chain(n, seed=9):
    rng = random.Random(seed)
    pts = [(0, 0)]
    for _ in range(n - 1):
        x, y = pts[-1]
        dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
        pts.append((x + dx, y + dy))
    return pts


@pytest.mark.parametrize("n", [64, 256])
def test_manhattan_hopper(benchmark, n):
    pts = _open_chain(n)

    def run():
        return shorten_open_chain(list(pts))

    ok, rounds, chain = benchmark(run)
    assert ok and chain.is_taut()
    benchmark.extra_info["rounds"] = rounds
