"""EXP-P1 benchmark — reference vs vectorised vs kernel engine.

The hpc-parallel engineering benchmark: the per-robot policy loop and
the per-edge scans are the per-round hot paths; the vectorised engine
(cached edge codes + bulk run-start scan + RLE merge detection) and
the kernel engine (whole round pipeline on arrays, DESIGN.md §2.9)
should win with growing n.  Times the isolated detectors and scanners,
the full round pipeline under all three engines, the batch-simulation
layer, and a scenario matrix (rings, stairways, random blobs,
perturbed shapes at n ≈ 250/1000/4000) timing a fixed 50-round slice
per engine so the per-round constant stays comparable PR-over-PR.

``scripts/run_benchmarks.py`` executes this module under
pytest-benchmark and records the results in ``BENCH_engines.json`` at
the repo root (the perf trajectory file).
"""

import os
import random

import pytest

from repro.core.chain import ClosedChain
from repro.core.patterns import find_merge_patterns, run_start_decisions
from repro.core.engine_vectorized import find_merge_patterns_np, scan_run_starts
from repro.core.batch import gather_batch
from repro.core.simulator import Simulator
from repro.core.view import ChainWindow
from repro.chains import (
    crenellation,
    perturb,
    random_chain,
    square_ring,
    staircase_ring,
)


def _merge_dense_chain(n_teeth, base_height=13):
    """Crenellated chain whose teeth all spike-merge round after round.

    The merge-heavy workload family (Castenow et al. 2020 motivates
    merge-dense configurations as first-class): every tooth is a
    width-1 spike, so each early round fires a merge pattern per tooth
    and the contraction stage sees many events at once.
    """
    return crenellation(teeth=n_teeth, tooth_width=1, base_height=base_height)

DETECTOR_SIZES = [64, 256, 1024]

ENGINES = ["reference", "vectorized", "kernel"]

#: Scenario matrix: (family, target n) -> generator.  Deterministic
#: inputs (fixed seeds) so every engine times the identical chain and
#: the rows stay comparable across regenerations of the JSON.
SCENARIO_ROUNDS = 50
SCENARIOS = {
    ("ring", 250): lambda: square_ring(62),                      # n=244
    ("ring", 1000): lambda: square_ring(250),                    # n=996
    ("ring", 4000): lambda: square_ring(1000),                   # n=3996
    ("stairway", 250): lambda: staircase_ring(8),                # n=244
    ("stairway", 1000): lambda: staircase_ring(40),              # n=1012
    ("stairway", 4000): lambda: staircase_ring(165),             # n=4012
    ("blob", 250): lambda: random_chain(360, random.Random(7)),  # n=274
    ("blob", 1000): lambda: random_chain(1450, random.Random(7)),   # n=1110
    ("blob", 4000): lambda: random_chain(5150, random.Random(7)),   # n=3946
    ("perturbed", 250): lambda: perturb(square_ring(56), 20,
                                        random.Random(11)),      # n=260
    ("perturbed", 1000): lambda: perturb(square_ring(230), 80,
                                         random.Random(11)),     # n=1068
    ("perturbed", 4000): lambda: perturb(square_ring(940), 320,
                                         random.Random(11)),     # n=4360
    ("merge_dense", 1000): lambda: _merge_dense_chain(162),      # n=998
}


def _merge_rich_chain(n_teeth):
    return crenellation(teeth=n_teeth, tooth_width=1, base_height=13)


@pytest.mark.parametrize("teeth", DETECTOR_SIZES)
def test_detector_reference(benchmark, teeth):
    pts = _merge_rich_chain(teeth)
    patterns = benchmark(find_merge_patterns, pts, 10)
    benchmark.extra_info["n"] = len(pts)
    assert patterns


@pytest.mark.parametrize("teeth", DETECTOR_SIZES)
def test_detector_vectorized(benchmark, teeth):
    pts = _merge_rich_chain(teeth)
    patterns = benchmark(find_merge_patterns_np, pts, 10)
    benchmark.extra_info["n"] = len(pts)
    assert patterns


@pytest.mark.parametrize("engine", ENGINES)
def test_full_gathering_by_engine(benchmark, engine):
    pts = square_ring(40)

    def run():
        return Simulator(list(pts), engine=engine,
                         check_invariants=False).run()

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["rounds"] = result.rounds


@pytest.mark.parametrize("engine", ENGINES)
def test_large_ring_by_engine(benchmark, engine, bench_large):
    side = 120 if bench_large else 60

    def run():
        return Simulator(square_ring(side), engine=engine,
                         check_invariants=False).run()

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["n"] = result.initial_n


@pytest.mark.parametrize("impl", ["reference", "vectorized"])
def test_run_start_scan(benchmark, impl):
    chain = ClosedChain(square_ring(60))
    if impl == "vectorized":
        def run():
            chain._codes_cache = None      # measure the full scan incl. encode
            chain._codes_list_cache = None
            return scan_run_starts(chain)
    else:
        def run():
            out = []
            for i in range(chain.n):
                for rs in run_start_decisions(ChainWindow(chain, i, 11)):
                    out.append((i, rs))
            return out

    starts = benchmark(run)
    assert starts
    benchmark.extra_info["n"] = chain.n


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scenario,n_target",
                         sorted(SCENARIOS), ids=lambda v: str(v))
def test_scenario_matrix(benchmark, scenario, n_target, engine):
    """Fixed 50-round slice of one scenario under one engine.

    Times rounds rather than full gatherings so the n≈4000 rows stay
    benchmarkable under the reference engine and the measurement is a
    pure per-round constant (the engines are round-for-round
    equivalent, so every engine executes the same rounds).
    """
    pts = SCENARIOS[(scenario, n_target)]()

    def run():
        sim = Simulator(list(pts), engine=engine, check_invariants=False,
                        validate_initial=False)
        return sim.run(max_rounds=SCENARIO_ROUNDS)

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    benchmark.extra_info["n"] = result.initial_n
    benchmark.extra_info["rounds_timed"] = min(SCENARIO_ROUNDS, result.rounds)
    assert result.rounds > 0


@pytest.mark.parametrize("workers", [1, 2])
def test_batch_gathering(benchmark, workers):
    fleet = [square_ring(s) for s in (16, 24, 32, 40)]

    def run():
        return gather_batch(fleet, keep_reports=False, workers=workers,
                            backend="process")

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.all_gathered
    benchmark.extra_info["chains"] = len(fleet)


#: Fleet-throughput scenarios: (chain generator, max_rounds slice).
#: Deterministic fleets so both backends gather the identical chains;
#: the blob fleet times a bounded round slice (full random-blob
#: gatherings would dominate the suite's wall time), the others run to
#: completion.  ``fleet256_ring_n60`` is the acceptance workload of the
#: fleet tier (DESIGN.md §2.10) and is regression-gated in CI.
FLEETS = {
    "fleet256_ring_n60": (lambda: [square_ring(16) for _ in range(256)],
                          None),
    "fleet64_blob_n250": (lambda: [random_chain(360, random.Random(s))
                                   for s in range(64)], 60),
    "fleet_mixed96": (lambda: [square_ring(8 + 3 * (i % 12))
                               for i in range(96)], None),
    # merge-dense acceptance fleet: 128 identical crenellations whose
    # teeth all merge in the same rounds, so the contraction stage
    # folds hundreds of merge events per round — the workload that
    # gates the vectorised survivor/run-start passes in CI
    "fleet128_merge_dense": (lambda: [_merge_dense_chain(8, base_height=4)
                                      for _ in range(128)], None),
    # the same merge-dense workload at 8x the fleet width: the
    # sort+reduceat merge planner's fold runs over thousands of merge
    # events per round here, so this row guards the segmented-min
    # formulation at scale (DESIGN.md §2.14)
    "fleet1024_merge_dense": (lambda: [_merge_dense_chain(8, base_height=4)
                                       for _ in range(1024)], None),
}


@pytest.mark.parametrize("backend", ["process", "fleet"])
@pytest.mark.parametrize("fleet_name", sorted(FLEETS))
def test_fleet_throughput(benchmark, fleet_name, backend):
    """Chains-per-second of a whole fleet under each batch backend.

    The process backend runs the per-chain kernel engine (the PR-2
    path); the fleet backend steps every chain per round in shared
    arrays.  Both produce bit-identical per-chain results
    (tests/test_fleet_kernel.py), so the ratio is pure throughput.
    """
    gen, max_rounds = FLEETS[fleet_name]
    chains = gen()

    def run():
        return gather_batch(chains, keep_reports=False, backend=backend,
                            max_rounds=max_rounds)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.results) == len(chains)
    if max_rounds is None:
        assert result.all_gathered
    benchmark.extra_info["chains"] = len(chains)
    benchmark.extra_info["rounds_cap"] = max_rounds


#: Streaming scenarios: name -> (chain generator factory, stream length,
#: slot budget, max chain n).  The generator factory returns a *fresh
#: lazy iterator* per run — the streaming tier's contract is that the
#: input never materialises — and the slot budget bounds arena
#: occupancy, so the benchmark also asserts the bounded-memory claim it
#: records (peak cells at most ``slots * max chain n``).
STREAMS = {
    "stream4096_slots256": (lambda: (list(_STREAM_RING)
                                     for _ in range(4096)), 4096, 256, 60),
    # same workload write-ahead-logged (DESIGN.md §2.12): the gated
    # durability overhead — round deltas + periodic snapshots — must
    # stay within a small factor of the WAL-free row
    "stream4096_slots256_wal": (lambda: (list(_STREAM_RING)
                                         for _ in range(4096)),
                                4096, 256, 60),
    # WAL row under full supervision (DESIGN.md §2.13): quarantine-mode
    # normalisation to ChainOutcome plus dead-letter plumbing on top of
    # the WAL; gated at ≤5% over the plain WAL row in CI
    "stream4096_slots256_supervised": (lambda: (list(_STREAM_RING)
                                                for _ in range(4096)),
                                       4096, 256, 60),
    # churn-heavy acceptance row (DESIGN.md §2.14): small chains gather
    # in a handful of rounds and the two sizes retire staggered, so
    # slots turn over constantly round after round — the workload
    # where per-admission full topology rebuilds used to dominate.
    # Gates the incremental-topology delta path plus the batched
    # intake; the pinned pre-PR baseline lives in BENCH_engines.json
    # under ``incremental_topology_baseline``
    "stream_churn8192_slots512": (lambda: (list(_CHURN_RINGS[i % 2])
                                           for i in range(8192)),
                                  8192, 512, 12),
    # zero-copy slab tier (DESIGN.md §2.16): the same workload sharded
    # across K kernel worker processes over one shared-memory slab —
    # parse-once admission, ledger-row result handoff.  The scale-out
    # gates (w2 ≥ 1.7x, w4 ≥ 3x the single-worker row, same fresh run)
    # are enforced by run_benchmarks.py only when the box exposes
    # enough usable cores; the rows are always recorded
    "stream4096_slots256_shm_w2": (lambda: (list(_STREAM_RING)
                                            for _ in range(4096)),
                                   4096, 256, 60),
    "stream4096_slots256_shm_w4": (lambda: (list(_STREAM_RING)
                                            for _ in range(4096)),
                                   4096, 256, 60),
}

_STREAM_RING = square_ring(16)             # n = 60, the fleet256 chain
_CHURN_RINGS = [square_ring(3), square_ring(4)]          # n = 8 / 12


@pytest.mark.parametrize("stream_name", sorted(STREAMS))
def test_stream_throughput(benchmark, stream_name):
    """Chains-per-second of the bounded-memory streaming pipeline.

    Streams many more chains than the arena holds through a fixed slot
    budget (DESIGN.md §2.11): retired slots are reclaimed for the next
    admissions, so peak occupancy — asserted here and recorded in the
    JSON — stays at the budget while throughput should match the
    one-shot ``fleet256_ring_n60`` row (same per-chain computation,
    bit-identical results, pipelined arrival).
    """
    import shutil
    import tempfile
    from repro.core.batch import BatchSimulator
    from repro.core.supervisor import StreamSupervisor
    gen, chains, slots, max_n = STREAMS[stream_name]
    supervised = stream_name.endswith("_supervised")
    walled = stream_name.endswith("_wal") or supervised
    shm_workers = int(stream_name.rsplit("_w", 1)[1]) \
        if "_shm_w" in stream_name else 0

    def run():
        wal_dir = tempfile.mkdtemp(prefix="bench-wal-") if walled else None
        try:
            if supervised:
                sup = StreamSupervisor(
                    slots=slots, wal_dir=wal_dir,
                    dead_letter=os.path.join(wal_dir, "dead.ndjson"))
                count = sum(1 for out in sup.run(gen())
                            if out.ok and out.result.gathered)
                return count, sup.stats
            sim = BatchSimulator([], engine="kernel",
                                 backend="shm" if shm_workers else "fleet",
                                 workers=shm_workers or 1,
                                 keep_reports=False)
            count = sum(1 for _idx, res in
                        sim.run_stream(gen(), slots=slots, wal_dir=wal_dir)
                        if res.gathered)
            return count, sim.last_stream_stats
        finally:
            if wal_dir is not None:
                shutil.rmtree(wal_dir, ignore_errors=True)

    count, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert count == chains
    assert stats["peak_live_chains"] <= slots
    assert stats["peak_cells"] <= slots * max_n
    benchmark.extra_info["chains"] = chains
    benchmark.extra_info["slots"] = slots
    benchmark.extra_info["peak_live_chains"] = stats["peak_live_chains"]
    benchmark.extra_info["peak_cells"] = stats["peak_cells"]
    benchmark.extra_info["arena_span"] = stats["arena_span"]
    benchmark.extra_info["registry_rounds"] = stats["rounds"]
    # incremental-topology telemetry (single-worker streams only): the
    # churn rows should show rebuilds bounded by compactions/grows
    # while deltas track per-round retire/admit/contract traffic
    for key in ("topo_rebuilds", "topo_delta_ops", "topo_delta_cells",
                "rounds_per_s"):
        if key in stats:
            benchmark.extra_info[key] = stats[key]


SERVICES = {
    # end-to-end service row (DESIGN.md §2.15): the stream4096_slots256
    # workload submitted over loopback TCP through the NDJSON protocol
    # and the fair admission queue, results pushed back frame by frame.
    # The delta vs the plain stream row is the whole service tax —
    # framing, JSON codec both ways, queue handoff, executor bridge
    "service4096_slots256": (4096, 256, 60),
}


@pytest.mark.parametrize("service_name", sorted(SERVICES))
def test_service_throughput(benchmark, service_name):
    """Chains-per-second of the TCP gathering service (§2.15).

    One pipelining client floods the submission socket with acks
    suppressed (``ack: false`` — backpressure is pure TCP flow
    control) while the demuxing reader consumes result frames
    concurrently; the measured span covers connect → every result
    delivered → graceful shutdown.  Occupancy stays at the slot
    budget exactly as in the file-fed stream rows.
    """
    import asyncio
    from repro.service.client import GatherClient
    from repro.service.server import GatherService
    chains, slots, max_n = SERVICES[service_name]
    payload = list(_STREAM_RING)

    async def session():
        svc = GatherService(slots=slots)
        await svc.start()
        cli = await GatherClient.connect("127.0.0.1", svc.port)
        for _ in range(chains):
            await cli.submit_nowait(payload)
        gathered = 0
        async for frame in cli.results(expect=chains, timeout=600):
            gathered += (frame["status"] == "result"
                         and frame["gathered"])
        await cli.shutdown()
        await asyncio.wait_for(svc.wait_finished(), 120)
        await cli.close()
        return gathered, svc.sim.last_stream_stats

    def run():
        return asyncio.run(session())

    gathered, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert gathered == chains
    assert stats["peak_live_chains"] <= slots
    assert stats["peak_cells"] <= slots * max_n
    benchmark.extra_info["chains"] = chains
    benchmark.extra_info["slots"] = slots
    benchmark.extra_info["peak_live_chains"] = stats["peak_live_chains"]
    benchmark.extra_info["peak_cells"] = stats["peak_cells"]
    benchmark.extra_info["arena_span"] = stats["arena_span"]
    for key in ("topo_rebuilds", "topo_delta_ops", "topo_delta_cells",
                "rounds_per_s"):
        if key in stats:
            benchmark.extra_info[key] = stats[key]
