"""EXP-P1 benchmark — reference vs vectorised engine.

The hpc-parallel engineering benchmark: the per-robot policy loop and
the per-edge scans are the per-round hot paths; the vectorised engine
(cached edge codes + bulk run-start scan + RLE merge detection) should
win with growing n.  Times the isolated detectors and scanners, the
full round pipeline under both engines, and the batch-simulation layer.

``scripts/run_benchmarks.py`` executes this module under
pytest-benchmark and records the results in ``BENCH_engines.json`` at
the repo root (the perf trajectory file).
"""

import pytest

from repro.core.chain import ClosedChain
from repro.core.patterns import find_merge_patterns, run_start_decisions
from repro.core.engine_vectorized import find_merge_patterns_np, scan_run_starts
from repro.core.batch import gather_batch
from repro.core.simulator import Simulator
from repro.core.view import ChainWindow
from repro.chains import crenellation, square_ring

DETECTOR_SIZES = [64, 256, 1024]


def _merge_rich_chain(n_teeth):
    return crenellation(teeth=n_teeth, tooth_width=1, base_height=13)


@pytest.mark.parametrize("teeth", DETECTOR_SIZES)
def test_detector_reference(benchmark, teeth):
    pts = _merge_rich_chain(teeth)
    patterns = benchmark(find_merge_patterns, pts, 10)
    benchmark.extra_info["n"] = len(pts)
    assert patterns


@pytest.mark.parametrize("teeth", DETECTOR_SIZES)
def test_detector_vectorized(benchmark, teeth):
    pts = _merge_rich_chain(teeth)
    patterns = benchmark(find_merge_patterns_np, pts, 10)
    benchmark.extra_info["n"] = len(pts)
    assert patterns


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_full_gathering_by_engine(benchmark, engine):
    pts = square_ring(40)

    def run():
        return Simulator(list(pts), engine=engine,
                         check_invariants=False).run()

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["rounds"] = result.rounds


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_large_ring_by_engine(benchmark, engine, bench_large):
    side = 120 if bench_large else 60

    def run():
        return Simulator(square_ring(side), engine=engine,
                         check_invariants=False).run()

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["n"] = result.initial_n


@pytest.mark.parametrize("impl", ["reference", "vectorized"])
def test_run_start_scan(benchmark, impl):
    chain = ClosedChain(square_ring(60))
    if impl == "vectorized":
        def run():
            chain._codes_cache = None      # measure the full scan incl. encode
            chain._codes_list_cache = None
            return scan_run_starts(chain)
    else:
        def run():
            out = []
            for i in range(chain.n):
                for rs in run_start_decisions(ChainWindow(chain, i, 11)):
                    out.append((i, rs))
            return out

    starts = benchmark(run)
    assert starts
    benchmark.extra_info["n"] = chain.n


@pytest.mark.parametrize("workers", [1, 2])
def test_batch_gathering(benchmark, workers):
    fleet = [square_ring(s) for s in (16, 24, 32, 40)]

    def run():
        return gather_batch(fleet, keep_reports=False, workers=workers)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.all_gathered
    benchmark.extra_info["chains"] = len(fleet)
