"""EXP-P1 benchmark — reference vs vectorised engine.

The hpc-parallel engineering benchmark: merge detection is the per-round
hot loop; the NumPy detector should win with growing n.  Also times the
full round pipeline under both engines.
"""

import pytest

from repro.core.patterns import find_merge_patterns
from repro.core.engine_vectorized import find_merge_patterns_np
from repro.core.simulator import Simulator
from repro.chains import crenellation, square_ring

DETECTOR_SIZES = [64, 256, 1024]


def _merge_rich_chain(n_teeth):
    return crenellation(teeth=n_teeth, tooth_width=1, base_height=13)


@pytest.mark.parametrize("teeth", DETECTOR_SIZES)
def test_detector_reference(benchmark, teeth):
    pts = _merge_rich_chain(teeth)
    patterns = benchmark(find_merge_patterns, pts, 10)
    benchmark.extra_info["n"] = len(pts)
    assert patterns


@pytest.mark.parametrize("teeth", DETECTOR_SIZES)
def test_detector_vectorized(benchmark, teeth):
    pts = _merge_rich_chain(teeth)
    patterns = benchmark(find_merge_patterns_np, pts, 10)
    benchmark.extra_info["n"] = len(pts)
    assert patterns


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_full_gathering_by_engine(benchmark, engine):
    pts = square_ring(40)

    def run():
        return Simulator(list(pts), engine=engine,
                         check_invariants=False).run()

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["rounds"] = result.rounds


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_large_ring_by_engine(benchmark, engine, bench_large):
    side = 120 if bench_large else 60

    def run():
        return Simulator(square_ring(side), engine=engine,
                         check_invariants=False).run()

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["n"] = result.initial_n
