"""EXP-FIG benchmark — the figure mechanics as timed micro-operations.

Times the local operations each figure depicts: merge planning (Fig. 1-3),
run-start scanning (Fig. 5), run decisions (Fig. 6/8/11), and a short
wave of the full round pipeline (Fig. 9).
"""

import pytest

from repro.grid.lattice import EAST
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS as P
from repro.core.engine import Engine
from repro.core.algorithm import decide_run
from repro.core.merges import plan_merges
from repro.core.patterns import find_merge_patterns, run_start_decisions
from repro.core.view import ChainWindow
from repro.chains import crenellation, rectangle_ring, square_ring, stairway_octagon


def test_fig2_merge_detection(benchmark):
    """Fig. 1-2: merge pattern scan over a merge-rich chain."""
    pts = crenellation(teeth=24, tooth_width=1, base_height=13)
    patterns = benchmark(find_merge_patterns, pts, P.effective_k_max)
    assert len(patterns) >= 24


def test_fig3_overlap_planning(benchmark):
    """Fig. 3: hop combination over overlapping patterns."""
    pts = crenellation(teeth=24, tooth_width=1, base_height=13)
    chain = ClosedChain(pts)

    def plan():
        return plan_merges(chain.positions, chain.ids, P.effective_k_max)

    result = benchmark(plan)
    assert result.any and result.conflicts == 0


def test_fig5_run_start_scan(benchmark):
    """Fig. 5: run-start detection over a full mergeless ring."""
    chain = ClosedChain(stairway_octagon(24, 4))

    def scan():
        found = 0
        for i in range(chain.n):
            found += len(run_start_decisions(
                ChainWindow(chain, i, P.viewing_path_length)))
        return found

    assert benchmark(scan) == 8


def test_fig6_run_decision(benchmark):
    """Fig. 6/11a: one reshapement decision."""
    chain = ClosedChain(rectangle_ring(40, 13))
    engine = Engine(chain, P, check_invariants=False)
    run = engine.registry.start(chain.id_at(0), 1, EAST, 0)
    window = ChainWindow(chain, 0, P.viewing_path_length,
                         engine.registry.runs_lookup())

    dec = benchmark(decide_run, run, window, P, set())
    assert dec.hop == (1, 1)


def test_fig9_wave_pipeline(benchmark):
    """Fig. 9: one full 13-round wave on a mergeless ring."""
    base = ClosedChain(square_ring(40))

    def wave():
        engine = Engine(base.copy(), P, check_invariants=False)
        for _ in range(13):
            engine.step()
        return engine

    engine = benchmark(wave)
    assert engine.round_index == 13
