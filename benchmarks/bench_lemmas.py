"""EXP-L1..L3 benchmark — lemma verification workloads.

Times the good-pair census of Lemma 1 (Fig. 17/18) and a full traced
gathering with every run invariant of Lemma 3 checked each round.
"""

import pytest

from repro.core.chain import ClosedChain
from repro.core.simulator import Simulator
from repro.chains import square_ring, stairway_octagon
from repro.analysis import classify_pairs, merge_free_intervals
from repro.analysis.good_pairs import good_pair_exists


def test_lemma1_good_pair_census(benchmark):
    chain = ClosedChain(stairway_octagon(24, 4))

    pairs = benchmark(classify_pairs, chain)
    assert any(p.good for p in pairs)


def test_lemma1_existence_check(benchmark):
    chain = ClosedChain(square_ring(48))
    assert benchmark(good_pair_exists, chain)


def test_lemma2_merge_interval_audit(benchmark):
    sim = Simulator(square_ring(24), check_invariants=False, record_trace=True)
    result = sim.run()

    gaps = benchmark(merge_free_intervals, result.reports)
    assert max(gaps) <= result.initial_n + 26


def test_lemma3_checked_gathering(benchmark):
    """Full gathering with every model invariant armed (Lemma 3)."""
    pts = stairway_octagon(16, 3)

    def run():
        sim = Simulator(list(pts), check_invariants=True)
        return sim.run()

    result = benchmark(run)
    assert result.gathered
