"""EXP-S1 benchmark — SSYNC ablation workloads.

Times runs-until-break under partial activation and the FSYNC baseline
through the same scheduler machinery.
"""

import pytest

from repro.chains import crenellation, needle
from repro.schedulers import (
    FullActivation, RandomActivation, run_ssync,
)


def test_fsync_baseline_through_scheduler(benchmark):
    out = benchmark(lambda: run_ssync(needle(30), FullActivation()))
    assert out.gathered and out.survived


@pytest.mark.parametrize("p", [0.9, 0.5])
def test_partial_activation_until_break(benchmark, p):
    def run():
        return run_ssync(crenellation(6), RandomActivation(p, seed=1),
                         max_rounds=600)

    out = benchmark(run)
    assert out.broke
    benchmark.extra_info["break_round"] = out.break_round
