"""EXP-TBL1 benchmark — termination-condition workloads.

Times gatherings on the chains whose dynamics exercise each Table-1
condition (conditions 4/5 arise on the L-shape and zig-zag families),
asserting the conditions actually fired.
"""

import json
import os

import pytest

from repro.core.runs import StopReason
from repro.core.simulator import Simulator
from repro.chains import l_shape, square_ring


def _cond5_witness():
    path = os.path.join(os.path.dirname(__file__), "..", "src", "repro",
                        "experiments", "data", "cond5_witness.json")
    with open(path, "r", encoding="utf-8") as fh:
        return [tuple(p) for p in json.load(fh)["positions"]]


def _reason_counts(result):
    counts = {}
    for rep in result.reports:
        for reason, k in rep.runs_terminated.items():
            counts[reason] = counts.get(reason, 0) + k
    return counts


def test_conditions_1_2_3_on_square(benchmark):
    def run():
        return Simulator(square_ring(32), check_invariants=False).run()

    result = benchmark(run)
    counts = _reason_counts(result)
    assert counts.get(StopReason.MERGE_PARTICIPATION, 0) > 0
    assert result.gathered


def test_condition4_on_l_shape(benchmark):
    def run():
        return Simulator(l_shape(30, 30, 13), check_invariants=False).run()

    result = benchmark(run)
    counts = _reason_counts(result)
    assert counts.get(StopReason.PASSING_TARGET_REMOVED, 0) > 0
    assert result.gathered


def test_condition5_on_witness(benchmark):
    pts = _cond5_witness()

    def run():
        return Simulator(list(pts), check_invariants=False).run()

    result = benchmark(run)
    counts = _reason_counts(result)
    assert counts.get(StopReason.TRAVEL_TARGET_REMOVED, 0) > 0
    assert result.gathered
