"""EXP-T1 benchmark — Theorem 1: gathering rounds and wall time vs n.

Regenerates the paper's headline result (linear-time gathering) per
chain family while timing full gatherings.  The printed `rounds` and
`rounds/n` values are the data series of EXPERIMENTS.md §EXP-T1.
"""

import pytest

from repro.core.simulator import gather
from repro.chains import comb, needle, square_ring, stairway_octagon, spiral

FAMILY_CASES = [
    pytest.param("needle", needle, 60, id="needle-n118"),
    pytest.param("needle", needle, 150, id="needle-n298"),
    pytest.param("square", square_ring, 26, id="square-n100"),
    pytest.param("square", square_ring, 51, id="square-n200"),
    pytest.param("octagon", lambda s: stairway_octagon(s, 2), 14, id="octagon-n128"),
    pytest.param("octagon", lambda s: stairway_octagon(s, 2), 26, id="octagon-n224"),
]


@pytest.mark.parametrize("family,builder,size", FAMILY_CASES)
def test_gather_rounds_linear(benchmark, family, builder, size):
    pts = builder(size)

    def run():
        return gather(list(pts), engine="vectorized")

    result = benchmark(run)
    assert result.gathered
    assert result.rounds_per_robot < 27        # Theorem 1 constant
    benchmark.extra_info["n"] = result.initial_n
    benchmark.extra_info["rounds"] = result.rounds
    benchmark.extra_info["rounds_per_n"] = round(result.rounds_per_robot, 3)


def test_gather_comb_pipeline(benchmark):
    pts = comb(8, tooth_height=8)

    def run():
        return gather(list(pts), engine="vectorized")

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["n"] = result.initial_n
    benchmark.extra_info["rounds"] = result.rounds


def test_gather_spiral(benchmark):
    pts = spiral(2)

    def run():
        return gather(list(pts), engine="vectorized")

    result = benchmark(run)
    assert result.gathered
    benchmark.extra_info["n"] = result.initial_n
    benchmark.extra_info["rounds"] = result.rounds
