"""EXP-V1 benchmark — exhaustive small-n verification throughput.

Times the enumeration (canonical symmetry classes of closed walks) and
the full verify-everything sweeps that back the universal quantifier of
Theorem 1 for small n.
"""

import pytest

from repro.verification import count_closed_chains, verify_all


@pytest.mark.parametrize("n", [8, 10])
def test_enumeration(benchmark, n):
    count = benchmark(count_closed_chains, n)
    assert count == {8: 71, 10: 478}[n]


@pytest.mark.parametrize("n", [8, 10])
def test_exhaustive_verification(benchmark, n):
    report = benchmark(verify_all, n, engine="vectorized")
    assert report.complete
    benchmark.extra_info["configurations"] = report.total
    benchmark.extra_info["max_rounds"] = report.max_rounds


def test_verification_n12(benchmark, bench_large):
    if not bench_large:
        report = benchmark(verify_all, 12, engine="vectorized", limit=500)
        assert report.gathered == report.total == 500
    else:
        report = benchmark(verify_all, 12, engine="vectorized")
        assert report.complete
