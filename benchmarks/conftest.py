"""Benchmark configuration.

Every paper artifact (Theorem 1, Lemmas, Table 1, figure mechanics) has
a benchmark module that regenerates its data while timing the relevant
code path with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_addoption(parser):
    parser.addoption("--bench-large", action="store_true", default=False,
                     help="include the large-size benchmark cases")


@pytest.fixture
def bench_large(request):
    return request.config.getoption("--bench-large")
