"""Export an SVG animation of a gathering (one frame per k rounds).

Writes frames to ``./frames/`` — open them in a browser or stitch them
into a video.  Run with::

    python examples/animation_export.py [outdir]
"""

import sys

from repro import Simulator
from repro.chains import spiral
from repro.viz import save_frames


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "frames"
    chain = spiral(2)
    sim = Simulator(chain, record_trace=True)
    result = sim.run()
    print(result.summary())
    assert result.trace is not None
    every = max(1, result.rounds // 24)
    paths = save_frames(result.trace, outdir, every=every, fmt="svg")
    print(f"wrote {len(paths)} SVG frames to {outdir}/ "
          f"(every {every} rounds)")


if __name__ == "__main__":
    main()
