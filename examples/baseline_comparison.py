"""Baseline comparison: what does strict locality cost?

Runs the local algorithm against the two global-knowledge baselines
from the paper's introduction, plus the Manhattan-Hopper open-chain
strategy of [KM09] that the paper generalises.  Run with::

    python examples/baseline_comparison.py
"""

import random

from repro import gather
from repro.grid.lattice import bounding_box
from repro.chains import square_ring
from repro.baselines import (
    gather_compass, gather_global_vision, shorten_open_chain,
)
from repro.analysis import format_table


def main() -> None:
    rows = []
    for side in (16, 24, 32, 48):
        pts = square_ring(side)
        rows.append({
            "n": len(pts),
            "diameter": bounding_box(pts).diameter,
            "local (paper)": gather(list(pts), engine="vectorized").rounds,
            "global vision": gather_global_vision(list(pts)).rounds,
            "compass": gather_compass(list(pts)).rounds,
        })
    print(format_table(rows, title="closed-chain gathering: rounds by strategy"))
    print("\nThe baselines track the diameter; the local algorithm pays a "
          "constant factor\nover n for having no global information — "
          "exactly the trade-off the paper studies.\n")

    rng = random.Random(11)
    open_rows = []
    for n in (32, 64, 128, 256):
        pts = [(0, 0)]
        for _ in range(n - 1):
            x, y = pts[-1]
            dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
            pts.append((x + dx, y + dy))
        ok, rounds, chain = shorten_open_chain(pts)
        open_rows.append({"n": n, "rounds": rounds, "final": chain.n,
                          "optimal": chain.optimal_length(), "success": ok})
    print(format_table(open_rows,
                       title="Manhattan Hopper [KM09]: open-chain shortening"))


if __name__ == "__main__":
    main()
