"""Exhaustive verification: Theorem 1 holds for *every* small chain.

Enumerates every closed chain of length n up to symmetry (translation,
rotation, reflection, relabelling) and gathers each one — the universal
quantifier of Theorem 1, checked by brute force.  Also regenerates the
scaling figure as an SVG.  Run with::

    python examples/exhaustive_verification.py [max_n] [figure.svg]
"""

import sys

from repro.verification import verify_all
from repro.core.simulator import gather
from repro.chains import needle, square_ring, stairway_octagon
from repro.viz import Series, save_line_chart


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print("exhaustive sweep (one representative per symmetry class):")
    for n in range(4, max_n + 1, 2):
        report = verify_all(n, engine="vectorized")
        status = "ALL GATHER" if report.complete else f"{len(report.failures)} FAILURES"
        print(f"  n={n:2d}: {report.total:5d} configurations -> {status} "
              f"(max {report.max_rounds} rounds)")
        for pts in report.failures[:3]:
            print("    failure:", pts)

    # scaling figure: rounds vs n for three families
    series = []
    for label, builder, sizes in [
        ("needle", needle, [20, 40, 80, 160]),
        ("square", square_ring, [12, 24, 48]),
        ("octagon", lambda s: stairway_octagon(s, 2), [8, 16, 32]),
    ]:
        pts = []
        for s in sizes:
            res = gather(builder(s), engine="vectorized")
            pts.append((res.initial_n, res.rounds))
        series.append(Series(label, pts))
    out = sys.argv[2] if len(sys.argv) > 2 else "theorem1_scaling.svg"
    save_line_chart(out, series, title="Theorem 1: rounds vs n",
                    x_label="n (robots)", y_label="rounds")
    print(f"\nwrote scaling figure to {out}")


if __name__ == "__main__":
    main()
