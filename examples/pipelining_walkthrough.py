"""Pipelining walkthrough: watch runs reshape a mergeless chain.

The stairway octagon contains no merge pattern at all, so every bit of
progress must come from the run machinery (paper §3.2-§3.4): waves of
runs start every L = 13 rounds at the quasi-line endpoints, reshape the
straight sides, and enable merges.  Run with::

    python examples/pipelining_walkthrough.py
"""

from repro import Simulator
from repro.core.patterns import find_merge_patterns
from repro.core.config import DEFAULT_PARAMETERS
from repro.chains import stairway_octagon
from repro.analysis import merges_per_wave, lemma1_windows
from repro.viz import render_trace_strip


def main() -> None:
    chain = stairway_octagon(16, steps=3)
    params = DEFAULT_PARAMETERS

    patterns = find_merge_patterns(list(chain), params.effective_k_max)
    print(f"initial chain: n={len(chain)}, merge patterns: {len(patterns)} "
          "(a Mergeless Chain — only runs can make progress)\n")

    sim = Simulator(chain, check_invariants=True, record_trace=True)
    result = sim.run()
    print(result.summary(), "\n")

    print("run lifecycle per round (first 3 waves):")
    for rep in result.reports[: 3 * params.start_interval]:
        if rep.runs_started or rep.runs_terminated or rep.robots_removed:
            terms = {k.name: v for k, v in rep.runs_terminated.items()}
            print(f"  round {rep.round_index:3d}: started={rep.runs_started} "
                  f"active={rep.active_runs} merged={rep.robots_removed} "
                  f"terminated={terms or '{}'}")

    print("\nrobots removed per 13-round wave:",
          merges_per_wave(result.reports, params.start_interval))
    print("Lemma 1 window census:",
          lemma1_windows(result.reports, params.start_interval))

    assert result.trace is not None
    print("\nfilm strip (runners drawn as < and >):")
    print(render_trace_strip(result.trace.snapshots, every=2, max_frames=5))


if __name__ == "__main__":
    main()
