"""Quickstart: gather a closed chain of robots on a grid.

Builds a chain, runs the paper's local gathering algorithm, and shows
what happened.  Run with::

    python examples/quickstart.py
"""

from repro import Simulator, gather
from repro.chains import square_ring, random_chain
from repro.viz import render_ascii, render_trace_strip


def main() -> None:
    # --- the one-liner API --------------------------------------------------
    result = gather(square_ring(20))
    print("square ring :", result.summary())

    # --- step-by-step control with a trace ----------------------------------
    chain = random_chain(64)
    print("\ninitial random chain:")
    print(render_ascii(chain))

    sim = Simulator(chain, check_invariants=True, record_trace=True)
    while not sim.is_gathered():
        report = sim.step()
        if report.robots_removed:
            print(f"round {report.round_index:3d}: merged "
                  f"{report.robots_removed} robots, {report.n_after} left")

    print(f"\ngathered in {sim.round_index} rounds "
          f"({sim.round_index / result.initial_n:.2f} rounds per robot)")
    print("\nfilm strip:")
    assert sim.trace is not None
    print(render_trace_strip(sim.trace.snapshots,
                             every=max(1, sim.round_index // 5), max_frames=5))


if __name__ == "__main__":
    main()
