"""Theorem 1 in action: round counts grow linearly in the chain length.

Sweeps several chain families across sizes, fits rounds against n, and
compares the measured slope with the theorem's worst-case constant
2·L + 1 = 27.  Run with::

    python examples/worst_case_scaling.py
"""

from repro import gather
from repro.chains import needle, square_ring, stairway_octagon
from repro.analysis import fit_rounds, format_table


def sweep(name, builder, sizes):
    rows = []
    for s in sizes:
        result = gather(builder(s), engine="vectorized")
        rows.append({"family": name, "param": s, "n": result.initial_n,
                     "rounds": result.rounds,
                     "rounds_per_n": result.rounds_per_robot})
    fit = fit_rounds([r["n"] for r in rows], [r["rounds"] for r in rows])
    return rows, fit


def main() -> None:
    all_rows = []
    fits = {}
    for name, builder, sizes in [
        ("needle", needle, [20, 40, 80, 160, 320]),
        ("square", square_ring, [12, 24, 48, 96]),
        ("octagon", lambda s: stairway_octagon(s, 2), [8, 16, 32, 64]),
    ]:
        rows, fit = sweep(name, builder, sizes)
        all_rows += rows
        fits[name] = fit

    print(format_table(all_rows, title="rounds vs n (Theorem 1)"))
    print()
    for name, fit in fits.items():
        print(f"{name:8s} {fit.describe()}")
    print("\ntheorem worst-case slope: 2*L + 1 = 27 rounds per robot")


if __name__ == "__main__":
    main()
