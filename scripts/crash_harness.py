#!/usr/bin/env python
"""Kill-and-recover harness for the WAL streaming + supervision tiers.

Proves the durability contract of DESIGN.md §2.12 and the supervision
contract of §2.13 end to end, through the real CLI and real process
death.  Four modes:

``cli-kill`` (default)
    SIGKILL the whole CLI process at seeded WAL rounds, ``--resume``
    after each kill, and byte-compare the recovered NDJSON against an
    uninterrupted run's.  Finishes with ``repro wal audit`` over the
    surviving log.

``worker-kill``
    Run a supervised multi-worker stream (``--workers --wal``) and
    SIGKILL individual *pool workers* (found via /proc) at seeded
    shard-WAL rounds.  The run itself must complete rc=0 with zero
    lost or duplicated results and per-chain output identical to the
    unfaulted run's.

``service-kill``
    Run ``repro serve --wal``, submit the stream over TCP, SIGKILL the
    service at seeded WAL rounds and restart it with ``--resume``;
    the finished ``results.ndjson`` ledger must be byte-identical to
    an uninterrupted service's, and the surviving kernel WAL must pass
    ``repro wal audit`` against the logged admission order (§2.15).

``poison``
    Plant invalid chains at seeded stream positions and run with
    ``--dead-letter``: every poison entry must quarantine to the
    ledger (never abort the stream), and the good chains' results
    must match the clean run's under the index remap.

``shm-kill``
    Run the zero-copy slab tier (``--backend shm --workers --wal``,
    §2.16) and SIGKILL individual *shard workers* at seeded shard-WAL
    rounds.  The parent must salvage published ledger rows, respawn
    the shard over the same slab region and replay the survivors: the
    run completes rc=0 with zero lost or duplicated results, per-chain
    output identical to the single-worker run's, and zero leaked
    ``/dev/shm`` segments after exit.

Exit status 0 iff the mode's contract held.

Usage::

    PYTHONPATH=src python scripts/crash_harness.py \
        --mode worker-kill --chains 120 --slots 16 --kills 3 --seed 11
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_stream(path: str, chains: int, seed: int) -> None:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from repro.chains.random_blobs import random_chain

    rng = random.Random(seed)
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(chains):
            chain = random_chain(rng.choice([8, 12, 16, 20, 24]), rng=rng)
            fh.write(json.dumps([list(p) for p in chain]) + "\n")


def batch_cmd(jsonl: str, out: str, slots: int, wal: str | None,
              resume: bool = False, workers: int | None = None,
              dead_letter: str | None = None,
              backend: str | None = None) -> list:
    cmd = [sys.executable, "-m", "repro.cli", "batch", "--stream", jsonl,
           "--slots", str(slots), "--out", out, "--snapshot-every", "16"]
    if wal:
        cmd += ["--wal", wal]
    if resume:
        cmd.append("--resume")
    if workers:
        cmd += ["--workers", str(workers)]
    if dead_letter:
        cmd += ["--dead-letter", dead_letter]
    if backend:
        cmd += ["--backend", backend]
    return cmd


def wal_round(log: str) -> int:
    """Highest round index recorded so far (-1 before the first)."""
    try:
        with open(log, "rb") as fh:
            data = fh.read()
    except OSError:
        return -1
    last = -1
    for line in data[:data.rfind(b"\n") + 1].splitlines():
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if doc.get("type") == "round":
            last = doc["r"]
    return last


def shard_round(wal_dir: str) -> int:
    """Highest round logged by any shard sub-WAL under ``wal_dir``."""
    best = -1
    try:
        entries = os.listdir(wal_dir)
    except OSError:
        return best
    for name in entries:
        if name.startswith(("shard-", "solo-")):
            best = max(best, wal_round(os.path.join(wal_dir, name,
                                                    "wal.ndjson")))
    return best


def child_pids(pid: int) -> list:
    """Direct children of ``pid`` (via /proc), minus the multiprocessing
    resource tracker — killing workers is the test, killing the tracker
    is just noise."""
    kids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "rb") as fh:
                stat = fh.read()
            ppid = int(stat[stat.rfind(b")") + 2:].split()[1])
            if ppid != pid:
                continue
            with open(f"/proc/{entry}/cmdline", "rb") as fh:
                cmd = fh.read()
            if b"resource_tracker" in cmd:
                continue
            kids.append(int(entry))
        except (OSError, ValueError, IndexError):
            continue
    return kids


def load_ndjson(path: str) -> list:
    return [json.loads(line) for line in open(path, "rb").read().splitlines()
            if line.strip()]


# ----------------------------------------------------------------------
# mode: cli-kill (§2.12 resume)
# ----------------------------------------------------------------------
def run_until_round(cmd: list, env: dict, log: str, target: int) -> str:
    """Run ``cmd``; SIGKILL it once the WAL reaches round ``target``.

    Returns 'killed' or 'finished' (the run completed before the
    target round was reached — possible near the stream's tail).
    """
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE)
    try:
        while True:
            rc = proc.poll()
            if rc is not None:
                if rc != 0:
                    sys.stderr.write(proc.stderr.read().decode())
                    raise SystemExit(f"worker exited rc={rc} before kill")
                return "finished"
            if wal_round(log) >= target:
                proc.send_signal(signal.SIGKILL)
                proc.wait()
                return "killed"
            time.sleep(0.005)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def mode_cli_kill(args, tmp: str, jsonl: str, env: dict) -> int:
    clean = os.path.join(tmp, "clean.ndjson")
    subprocess.run(batch_cmd(jsonl, clean, args.slots, wal=None),
                   env=env, check=True, stdout=subprocess.DEVNULL)
    clean_bytes = open(clean, "rb").read()

    # Kill targets: seeded, sorted so each resume makes forward progress.
    wal = os.path.join(tmp, "wal")
    log = os.path.join(wal, "wal.ndjson")
    out = os.path.join(tmp, "recovered.ndjson")
    hi = args.max_round
    if hi is None:
        last = max((json.loads(l)["rounds"] for l in clean_bytes.splitlines()),
                   default=1)
        hi = max(1, 2 * last)
    rng = random.Random(args.seed ^ 0x5EED)
    targets = sorted(rng.randrange(hi) for _ in range(args.kills))
    print(f"[crash-harness] {args.chains} chains, slots={args.slots}, "
          f"kill rounds {targets}")

    resume = False
    for target in targets:
        fate = run_until_round(batch_cmd(jsonl, out, args.slots, wal, resume),
                               env, log, target)
        print(f"[crash-harness] round>={target}: {fate}")
        if fate == "finished":
            break
        resume = True
    if resume:
        subprocess.run(batch_cmd(jsonl, out, args.slots, wal, resume=True),
                       env=env, check=True, stdout=subprocess.DEVNULL)

    recovered = open(out, "rb").read()
    if recovered != clean_bytes:
        a = clean_bytes.decode().splitlines()
        b = recovered.decode().splitlines()
        print(f"[crash-harness] MISMATCH: clean {len(a)} lines, "
              f"recovered {len(b)} lines", file=sys.stderr)
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                print(f"  first diff at line {i}:\n   clean: {x}\n   "
                      f"recov: {y}", file=sys.stderr)
                break
        return 1
    # the surviving log must also pass the machine audit (§2.13)
    audit = subprocess.run(
        [sys.executable, "-m", "repro.cli", "wal", "audit", wal,
         "--stream", jsonl], env=env, capture_output=True, text=True)
    print(f"[crash-harness] {audit.stdout.strip()}")
    if audit.returncode != 0:
        print(f"[crash-harness] WAL AUDIT FAILED rc={audit.returncode}",
              file=sys.stderr)
        return 1
    print(f"[crash-harness] OK: recovered NDJSON byte-identical "
          f"({len(clean_bytes)} bytes, {len(targets)} kill points)")
    return 0


# ----------------------------------------------------------------------
# mode: service-kill (§2.15 service WAL resume)
# ----------------------------------------------------------------------
def start_service(wal: str, slots: int, env: dict, resume: bool):
    """Launch ``repro serve`` on an ephemeral port; return (proc, port)."""
    cmd = [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
           "--slots", str(slots), "--wal", wal, "--snapshot-every", "16"]
    if resume:
        cmd.append("--resume")
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    line = proc.stdout.readline()
    if "serving on" not in line:
        proc.kill()
        raise SystemExit(f"service failed to start: {line!r}")
    return proc, int(line.split("(")[0].rsplit(":", 1)[1])


def feed_service(port: int, chains: list, start_at: int) -> None:
    """Submit ``chains[start_at:]``, drain, then ask for shutdown.

    Runs in a daemon thread; a SIGKILL landing on the service mid-feed
    surfaces here as a connection error, which is the point — the
    resumed cycle picks up from the accept log.
    """
    import asyncio

    async def go():
        from repro.service.client import GatherClient
        cli = await GatherClient.connect("127.0.0.1", port)
        for c in chains[start_at:]:
            await cli.submit(c)
        await cli.drain(timeout=600)
        await cli.shutdown()
        await cli.close()

    try:
        asyncio.run(go())
    except Exception:
        pass


def mode_service_kill(args, tmp: str, jsonl: str, env: dict) -> int:
    import threading
    chains = [[tuple(p) for p in doc] for doc in load_ndjson(jsonl)]

    def run_cycle(wal: str, target: int | None, resume: bool) -> str:
        subs = os.path.join(wal, "submissions.jsonl")
        accepted = len(load_ndjson(subs)) if os.path.exists(subs) else 0
        proc, port = start_service(wal, args.slots, env, resume)
        feeder = threading.Thread(target=feed_service,
                                  args=(port, chains, accepted), daemon=True)
        feeder.start()
        log = os.path.join(wal, "wal.ndjson")
        try:
            while True:
                rc = proc.poll()
                if rc is not None:
                    if rc != 0:
                        sys.stderr.write(proc.stdout.read())
                        raise SystemExit(f"service exited rc={rc}")
                    return "finished"
                if target is not None and wal_round(log) >= target:
                    proc.send_signal(signal.SIGKILL)
                    proc.wait()
                    return "killed"
                time.sleep(0.005)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
            feeder.join(timeout=30)

    # clean reference: an uninterrupted service over the same stream.
    # Live admission is paced by the wire, so *completion order* is
    # timing-dependent across independent runs; per-chain rows are
    # deterministic (stream results are bit-identical to gather_batch
    # per chain), and a single client makes global indices == the
    # submission order in every run.  The killed lineage itself must
    # stay byte-consistent: each resume appends to the same ledger.
    clean = os.path.join(tmp, "svc-clean")
    run_cycle(clean, target=None, resume=False)
    clean_rows = sorted(load_ndjson(os.path.join(clean, "results.ndjson")),
                        key=lambda d: d["chain"])
    if len(clean_rows) != len(chains):
        raise SystemExit("clean service run lost results")

    hi = args.max_round
    if hi is None:
        last = max((d["rounds"] for d in clean_rows), default=1)
        hi = max(1, 2 * last)
    rng = random.Random(args.seed ^ 0x5E17)
    targets = sorted(rng.randrange(hi) for _ in range(args.kills))
    print(f"[crash-harness] service-kill: {len(chains)} chains, "
          f"slots={args.slots}, kill rounds {targets}")

    wal = os.path.join(tmp, "svc-wal")
    ledger = os.path.join(wal, "results.ndjson")
    resume = False
    prefixes = []
    for target in targets:
        fate = run_cycle(wal, target, resume)
        print(f"[crash-harness] round>={target}: {fate}")
        if fate == "finished":
            break
        resume = True
        # the next incarnation must keep every completed line verbatim
        # (only a torn trailing line may be truncated away)
        data = open(ledger, "rb").read()
        prefixes.append(data[:data.rfind(b"\n") + 1])

    if resume:
        run_cycle(wal, target=None, resume=True)

    recovered = open(ledger, "rb").read()
    for prefix in prefixes:
        if not recovered.startswith(prefix):
            print("[crash-harness] resumed ledger rewrote completed "
                  "lines", file=sys.stderr)
            return 1
    rows = load_ndjson(ledger)
    indices = [d["chain"] for d in rows]
    if len(set(indices)) != len(indices):
        print("[crash-harness] DUPLICATED ledger entries after resume",
              file=sys.stderr)
        return 1
    rows = sorted(rows, key=lambda d: d["chain"])
    if rows != clean_rows:
        print(f"[crash-harness] MISMATCH: clean {len(clean_rows)} rows, "
              f"recovered {len(rows)} rows", file=sys.stderr)
        for x, y in zip(clean_rows, rows):
            if x != y:
                print(f"  first diff:\n   clean: {x}\n   recov: {y}",
                      file=sys.stderr)
                break
        return 1

    # The kernel-WAL machine audit does not apply here: live admission
    # is wire-paced (the scheduler admits whatever has *arrived*), so
    # re-executing against a never-starved file stream legitimately
    # produces different admit cursors.  The service's own logs carry
    # the §2.15 durability evidence instead — check them structurally:
    # every take refers to a logged accept, no accept was admitted
    # twice, and every accepted chain reached the ledger exactly once.
    accepts = load_ndjson(os.path.join(wal, "submissions.jsonl"))
    takes = [d["k"] for d in load_ndjson(os.path.join(wal, "intake.jsonl"))]
    if sorted(takes) != sorted(set(takes)) \
            or any(k >= len(accepts) for k in takes):
        print(f"[crash-harness] intake log inconsistent: {len(takes)} "
              f"takes over {len(accepts)} accepts", file=sys.stderr)
        return 1
    if len(accepts) != len(chains) or len(rows) != len(accepts):
        print(f"[crash-harness] lost work: {len(chains)} submitted, "
              f"{len(accepts)} accepted, {len(rows)} delivered",
              file=sys.stderr)
        return 1
    print(f"[crash-harness] OK: {len(rows)} results exactly-once, "
          f"rows identical to clean service run, completed prefixes "
          f"preserved across {len(targets)} kill points")
    return 0


# ----------------------------------------------------------------------
# mode: worker-kill (§2.13 supervised pool)
# ----------------------------------------------------------------------
def mode_worker_kill(args, tmp: str, jsonl: str, env: dict) -> int:
    clean = os.path.join(tmp, "clean.ndjson")
    subprocess.run(batch_cmd(jsonl, clean, args.slots, wal=None),
                   env=env, check=True, stdout=subprocess.DEVNULL)
    clean_rows = sorted(load_ndjson(clean), key=lambda d: d["chain"])

    wal = os.path.join(tmp, "wal")
    out = os.path.join(tmp, "supervised.ndjson")
    rng = random.Random(args.seed ^ 0xDEAD)
    hi = args.max_round if args.max_round else 12
    targets = sorted(rng.randrange(1, 1 + hi) for _ in range(args.kills))
    print(f"[crash-harness] worker-kill: {args.chains} chains, "
          f"workers={args.workers}, shard-round targets {targets}")

    proc = subprocess.Popen(
        batch_cmd(jsonl, out, args.slots, wal, workers=args.workers),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    delivered = 0
    try:
        while proc.poll() is None:
            if delivered < len(targets) \
                    and shard_round(wal) >= targets[delivered]:
                kids = child_pids(proc.pid)
                if kids:
                    victim = rng.choice(kids)
                    try:
                        os.kill(victim, signal.SIGKILL)
                    except OSError:
                        continue           # worker raced to exit; retry
                    delivered += 1
                    print(f"[crash-harness] SIGKILL worker pid={victim} "
                          f"(shard round >= {targets[delivered - 1]})")
            time.sleep(0.002)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr.read().decode())
        print(f"[crash-harness] supervised run died rc={proc.returncode} "
              f"— supervision failed to absorb the kills", file=sys.stderr)
        return 1
    if delivered < len(targets):
        print(f"[crash-harness] note: only {delivered}/{len(targets)} kills "
              f"delivered (run finished first)")

    rows = load_ndjson(out)
    indices = [d["chain"] for d in rows]
    if len(set(indices)) != len(indices):
        print("[crash-harness] DUPLICATED results after recovery",
              file=sys.stderr)
        return 1
    rows = sorted(rows, key=lambda d: d["chain"])
    if rows != clean_rows:
        print(f"[crash-harness] MISMATCH: clean {len(clean_rows)} rows, "
              f"supervised {len(rows)} rows", file=sys.stderr)
        for x, y in zip(clean_rows, rows):
            if x != y:
                print(f"  first diff:\n   clean: {x}\n   super: {y}",
                      file=sys.stderr)
                break
        return 1
    print(f"[crash-harness] OK: {len(rows)} results, zero lost/duplicated, "
          f"identical to unfaulted run ({delivered} worker kills)")
    return 0


# ----------------------------------------------------------------------
# mode: shm-kill (§2.16 slab shard recovery)
# ----------------------------------------------------------------------
def shm_segments() -> set:
    import glob
    return set(glob.glob("/dev/shm/psm_*"))


def mode_shm_kill(args, tmp: str, jsonl: str, env: dict) -> int:
    clean = os.path.join(tmp, "clean.ndjson")
    subprocess.run(batch_cmd(jsonl, clean, args.slots, wal=None),
                   env=env, check=True, stdout=subprocess.DEVNULL)
    clean_rows = sorted(load_ndjson(clean), key=lambda d: d["chain"])

    segs_before = shm_segments()
    wal = os.path.join(tmp, "wal")
    out = os.path.join(tmp, "sharded.ndjson")
    rng = random.Random(args.seed ^ 0x51AB)
    hi = args.max_round if args.max_round else 12
    targets = sorted(rng.randrange(1, 1 + hi) for _ in range(args.kills))
    print(f"[crash-harness] shm-kill: {args.chains} chains, "
          f"workers={args.workers}, shard-round targets {targets}")

    proc = subprocess.Popen(
        batch_cmd(jsonl, out, args.slots, wal, workers=args.workers,
                  backend="shm"),
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    delivered = 0
    try:
        while proc.poll() is None:
            if delivered < len(targets) \
                    and shard_round(wal) >= targets[delivered]:
                kids = child_pids(proc.pid)
                if kids:
                    victim = rng.choice(kids)
                    try:
                        os.kill(victim, signal.SIGKILL)
                    except OSError:
                        continue           # worker raced to exit; retry
                    delivered += 1
                    print(f"[crash-harness] SIGKILL shard worker "
                          f"pid={victim} "
                          f"(shard round >= {targets[delivered - 1]})")
            time.sleep(0.002)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr.read().decode())
        print(f"[crash-harness] shm run died rc={proc.returncode} — "
              f"shard respawn failed to absorb the kills", file=sys.stderr)
        return 1
    if delivered < len(targets):
        print(f"[crash-harness] note: only {delivered}/{len(targets)} kills "
              f"delivered (run finished first)")

    leaked = shm_segments() - segs_before
    if leaked:
        print(f"[crash-harness] LEAKED shared-memory segments: "
              f"{sorted(leaked)}", file=sys.stderr)
        return 1

    rows = load_ndjson(out)
    indices = [d["chain"] for d in rows]
    if len(set(indices)) != len(indices):
        print("[crash-harness] DUPLICATED results after shard recovery",
              file=sys.stderr)
        return 1
    rows = sorted(rows, key=lambda d: d["chain"])
    if rows != clean_rows:
        print(f"[crash-harness] MISMATCH: clean {len(clean_rows)} rows, "
              f"sharded {len(rows)} rows", file=sys.stderr)
        for x, y in zip(clean_rows, rows):
            if x != y:
                print(f"  first diff:\n   clean: {x}\n   shard: {y}",
                      file=sys.stderr)
                break
        return 1
    print(f"[crash-harness] OK: {len(rows)} results, zero lost/duplicated, "
          f"identical to single-worker run, zero leaked segments "
          f"({delivered} shard-worker kills)")
    return 0


# ----------------------------------------------------------------------
# mode: poison (§2.13 quarantine)
# ----------------------------------------------------------------------
def mode_poison(args, tmp: str, jsonl: str, env: dict) -> int:
    clean = os.path.join(tmp, "clean.ndjson")
    subprocess.run(batch_cmd(jsonl, clean, args.slots, wal=None),
                   env=env, check=True, stdout=subprocess.DEVNULL)
    clean_rows = sorted(load_ndjson(clean), key=lambda d: d["chain"])

    # plant poison entries (valid JSON, invalid chains) at seeded
    # positions of a new stream file
    rng = random.Random(args.seed ^ 0xBAD)
    npoison = max(1, args.kills)
    good = open(jsonl, "r", encoding="utf-8").read().splitlines()
    total = len(good) + npoison
    slots_at = sorted(rng.sample(range(total), npoison))
    poisoned = os.path.join(tmp, "poisoned.jsonl")
    remap = {}                      # faulted stream index -> clean index
    git = iter(range(len(good)))
    with open(poisoned, "w", encoding="utf-8") as fh:
        gi = 0
        for pos in range(total):
            if pos in slots_at:
                fh.write(json.dumps([[0, 0], [1, 0]]) + "\n")
            else:
                fh.write(good[gi] + "\n")
                remap[pos] = gi
                gi += 1
    del git
    print(f"[crash-harness] poison: {npoison} invalid chains at stream "
          f"positions {slots_at} of {total}")

    out = os.path.join(tmp, "survived.ndjson")
    dl = os.path.join(tmp, "dead.ndjson")
    proc = subprocess.run(
        batch_cmd(poisoned, out, args.slots, wal=None,
                  workers=args.workers, dead_letter=dl),
        env=env, capture_output=True, text=True)
    # rc 2 is the documented "not everything gathered" signal; any
    # other nonzero means the stream aborted
    if proc.returncode not in (0, 2):
        sys.stderr.write(proc.stderr)
        print(f"[crash-harness] poisoned run ABORTED rc={proc.returncode}",
              file=sys.stderr)
        return 1
    dead = load_ndjson(dl)
    quarantined = {d["chain"] for d in dead if d.get("kind") == "chain"}
    if quarantined != set(slots_at):
        print(f"[crash-harness] dead letter mismatch: expected "
              f"{slots_at}, ledger has {sorted(quarantined)}",
              file=sys.stderr)
        return 1

    rows = load_ndjson(out)
    mapped = sorted(({**d, "chain": remap[d["chain"]]} for d in rows),
                    key=lambda d: d["chain"])
    if mapped != clean_rows:
        print(f"[crash-harness] MISMATCH: clean {len(clean_rows)} rows, "
              f"survived {len(mapped)} rows", file=sys.stderr)
        for x, y in zip(clean_rows, mapped):
            if x != y:
                print(f"  first diff:\n   clean: {x}\n   survi: {y}",
                      file=sys.stderr)
                break
        return 1
    print(f"[crash-harness] OK: {npoison} poison chains quarantined to the "
          f"dead letter, {len(mapped)} good chains identical to clean run")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--mode", choices=("cli-kill", "worker-kill", "poison",
                                       "service-kill", "shm-kill"),
                    default="cli-kill")
    ap.add_argument("--chains", type=int, default=120)
    ap.add_argument("--slots", type=int, default=16)
    ap.add_argument("--workers", type=int, default=2,
                    help="pool width for worker-kill/poison modes")
    ap.add_argument("--kills", type=int, default=3,
                    help="SIGKILLs (cli-kill/worker-kill) or poison "
                         "chains (poison) to inject")
    ap.add_argument("--seed", type=int, default=11)
    ap.add_argument("--max-round", type=int, default=None,
                    help="kill rounds are drawn from [0, max-round] "
                         "(default: clean run's final round)")
    args = ap.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="crash-harness-")
    jsonl = os.path.join(tmp, "chains.jsonl")
    make_stream(jsonl, args.chains, args.seed)
    env = {**os.environ, "PYTHONPATH": os.path.join(ROOT, "src")}
    if args.mode == "service-kill":
        return mode_service_kill(args, tmp, jsonl, env)
    if args.mode == "worker-kill":
        return mode_worker_kill(args, tmp, jsonl, env)
    if args.mode == "shm-kill":
        return mode_shm_kill(args, tmp, jsonl, env)
    if args.mode == "poison":
        return mode_poison(args, tmp, jsonl, env)
    return mode_cli_kill(args, tmp, jsonl, env)


if __name__ == "__main__":
    sys.exit(main())
