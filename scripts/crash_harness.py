#!/usr/bin/env python
"""Kill-and-recover harness for the WAL streaming tier.

Proves the durability contract of DESIGN.md §2.12 end to end, through
the real CLI and real process death:

1. Generate a deterministic JSONL chain stream.
2. Run it once, uninterrupted and WAL-free, to ``clean.ndjson``.
3. Run it again with ``--wal`` and ``--out``, SIGKILL the worker at a
   seeded random round (watched through the growing ``wal.ndjson``),
   then ``--resume`` — killing again at each of the remaining kill
   points — until the run completes.
4. Byte-compare the recovered NDJSON against the clean one.

Exit status 0 iff every kill was actually delivered mid-run (or the
run raced to completion first, which is reported) and the final output
is byte-identical.

Usage::

    PYTHONPATH=src python scripts/crash_harness.py \
        --chains 120 --slots 16 --kills 3 --seed 11
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_stream(path: str, chains: int, seed: int) -> None:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from repro.chains.random_blobs import random_chain

    rng = random.Random(seed)
    with open(path, "w", encoding="utf-8") as fh:
        for _ in range(chains):
            chain = random_chain(rng.choice([8, 12, 16, 20, 24]), rng=rng)
            fh.write(json.dumps([list(p) for p in chain]) + "\n")


def batch_cmd(jsonl: str, out: str, slots: int, wal: str | None,
              resume: bool = False) -> list:
    cmd = [sys.executable, "-m", "repro.cli", "batch", "--stream", jsonl,
           "--slots", str(slots), "--out", out, "--snapshot-every", "16"]
    if wal:
        cmd += ["--wal", wal]
    if resume:
        cmd.append("--resume")
    return cmd


def wal_round(log: str) -> int:
    """Highest round index recorded so far (-1 before the first)."""
    try:
        with open(log, "rb") as fh:
            data = fh.read()
    except OSError:
        return -1
    last = -1
    for line in data[:data.rfind(b"\n") + 1].splitlines():
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if doc.get("type") == "round":
            last = doc["r"]
    return last


def run_until_round(cmd: list, env: dict, log: str, target: int) -> str:
    """Run ``cmd``; SIGKILL it once the WAL reaches round ``target``.

    Returns 'killed' or 'finished' (the run completed before the
    target round was reached — possible near the stream's tail).
    """
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE)
    try:
        while True:
            rc = proc.poll()
            if rc is not None:
                if rc != 0:
                    sys.stderr.write(proc.stderr.read().decode())
                    raise SystemExit(f"worker exited rc={rc} before kill")
                return "finished"
            if wal_round(log) >= target:
                proc.send_signal(signal.SIGKILL)
                proc.wait()
                return "killed"
            time.sleep(0.005)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--chains", type=int, default=120)
    ap.add_argument("--slots", type=int, default=16)
    ap.add_argument("--kills", type=int, default=3,
                    help="number of SIGKILLs before letting the run finish")
    ap.add_argument("--seed", type=int, default=11)
    ap.add_argument("--max-round", type=int, default=None,
                    help="kill rounds are drawn from [0, max-round] "
                         "(default: clean run's final round)")
    args = ap.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="crash-harness-")
    jsonl = os.path.join(tmp, "chains.jsonl")
    make_stream(jsonl, args.chains, args.seed)
    env = {**os.environ, "PYTHONPATH": os.path.join(ROOT, "src")}

    clean = os.path.join(tmp, "clean.ndjson")
    subprocess.run(batch_cmd(jsonl, clean, args.slots, wal=None),
                   env=env, check=True, stdout=subprocess.DEVNULL)
    clean_bytes = open(clean, "rb").read()

    # Kill targets: seeded, sorted so each resume makes forward progress.
    wal = os.path.join(tmp, "wal")
    log = os.path.join(wal, "wal.ndjson")
    out = os.path.join(tmp, "recovered.ndjson")
    hi = args.max_round
    if hi is None:
        last = max((json.loads(l)["rounds"] for l in clean_bytes.splitlines()),
                   default=1)
        hi = max(1, 2 * last)
    rng = random.Random(args.seed ^ 0x5EED)
    targets = sorted(rng.randrange(hi) for _ in range(args.kills))
    print(f"[crash-harness] {args.chains} chains, slots={args.slots}, "
          f"kill rounds {targets}")

    resume = False
    for target in targets:
        fate = run_until_round(batch_cmd(jsonl, out, args.slots, wal, resume),
                               env, log, target)
        print(f"[crash-harness] round>={target}: {fate}")
        if fate == "finished":
            break
        resume = True
    if resume:
        subprocess.run(batch_cmd(jsonl, out, args.slots, wal, resume=True),
                       env=env, check=True, stdout=subprocess.DEVNULL)

    recovered = open(out, "rb").read()
    if recovered != clean_bytes:
        a = clean_bytes.decode().splitlines()
        b = recovered.decode().splitlines()
        print(f"[crash-harness] MISMATCH: clean {len(a)} lines, "
              f"recovered {len(b)} lines", file=sys.stderr)
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                print(f"  first diff at line {i}:\n   clean: {x}\n   "
                      f"recov: {y}", file=sys.stderr)
                break
        return 1
    print(f"[crash-harness] OK: recovered NDJSON byte-identical "
          f"({len(clean_bytes)} bytes, {len(targets)} kill points)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
