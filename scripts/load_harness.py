#!/usr/bin/env python
"""Load-replay harness for the gathering service (DESIGN.md §2.15).

Spawns ``repro serve`` as a real subprocess, then replays a large
queued-submission corpus — one million chains by default — against it
from ``--clients`` concurrent pipelining connections, recording the
sustained end-to-end throughput (submitted → result frame received).
Submissions use ``ack: false``, so backpressure is exerted purely by
TCP flow control plus the bounded admission queue; the harness also
polls ``status`` frames on a side connection and reports peak queue
depth and kernel occupancy, verifying that a million-submission replay
never grows the backlog past the configured capacity.

This is the operational companion to the gated
``service4096_slots256`` row in ``BENCH_engines.json`` (recorded by
``scripts/run_benchmarks.py`` from ``benchmarks/bench_engines.py``):
the bench row is deliberately small enough to re-measure in CI; this
harness is the soak run that proves the same service sustains the rate
for minutes at ≥1M submissions, optionally multi-worker.

Usage::

    python scripts/load_harness.py                     # 1M chains, 1 client
    python scripts/load_harness.py --chains 50000 --clients 4 --workers 2
    python scripts/load_harness.py --smoke             # 20k-chain quick pass
    python scripts/load_harness.py --smoke --backend shm   # soak the slab tier

Exit status 0 when every submission came back as a ``result`` frame
and the queue-depth bound held; 1 otherwise.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.chains import square_ring                      # noqa: E402
from repro.service.client import GatherClient             # noqa: E402

RING8 = [list(p) for p in square_ring(8)]    # n=28, gathers in ~15 rounds


def start_service(args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    cmd = [sys.executable, "-m", "repro.cli", "serve",
           "--port", "0", "--slots", str(args.slots),
           "--workers", str(args.workers), "--queue", str(args.queue)]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            env=env, cwd=REPO_ROOT)
    line = proc.stdout.readline()
    if "serving on" not in line:
        raise RuntimeError(f"service failed to start: {line!r}")
    port = int(line.split("(")[0].rsplit(":", 1)[1])
    return proc, port


async def replay_client(port: int, chains: int, stats: dict) -> int:
    """Pipeline ``chains`` submissions, count result frames back."""
    cli = await GatherClient.connect("127.0.0.1", port)
    got = 0

    async def pump_results():
        nonlocal got
        while got < chains:
            frame = await cli.next_result(timeout=600)
            if frame["status"] != "result" or not frame["gathered"]:
                stats["anomalies"] += 1
            got += 1
            stats["received"] += 1

    reader = asyncio.ensure_future(pump_results())
    for _ in range(chains):
        await cli.submit_nowait(RING8)
        stats["submitted"] += 1
    await reader
    await cli.close()
    return got


async def poll_status(port: int, stats: dict, done: asyncio.Event,
                      interval: float) -> None:
    """Side connection sampling ``status`` frames during the replay."""
    cli = await GatherClient.connect("127.0.0.1", port)
    try:
        while not done.is_set():
            doc = await cli.status()
            stats["peak_queue_depth"] = max(stats["peak_queue_depth"],
                                            doc["peak_queue_depth"])
            stats["peak_occupancy"] = max(stats["peak_occupancy"],
                                          doc.get("occupancy", 0))
            stats["samples"].append(
                {"t": round(time.monotonic() - stats["t0"], 2),
                 "served": doc["served"],
                 "queue_depth": doc["queue_depth"],
                 "chains_per_s": doc["chains_per_s"]})
            try:
                await asyncio.wait_for(done.wait(), interval)
            except asyncio.TimeoutError:
                pass
    finally:
        await cli.close()


async def run_load(port: int, args) -> dict:
    stats = {"submitted": 0, "received": 0, "anomalies": 0,
             "peak_queue_depth": 0, "peak_occupancy": 0,
             "samples": [], "t0": time.monotonic()}
    per = args.chains // args.clients
    counts = [per + (1 if i < args.chains % args.clients else 0)
              for i in range(args.clients)]
    done = asyncio.Event()
    poller = asyncio.ensure_future(
        poll_status(port, stats, done, args.status_interval))
    t0 = time.monotonic()
    totals = await asyncio.gather(
        *(replay_client(port, c, stats) for c in counts))
    stats["wall_s"] = round(time.monotonic() - t0, 3)
    done.set()
    await poller
    stats["received_total"] = sum(totals)
    stats["chains_per_s"] = round(args.chains / stats["wall_s"], 1)
    # graceful shutdown so the subprocess exits 0
    cli = await GatherClient.connect("127.0.0.1", port)
    await cli.drain(timeout=120)
    await cli.shutdown()
    await cli.close()
    return stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--chains", type=int, default=1_000_000,
                        help="total submissions to replay (default: 1M)")
    parser.add_argument("--clients", type=int, default=1,
                        help="concurrent pipelining connections")
    parser.add_argument("--slots", type=int, default=256,
                        help="service slot budget")
    parser.add_argument("--workers", type=int, default=1,
                        help="service worker processes")
    parser.add_argument("--backend", choices=("auto", "fleet", "shm"),
                        default="auto",
                        help="execution tier to soak: 'shm' forces the "
                             "zero-copy shard tier (workers >= 2, "
                             "DESIGN.md §2.16), 'fleet' the in-process "
                             "kernel (workers = 1); 'auto' follows "
                             "--workers, which is how the service itself "
                             "picks the tier")
    parser.add_argument("--queue", type=int, default=4096,
                        help="admission queue capacity")
    parser.add_argument("--status-interval", type=float, default=2.0,
                        help="seconds between status samples")
    parser.add_argument("--smoke", action="store_true",
                        help="quick pass: 20k chains, 2 clients")
    parser.add_argument("--json", action="store_true",
                        help="emit the full stats document as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.chains = min(args.chains, 20_000)
        args.clients = max(args.clients, 2)
    if args.backend == "shm" and args.workers < 2:
        args.workers = 2
    elif args.backend == "fleet":
        args.workers = 1

    proc, port = start_service(args)
    try:
        stats = asyncio.run(run_load(port, args))
    finally:
        if proc.poll() is None:
            proc.terminate()
        proc.wait(timeout=120)

    ok = (stats["received_total"] == args.chains
          and stats["anomalies"] == 0
          and stats["peak_queue_depth"] <= args.queue)
    print(f"load harness: {args.chains} chains via {args.clients} "
          f"client(s) -> {stats['received_total']} results in "
          f"{stats['wall_s']}s ({stats['chains_per_s']} chains/s "
          f"sustained, peak queue {stats['peak_queue_depth']}"
          f"/{args.queue}, peak occupancy {stats['peak_occupancy']}"
          f"/{args.slots}, anomalies={stats['anomalies']})")
    if args.json:
        print(json.dumps(stats, indent=1))
    print("load harness: " + ("OK" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
