#!/usr/bin/env python
"""Run the engine benchmarks and record the perf trajectory.

Executes ``benchmarks/bench_engines.py`` under pytest-benchmark and
writes a condensed ``BENCH_engines.json`` at the repository root: one
entry per benchmark (min/median/mean/stddev seconds) plus derived
headline numbers — most importantly the reference-vs-vectorised
speedup on the side-60 large-ring gathering, the tracked perf metric
for the round-pipeline work (DESIGN.md §5).

Usage::

    python scripts/run_benchmarks.py            # full bench_engines run
    python scripts/run_benchmarks.py --smoke    # CI smoke (large ring only)
    python scripts/run_benchmarks.py --out /tmp/bench.json

Exit status is pytest's: non-zero when a benchmark test fails.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_engines.json")


def run_pytest_benchmark(selectors, raw_json_path: str, extra=()) -> int:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "pytest", *selectors, *extra,
           "--benchmark-only", "-q", f"--benchmark-json={raw_json_path}"]
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def condense(raw: dict) -> dict:
    """Reduce pytest-benchmark's verbose JSON to the tracked essentials."""
    entries = []
    by_name = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "name": bench["name"],
            "group": bench.get("group"),
            "params": bench.get("params"),
            "min_s": stats["min"],
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
            "extra_info": bench.get("extra_info", {}),
        }
        entries.append(entry)
        by_name[bench["name"]] = entry

    derived = {}
    ref = by_name.get("test_large_ring_by_engine[reference]")
    vec = by_name.get("test_large_ring_by_engine[vectorized]")
    ker = by_name.get("test_large_ring_by_engine[kernel]")
    if ref and vec:
        ring = {
            "reference_min_s": ref["min_s"],
            "vectorized_min_s": vec["min_s"],
            "speedup_vectorized_vs_reference": round(ref["min_s"] / vec["min_s"], 3),
        }
        if ker:
            ring["kernel_min_s"] = ker["min_s"]
            ring["speedup_kernel_vs_reference"] = round(ref["min_s"] / ker["min_s"], 3)
            ring["speedup_kernel_vs_vectorized"] = round(vec["min_s"] / ker["min_s"], 3)
        derived["large_ring_side60"] = ring

    # scenario matrix: per-(family, n) engine timings and speedups
    matrix = {}
    for entry in entries:
        params = entry.get("params") or {}
        if not entry["name"].startswith("test_scenario_matrix["):
            continue
        key = f"{params['scenario']}_n{params['n_target']}"
        row = matrix.setdefault(key, {"n": entry["extra_info"].get("n")})
        row[f"{params['engine']}_min_s"] = entry["min_s"]
    for row in matrix.values():
        r, v, k = (row.get("reference_min_s"), row.get("vectorized_min_s"),
                   row.get("kernel_min_s"))
        if r and v:
            row["speedup_vectorized_vs_reference"] = round(r / v, 3)
        if r and k:
            row["speedup_kernel_vs_reference"] = round(r / k, 3)
        if v and k:
            row["speedup_kernel_vs_vectorized"] = round(v / k, 3)
    # fleet-throughput rows (chains/sec per batch backend) join the
    # scenario matrix — the PR-over-PR perf ledger
    for entry in entries:
        params = entry.get("params") or {}
        if not entry["name"].startswith("test_fleet_throughput["):
            continue
        key = params["fleet_name"]
        row = matrix.setdefault(key, {
            "chains": entry["extra_info"].get("chains"),
            "rounds_cap": entry["extra_info"].get("rounds_cap"),
        })
        row[f"{params['backend']}_min_s"] = entry["min_s"]
    for key, row in matrix.items():
        if not key.startswith("fleet"):
            continue
        p, f = row.get("process_min_s"), row.get("fleet_min_s")
        if f and row.get("chains"):
            row["fleet_chains_per_s"] = round(row["chains"] / f, 1)
        if p and f:
            row["speedup_fleet_vs_process"] = round(p / f, 3)
    # streaming-throughput rows (bounded-occupancy pipeline): chains/sec
    # plus the occupancy telemetry the bounded-memory claim rides on
    for entry in entries:
        params = entry.get("params") or {}
        if not entry["name"].startswith("test_stream_throughput["):
            continue
        info = entry.get("extra_info", {})
        key = params["stream_name"]
        row = matrix.setdefault(key, {})
        row.update({
            "chains": info.get("chains"),
            "slots": info.get("slots"),
            "peak_live_chains": info.get("peak_live_chains"),
            "peak_cells": info.get("peak_cells"),
            "arena_span": info.get("arena_span"),
            "stream_min_s": entry["min_s"],
        })
        # incremental-topology telemetry (DESIGN.md §2.14) rides along
        # where the run recorded it: full rebuilds vs delta splices
        for tkey in ("topo_rebuilds", "topo_delta_ops",
                     "topo_delta_cells", "rounds_per_s"):
            if tkey in info:
                row[tkey] = info[tkey]
        if row.get("chains"):
            row["stream_chains_per_s"] = round(row["chains"]
                                               / entry["min_s"], 1)
    # service rows (DESIGN.md §2.15): the same streaming workload end
    # to end over loopback TCP — NDJSON framing, fair admission queue,
    # executor bridge — so stream-vs-service is the protocol tax
    for entry in entries:
        params = entry.get("params") or {}
        if not entry["name"].startswith("test_service_throughput["):
            continue
        info = entry.get("extra_info", {})
        row = matrix.setdefault(params["service_name"], {})
        row.update({
            "chains": info.get("chains"),
            "slots": info.get("slots"),
            "peak_live_chains": info.get("peak_live_chains"),
            "peak_cells": info.get("peak_cells"),
            "service_min_s": entry["min_s"],
        })
        if row.get("chains"):
            row["service_chains_per_s"] = round(row["chains"]
                                                / entry["min_s"], 1)
    if matrix:
        derived["scenario_matrix"] = dict(sorted(matrix.items()))
    for size in (64, 256, 1024):
        r = by_name.get(f"test_detector_reference[{size}]")
        v = by_name.get(f"test_detector_vectorized[{size}]")
        if r and v:
            derived[f"detector_speedup_teeth{size}"] = \
                round(r["min_s"] / v["min_s"], 3)
    r = by_name.get("test_run_start_scan[reference]")
    v = by_name.get("test_run_start_scan[vectorized]")
    if r and v:
        derived["run_start_scan_speedup"] = round(r["min_s"] / v["min_s"], 3)

    return {
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "suite": "benchmarks/bench_engines.py",
        "derived": derived,
        "benchmarks": entries,
    }


def check_regression(fresh: dict, baseline_path: str, threshold: float) -> int:
    """Compare the fresh ``large_ring_side60`` timings against a
    committed baseline JSON.  A regression is a fresh per-engine
    ``*_min_s`` more than ``threshold`` times the committed one — the
    threshold is deliberately generous (CI boxes differ from the box
    that produced the committed file); the gate exists to catch
    order-of-magnitude slumps, not noise.  Returns the number of
    regressed engines.
    """
    try:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"regression check: cannot read {baseline_path}: {exc}",
              file=sys.stderr)
        return 1
    base = committed.get("derived", {}).get("large_ring_side60", {})
    ring = fresh.get("derived", {}).get("large_ring_side60", {})
    if not base or not ring:
        print("regression check: no large_ring_side60 block to compare",
              file=sys.stderr)
        return 1
    regressed = 0
    for key in sorted(set(base) & set(ring)):
        if not key.endswith("_min_s"):
            continue
        ratio = ring[key] / base[key]
        verdict = "REGRESSION" if ratio > threshold else "ok"
        print(f"  check {key}: fresh {ring[key]:.6f}s vs committed "
              f"{base[key]:.6f}s ({ratio:.2f}x, limit {threshold}x) {verdict}")
        if ratio > threshold:
            regressed += 1
    # fleet/stream throughput gates: chains/sec on the acceptance
    # workloads must stay within 1/threshold of the committed values.
    # The merge-dense fleet additionally guards the vectorised
    # contraction/run-start passes (its rounds are dominated by merge
    # events); the streaming row guards the slot-lifecycle pipeline
    # (admission, reclamation, registry recycling).
    for fleet_key, field in (("fleet256_ring_n60", "fleet_chains_per_s"),
                             ("fleet128_merge_dense", "fleet_chains_per_s"),
                             ("fleet1024_merge_dense", "fleet_chains_per_s"),
                             ("stream4096_slots256",
                              "stream_chains_per_s"),
                             ("stream4096_slots256_wal",
                              "stream_chains_per_s"),
                             ("stream4096_slots256_supervised",
                              "stream_chains_per_s"),
                             ("stream_churn8192_slots512",
                              "stream_chains_per_s"),
                             ("stream4096_slots256_shm_w2",
                              "stream_chains_per_s"),
                             ("stream4096_slots256_shm_w4",
                              "stream_chains_per_s"),
                             ("service4096_slots256",
                              "service_chains_per_s")):
        base_fleet = committed.get("derived", {}).get(
            "scenario_matrix", {}).get(fleet_key, {})
        fresh_fleet = fresh.get("derived", {}).get(
            "scenario_matrix", {}).get(fleet_key, {})
        b_cps = base_fleet.get(field)
        f_cps = fresh_fleet.get(field)
        if b_cps and f_cps:
            ratio = b_cps / f_cps
            verdict = "REGRESSION" if ratio > threshold else "ok"
            print(f"  check {fleet_key} {field}: fresh "
                  f"{f_cps:.1f} vs committed {b_cps:.1f} ({ratio:.2f}x "
                  f"slower, limit {threshold}x) {verdict}")
            if ratio > threshold:
                regressed += 1
        elif b_cps:
            print(f"regression check: fresh run lacks {fleet_key} "
                  f"{field}", file=sys.stderr)
            regressed += 1
    # supervision-overhead gate (DESIGN.md §2.13): the supervised row
    # re-runs the WAL workload through StreamSupervisor in the same
    # fresh run, so the ratio is box-independent — normalisation and
    # dead-letter plumbing must cost at most 5% over the bare WAL row
    fresh_matrix = fresh.get("derived", {}).get("scenario_matrix", {})
    wal_cps = fresh_matrix.get("stream4096_slots256_wal",
                               {}).get("stream_chains_per_s")
    sup_cps = fresh_matrix.get("stream4096_slots256_supervised",
                               {}).get("stream_chains_per_s")
    if wal_cps and sup_cps:
        ratio = wal_cps / sup_cps
        verdict = "REGRESSION" if ratio > 1.05 else "ok"
        print(f"  check supervised-vs-wal overhead: {sup_cps:.1f} vs "
              f"{wal_cps:.1f} chains/s ({ratio:.3f}x slower, limit "
              f"1.05x) {verdict}")
        if ratio > 1.05:
            regressed += 1
    # zero-copy scale-out gates (DESIGN.md §2.16): the shm shard rows
    # run in the same fresh pass as the single-worker stream row, so
    # the speedup is box-independent — but it is only *achievable*
    # when the box exposes enough usable cores to run the shards in
    # parallel; on narrower boxes the ratio is recorded, printed, and
    # the gate reports itself skipped instead of failing
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:                     # non-Linux
        usable = os.cpu_count() or 1
    solo_cps = fresh_matrix.get("stream4096_slots256",
                                {}).get("stream_chains_per_s")
    for row_key, want, factor in (
            ("stream4096_slots256_shm_w2", 2, 1.7),
            ("stream4096_slots256_shm_w4", 4, 3.0)):
        shm_cps = fresh_matrix.get(row_key, {}).get("stream_chains_per_s")
        if not (solo_cps and shm_cps):
            continue
        speed = shm_cps / solo_cps
        if usable < want:
            print(f"  check {row_key} scale-out: {speed:.2f}x vs "
                  f"single-worker (target >={factor}x) SKIPPED — "
                  f"{usable} usable core(s), gate needs {want}")
            continue
        verdict = "ok" if speed >= factor else "REGRESSION"
        print(f"  check {row_key} scale-out: {shm_cps:.1f} vs "
              f"{solo_cps:.1f} chains/s ({speed:.2f}x, target "
              f">={factor}x on {usable} cores) {verdict}")
        if speed < factor:
            regressed += 1
    return regressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output path (default: BENCH_engines.json at repo root)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: the large-ring engine comparison "
                             "plus the gated fleet, streaming and "
                             "service throughput rows")
    parser.add_argument("--check-against", metavar="BASELINE_JSON",
                        help="fail (exit 2) when the fresh large_ring_side60 "
                             "timings exceed this committed baseline by more "
                             "than --threshold")
    parser.add_argument("--threshold", type=float, default=2.5,
                        help="regression factor for --check-against "
                             "(default: 2.5)")
    args = parser.parse_args(argv)

    if args.smoke:
        selectors = ["benchmarks/bench_engines.py::test_large_ring_by_engine",
                     "benchmarks/bench_engines.py::test_fleet_throughput",
                     "benchmarks/bench_engines.py::test_stream_throughput",
                     "benchmarks/bench_engines.py::test_service_throughput"]
        # fleet1024_merge_dense smokes on the fleet backend only — the
        # per-chain process backend at 1024 chains costs seconds and
        # guards nothing the 128-chain row doesn't already cover
        extra = ["-k", "large_ring or fleet256 or fleet128_merge_dense "
                       "or stream4096 or stream_churn8192 "
                       "or service4096 "
                       "or (fleet1024_merge_dense and not process)"]
    else:
        selectors = ["benchmarks/bench_engines.py"]
        extra = []

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = os.path.join(tmp, "raw.json")
        rc = run_pytest_benchmark(selectors, raw_path, extra)
        if not os.path.exists(raw_path):
            print("pytest-benchmark produced no JSON; aborting", file=sys.stderr)
            return rc or 1
        with open(raw_path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)

    condensed = condense(raw)
    # carry the pinned baselines across regenerations: the seed
    # baseline (measured once from the v0 commit) and the Python-fold
    # baseline (measured once from the pre-vectorisation PR-3 code on
    # the merge-dense rows); keep the derived ratios current
    if os.path.exists(args.out):
        try:
            with open(args.out, "r", encoding="utf-8") as fh:
                previous = json.load(fh)
        except (OSError, ValueError):
            previous = {}
        topo_base = previous.get("incremental_topology_baseline")
        if topo_base:
            condensed["incremental_topology_baseline"] = topo_base
            matrix = condensed["derived"].get("scenario_matrix", {})
            row = matrix.get("stream_churn8192_slots512")
            b = topo_base.get("stream_churn8192_slots512",
                              {}).get("stream_min_s")
            if row and b and row.get("stream_min_s"):
                row["speedup_vs_pre_incremental"] = \
                    round(b / row["stream_min_s"], 3)
        fold_base = previous.get("python_fold_baseline")
        if fold_base:
            condensed["python_fold_baseline"] = fold_base
            matrix = condensed["derived"].get("scenario_matrix", {})
            fleet = matrix.get("fleet128_merge_dense")
            b = fold_base.get("fleet128_merge_dense", {}).get("fleet_min_s")
            if fleet and b and fleet.get("fleet_min_s"):
                fleet["speedup_vs_python_fold"] = \
                    round(b / fleet["fleet_min_s"], 3)
            row = matrix.get("merge_dense_n1000")
            bk = fold_base.get("merge_dense_n1000", {}).get("kernel_min_s")
            if row and bk and row.get("kernel_min_s"):
                row["kernel_speedup_vs_python_fold"] = \
                    round(bk / row["kernel_min_s"], 3)
        baseline = previous.get("seed_baseline")
        if baseline:
            condensed["seed_baseline"] = baseline
            ring = condensed["derived"].get("large_ring_side60")
            seed_ring = baseline.get("large_ring_side60", {})
            if ring and seed_ring:
                v_now = ring["vectorized_min_s"]
                for key, seed_key in (
                        ("speedup_vs_seed_reference", "reference_min_s"),
                        ("speedup_vs_seed_vectorized", "vectorized_min_s")):
                    if seed_key in seed_ring:
                        ring[key] = round(seed_ring[seed_key] / v_now, 3)
                k_now = ring.get("kernel_min_s")
                if k_now:
                    for key, seed_key in (
                            ("kernel_speedup_vs_seed_reference",
                             "reference_min_s"),
                            ("kernel_speedup_vs_seed_vectorized",
                             "vectorized_min_s")):
                        if seed_key in seed_ring:
                            ring[key] = round(seed_ring[seed_key] / k_now, 3)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(condensed, fh, indent=1)
        fh.write("\n")
    print(f"wrote {args.out}")
    for key, val in condensed["derived"].items():
        print(f"  {key}: {val}")
    if args.check_against:
        if check_regression(condensed, args.check_against, args.threshold):
            print("benchmark regression gate FAILED", file=sys.stderr)
            return 2
        print("benchmark regression gate passed")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
