"""Setuptools shim.

Allows legacy editable installs (``pip install -e . --no-use-pep517``)
in offline environments whose setuptools predates PEP 660 wheel-less
editable support.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
