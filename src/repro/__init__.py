"""repro — reproduction of *Gathering a Closed Chain of Robots on a Grid*.

Abshoff, Cord-Landwehr, Fischer, Jung, Meyer auf der Heide (IPDPS 2016).

Public API highlights
---------------------
:func:`repro.gather`
    Gather a closed chain; returns a :class:`repro.GatheringResult`.
:class:`repro.Simulator`
    Step-by-step control over a gathering simulation.
:class:`repro.ClosedChain`
    The chain data structure.
:mod:`repro.chains`
    Generators for every chain family used in the experiments.
:mod:`repro.baselines`
    Global-knowledge baselines and the Manhattan-Hopper open chain.
:mod:`repro.experiments`
    One module per paper table/figure/lemma (see DESIGN.md §4).
"""

from repro.core import (
    ClosedChain,
    DEFAULT_PARAMETERS,
    PROOF_PARAMETERS,
    GatheringResult,
    Parameters,
    RoundReport,
    Simulator,
    Trace,
    gather,
)
from repro.errors import (
    ChainError,
    InvariantViolation,
    LocalityViolation,
    ReproError,
    StallError,
)

__version__ = "1.0.0"

__all__ = [
    "ClosedChain",
    "Parameters",
    "DEFAULT_PARAMETERS",
    "PROOF_PARAMETERS",
    "Simulator",
    "GatheringResult",
    "RoundReport",
    "Trace",
    "gather",
    "ReproError",
    "ChainError",
    "InvariantViolation",
    "LocalityViolation",
    "StallError",
    "__version__",
]
