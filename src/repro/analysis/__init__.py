"""Analysis: metrics, linear fits, quasi-line/good-pair census, progress."""

from repro.analysis.linear_fit import LinearFit, fit_rounds
from repro.analysis.metrics import format_table, summarize
from repro.analysis.good_pairs import QuasiLinePair, find_start_points, classify_pairs
from repro.analysis.progress import (
    lemma1_windows,
    merge_free_intervals,
    merges_per_wave,
)

__all__ = [
    "LinearFit",
    "fit_rounds",
    "summarize",
    "format_table",
    "QuasiLinePair",
    "find_start_points",
    "classify_pairs",
    "lemma1_windows",
    "merge_free_intervals",
    "merges_per_wave",
]
