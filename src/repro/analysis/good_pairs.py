"""Quasi-line and good-pair census (Lemma 1 instrumentation).

The *algorithm* never needs to know whether a run pair is good — robots
cannot see that far.  This module is observer-side tooling: it finds the
run-start points of a configuration, pairs the endpoints of each quasi
line, and classifies the pairs as good (exterior neighbours on the same
side, paper Fig. 12) or not.  EXP-F17/18 uses it to verify Lemma 1:
every mergeless chain exposes at least one good pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.grid.lattice import Vec, sub
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.patterns import RunStart, run_start_decisions
from repro.core.view import ChainWindow


@dataclass(frozen=True)
class QuasiLinePair:
    """Two runs started at opposite endpoints of one quasi line."""

    start_index: int          # endpoint whose run moves in +1 direction
    end_index: int            # endpoint whose run moves in -1 direction
    length: int               # robots on the connecting subchain
    good: bool                # exterior neighbours on the same side (Fig. 12)


def find_start_points(chain: ClosedChain,
                      params: Parameters = DEFAULT_PARAMETERS
                      ) -> List[Tuple[int, RunStart]]:
    """All (index, RunStart) pairs the algorithm would fire on this chain."""
    out: List[Tuple[int, RunStart]] = []
    for i in range(chain.n):
        window = ChainWindow(chain, i, params.viewing_path_length)
        for rs in run_start_decisions(window):
            out.append((i, rs))
    return out


def classify_pairs(chain: ClosedChain,
                   params: Parameters = DEFAULT_PARAMETERS
                   ) -> List[QuasiLinePair]:
    """Pair up run-start points along the chain and classify them.

    A start at index ``i`` moving +1 pairs with the next start moving
    -1 found walking in the +1 direction (the two runs approach each
    other over the connecting quasi line).
    """
    starts = find_start_points(chain, params)
    n = chain.n
    pos = chain.positions
    forward = sorted(i for i, rs in starts if rs.direction == 1)
    backward = {i for i, rs in starts if rs.direction == -1}
    pairs: List[QuasiLinePair] = []
    for i in forward:
        j = None
        for step in range(1, n):
            cand = (i + step) % n
            if cand in backward:
                j = cand
                break
        if j is None:
            continue
        g_start = sub(pos[(i - 1) % n], pos[i])
        g_end = sub(pos[(j + 1) % n], pos[j])
        length = (j - i) % n + 1
        pairs.append(QuasiLinePair(start_index=i, end_index=j,
                                   length=length, good=(g_start == g_end)))
    return pairs


def good_pair_exists(chain: ClosedChain,
                     params: Parameters = DEFAULT_PARAMETERS) -> bool:
    """Lemma 1's conclusion for one configuration."""
    return any(p.good for p in classify_pairs(chain, params))
