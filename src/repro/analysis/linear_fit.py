"""Linear runtime fits (Theorem 1: gathering takes O(n) rounds)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit ``rounds ≈ slope · n + intercept``."""

    slope: float
    intercept: float
    r_squared: float
    stderr: float

    def predict(self, n: float) -> float:
        """Predicted round count for chain length ``n``."""
        return self.slope * n + self.intercept

    def describe(self) -> str:
        return (f"rounds ≈ {self.slope:.3f}·n + {self.intercept:.1f} "
                f"(R² = {self.r_squared:.4f})")


def fit_rounds(ns: Sequence[float], rounds: Sequence[float]) -> LinearFit:
    """Fit round counts against chain lengths.

    A high R² with a modest slope verifies the paper's linear bound
    empirically; Theorem 1 guarantees slope ≤ 2·L + 1 = 27.
    """
    if len(ns) != len(rounds) or len(ns) < 2:
        raise ValueError("need at least two (n, rounds) samples")
    res = stats.linregress(np.asarray(ns, dtype=float),
                           np.asarray(rounds, dtype=float))
    return LinearFit(slope=float(res.slope), intercept=float(res.intercept),
                     r_squared=float(res.rvalue) ** 2,
                     stderr=float(res.stderr))
