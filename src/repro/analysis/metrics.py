"""Result summaries and plain-text tables for the experiment harness."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.core.simulator import GatheringResult


def summarize(result: GatheringResult) -> Dict[str, float]:
    """Flatten a gathering result into the metrics the experiments report."""
    reports = result.reports
    total_hops = sum(r.hops for r in reports)
    merge_rounds = sum(1 for r in reports if r.robots_removed > 0)
    started = sum(r.runs_started for r in reports)
    peak_runs = max((r.active_runs for r in reports), default=0)
    return {
        "n": result.initial_n,
        "rounds": result.rounds,
        "rounds_per_robot": round(result.rounds_per_robot, 4),
        "gathered": int(result.gathered),
        "final_n": result.final_n,
        "total_hops": total_hops,
        "merge_rounds": merge_rounds,
        "runs_started": started,
        "peak_active_runs": peak_runs,
    }


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str = "") -> str:
    """Render dict rows as an aligned plain-text table (paper-style)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    header = [str(c) for c in cols]
    body: List[List[str]] = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(cols))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)
