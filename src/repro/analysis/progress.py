"""Progress accounting over traces (Lemma 1/2 instrumentation)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.events import RoundReport


def merge_free_intervals(reports: Sequence[RoundReport]) -> List[int]:
    """Lengths of maximal stretches of rounds without any merge."""
    intervals: List[int] = []
    current = 0
    for r in reports:
        if r.robots_removed > 0:
            if current:
                intervals.append(current)
            current = 0
        else:
            current += 1
    if current:
        intervals.append(current)
    return intervals


def lemma1_windows(reports: Sequence[RoundReport], interval: int) -> Dict[str, int]:
    """Check Lemma 1 over a trace.

    Partitions the rounds into windows of length ``interval`` (the
    paper's L) and counts how many contain a merge, a new run start, or
    neither.  Lemma 1 predicts "neither" stays zero until the terminal
    phase (once gathered, nothing needs to happen).
    """
    merged = started = neither = 0
    for w0 in range(0, len(reports), interval):
        window = reports[w0:w0 + interval]
        has_merge = any(r.robots_removed > 0 for r in window)
        has_start = any(r.runs_started > 0 for r in window)
        if has_merge:
            merged += 1
        elif has_start:
            started += 1
        else:
            neither += 1
    return {"windows_with_merge": merged,
            "windows_with_start_only": started,
            "windows_with_neither": neither}


def merges_per_wave(reports: Sequence[RoundReport], interval: int) -> List[int]:
    """Robots removed in each L-round wave (pipelining throughput)."""
    out: List[int] = []
    for w0 in range(0, len(reports), interval):
        out.append(sum(r.robots_removed for r in reports[w0:w0 + interval]))
    return out
