"""Baselines against which the local algorithm is compared (EXP-B1/B2).

The paper's introduction argues gathering would be easy with global
vision or a global compass; these baselines make that argument
executable.  The Manhattan-Hopper open-chain strategy of [KM09] — which
the paper generalises — is reproduced as the third comparator.
"""

from repro.baselines.global_vision import GlobalVisionGatherer, gather_global_vision
from repro.baselines.global_compass import CompassGatherer, gather_compass
from repro.baselines.manhattan_hopper import (
    ManhattanHopper,
    OpenChain,
    shorten_open_chain,
)

__all__ = [
    "GlobalVisionGatherer",
    "gather_global_vision",
    "CompassGatherer",
    "gather_compass",
    "ManhattanHopper",
    "OpenChain",
    "shorten_open_chain",
]
