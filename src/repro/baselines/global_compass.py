"""Global-compass baseline (paper §1).

The introduction sketches a second relaxation: with a shared compass
(but only local vision), robots can agree on a direction and pile up
toward it.  This gatherer operationalises the sketch: every robot hops
one cell toward the south-east corner of its *local* view's bounding
box (local vision, shared compass), with the same connectivity
relaxation as the global-vision baseline.  The swarm drifts into its
south-east extreme and collapses there.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.grid.lattice import Vec
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS
from repro.core.simulator import GatheringResult


def _sign(v: int) -> int:
    return (v > 0) - (v < 0)


class CompassGatherer:
    """Gather a closed chain using a shared compass and local vision."""

    def __init__(self, chain: ClosedChain, viewing_path_length: int = 11):
        self.chain = chain
        self.view = viewing_path_length
        self.round_index = 0

    def _targets(self) -> Dict[int, Vec]:
        chain = self.chain
        n = chain.n
        pos = chain.positions
        targets: Dict[int, Vec] = {}
        for i, rid in enumerate(chain.ids):
            xs = []
            ys = []
            for off in range(-self.view, self.view + 1):
                q = pos[(i + off) % n]
                xs.append(q[0])
                ys.append(q[1])
            corner = (max(xs), min(ys))       # the local south-east corner
            p = pos[i]
            targets[rid] = (_sign(corner[0] - p[0]), _sign(corner[1] - p[1]))
        return targets

    def step(self) -> int:
        """One synchronous round; returns the number of robots that moved."""
        chain = self.chain
        ids = chain.ids
        pos = {rid: chain.position_of_id(rid) for rid in ids}
        moves = self._targets()
        changed = True
        while changed:
            changed = False
            planned = {rid: (pos[rid][0] + moves.get(rid, (0, 0))[0],
                             pos[rid][1] + moves.get(rid, (0, 0))[1])
                       for rid in ids}
            for i, rid in enumerate(ids):
                if moves.get(rid, (0, 0)) == (0, 0):
                    continue
                p = planned[rid]
                for nb in (ids[(i - 1) % len(ids)], ids[(i + 1) % len(ids)]):
                    q = planned[nb]
                    if abs(p[0] - q[0]) + abs(p[1] - q[1]) > 1:
                        moves[rid] = (0, 0)
                        changed = True
                        break
        actual = {rid: d for rid, d in moves.items() if d != (0, 0)}
        chain.apply_moves(actual)
        chain.contract_coincident(set(actual))
        self.round_index += 1
        return len(actual)

    def run(self, max_rounds: Optional[int] = None) -> GatheringResult:
        initial_n = self.chain.n
        budget = max_rounds if max_rounds is not None else \
            8 * (self.chain.bounding_box().diameter + 4) + 4 * initial_n
        while not self.chain.is_gathered() and self.round_index < budget:
            moved = self.step()
            if moved == 0 and not self.chain.is_gathered():
                break
        gathered = self.chain.is_gathered()
        return GatheringResult(
            gathered=gathered, rounds=self.round_index,
            initial_n=initial_n, final_n=self.chain.n,
            final_positions=self.chain.positions,
            params=DEFAULT_PARAMETERS, stalled=not gathered)


def gather_compass(positions: Sequence[Vec],
                   max_rounds: Optional[int] = None) -> GatheringResult:
    """Convenience wrapper mirroring :func:`repro.gather`."""
    return CompassGatherer(ClosedChain(positions)).run(max_rounds)
