"""Global-vision baseline (paper §1).

With global vision, "the robots could compute the center of the
globally smallest enclosing square and just move to this point".  This
gatherer operationalises that idea while preserving chain connectivity:

* every robot targets a one-cell (8-directional) hop toward the centre
  of the global bounding square;
* a relaxation pass reverts hops that would break a chain link against
  the *planned* positions of the neighbours (global control makes this
  coordination legitimate for the baseline);
* co-located chain neighbours merge exactly as in the main model.

Gathering typically completes in Θ(diameter) rounds — the information
advantage the local algorithm must live without.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.grid.lattice import Vec, chebyshev
from repro.core.chain import ClosedChain
from repro.core.simulator import GatheringResult
from repro.core.config import DEFAULT_PARAMETERS


def _sign(v: int) -> int:
    return (v > 0) - (v < 0)


class GlobalVisionGatherer:
    """Gather a closed chain using global vision."""

    def __init__(self, chain: ClosedChain):
        self.chain = chain
        self.round_index = 0

    def _targets(self) -> Dict[int, Vec]:
        box = self.chain.bounding_box()
        cx2 = box.min_x + box.max_x          # doubled centre avoids fractions
        cy2 = box.min_y + box.max_y
        targets: Dict[int, Vec] = {}
        for rid, p in zip(self.chain.ids, self.chain.positions):
            dx = _sign(cx2 - 2 * p[0])
            dy = _sign(cy2 - 2 * p[1])
            targets[rid] = (dx, dy)
        return targets

    def step(self) -> int:
        """One synchronous round; returns the number of robots that moved."""
        chain = self.chain
        ids = chain.ids
        pos = {rid: chain.position_of_id(rid) for rid in ids}
        moves = self._targets()
        # relaxation: cancel hops that would break a link against the
        # neighbours' *planned* positions, until a fixpoint.
        changed = True
        while changed:
            changed = False
            planned = {rid: (pos[rid][0] + moves.get(rid, (0, 0))[0],
                             pos[rid][1] + moves.get(rid, (0, 0))[1])
                       for rid in ids}
            for i, rid in enumerate(ids):
                if moves.get(rid, (0, 0)) == (0, 0):
                    continue
                left = ids[(i - 1) % len(ids)]
                right = ids[(i + 1) % len(ids)]
                p = planned[rid]
                bad = False
                for nb in (left, right):
                    q = planned[nb]
                    if abs(p[0] - q[0]) + abs(p[1] - q[1]) > 1:
                        bad = True
                        break
                if bad:
                    moves[rid] = (0, 0)
                    changed = True
        actual = {rid: d for rid, d in moves.items() if d != (0, 0)}
        chain.apply_moves(actual)
        chain.contract_coincident(set(actual))
        self.round_index += 1
        return len(actual)

    def run(self, max_rounds: Optional[int] = None) -> GatheringResult:
        """Gather; the budget defaults to a generous multiple of the diameter."""
        initial_n = self.chain.n
        budget = max_rounds if max_rounds is not None else \
            8 * (self.chain.bounding_box().diameter + 4) + 4 * initial_n
        while not self.chain.is_gathered() and self.round_index < budget:
            moved = self.step()
            if moved == 0 and not self.chain.is_gathered():
                break                      # frozen: report as stalled
        gathered = self.chain.is_gathered()
        return GatheringResult(
            gathered=gathered, rounds=self.round_index,
            initial_n=initial_n, final_n=self.chain.n,
            final_positions=self.chain.positions,
            params=DEFAULT_PARAMETERS, stalled=not gathered)


def gather_global_vision(positions: Sequence[Vec],
                         max_rounds: Optional[int] = None) -> GatheringResult:
    """Convenience wrapper mirroring :func:`repro.gather`."""
    return GlobalVisionGatherer(ClosedChain(positions)).run(max_rounds)
