"""Manhattan-Hopper open-chain shortening ([KM09], the paper's ancestor).

Kutylowski & Meyer auf der Heide maintain a chain of relay robots
between a fixed *base camp* and a fixed *explorer* on the grid,
shortening it to optimal length in O(n) rounds.  The closed-chain paper
generalises their idea: a distinguished endpoint sends a moving state
("hopper") down the chain; the robot carrying the state straightens its
local kink and redundant robots are removed.

This module reproduces the strategy's mechanics (fixed distinguishable
endpoints, states emitted by the base every other round, state speed 1,
local shortcut hops, relay removal), sufficient to reproduce the O(n)
behaviour the closed-chain paper builds on.  EXP-B2 compares its round
counts with the closed-chain algorithm's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ChainError
from repro.grid.lattice import Vec, manhattan, sub


@dataclass
class OpenChain:
    """An open chain with fixed endpoints (base camp and explorer)."""

    positions: List[Vec]

    def __post_init__(self) -> None:
        if len(self.positions) < 2:
            raise ChainError("open chain needs at least the two endpoints")
        for a, b in zip(self.positions, self.positions[1:]):
            if manhattan(a, b) > 1:
                raise ChainError(f"open chain broken between {a} and {b}")

    @property
    def n(self) -> int:
        return len(self.positions)

    def optimal_length(self) -> int:
        """Robots needed for a Manhattan-shortest relay chain."""
        return manhattan(self.positions[0], self.positions[-1]) + 1

    def is_taut(self) -> bool:
        """True when the chain is a Manhattan-shortest path."""
        return self.n == self.optimal_length()


@dataclass
class _State:
    index: int                       # robot currently carrying the hopper


class ManhattanHopper:
    """Run the Manhattan-Hopper strategy on an open chain."""

    def __init__(self, chain: OpenChain, emit_interval: int = 2):
        if emit_interval < 1:
            raise ChainError("emit_interval must be >= 1")
        self.chain = chain
        self.emit_interval = emit_interval
        self.states: List[_State] = []
        self.round_index = 0

    def step(self) -> None:
        """One synchronous round: emit, act, advance."""
        pts = self.chain.positions
        # the base (last robot) emits a new state periodically
        if self.round_index % self.emit_interval == 0 and len(pts) > 2:
            if not any(s.index == len(pts) - 2 for s in self.states):
                self.states.append(_State(index=len(pts) - 2))

        removals: List[int] = []
        for state in self.states:
            i = state.index
            if not (0 < i < len(pts) - 1):
                continue
            prev_p, p, next_p = pts[i + 1], pts[i], pts[i - 1]
            gap = manhattan(prev_p, next_p)
            if gap <= 1:
                removals.append(i)       # redundant relay: neighbours connect
            elif gap == 2 and p != _midpointish(prev_p, next_p, p):
                pts[i] = _midpointish(prev_p, next_p, p)

        # remove redundant relays (largest index first keeps others valid)
        for i in sorted(set(removals), reverse=True):
            del pts[i]
            for s in self.states:
                if s.index > i:
                    s.index -= 1
                elif s.index == i:
                    s.index = -1         # state dissolves with its robot
        # advance surviving states toward the explorer (index 0)
        for s in self.states:
            if s.index > 0:
                s.index -= 1
        self.states = [s for s in self.states if s.index > 0]
        self.round_index += 1

    def run(self, max_rounds: Optional[int] = None) -> Tuple[bool, int]:
        """Shorten until taut; returns (success, rounds)."""
        budget = max_rounds if max_rounds is not None else \
            4 * self.emit_interval * self.chain.n + 64
        while not self.chain.is_taut() and self.round_index < budget:
            self.step()
        return self.chain.is_taut(), self.round_index


def _midpointish(a: Vec, b: Vec, current: Vec) -> Vec:
    """A grid point adjacent to both ``a`` and ``b`` (Manhattan gap 2)."""
    mx = (a[0] + b[0]) / 2
    my = (a[1] + b[1]) / 2
    if mx == int(mx) and my == int(my):
        return (int(mx), int(my))
    # diagonal gap: two candidate corners; prefer the one != current
    c1 = (a[0], b[1])
    c2 = (b[0], a[1])
    return c1 if c1 != current else c2


def shorten_open_chain(positions: Sequence[Vec],
                       max_rounds: Optional[int] = None) -> Tuple[bool, int, OpenChain]:
    """Run the Manhattan Hopper; returns (success, rounds, final chain)."""
    chain = OpenChain(list(positions))
    hopper = ManhattanHopper(chain)
    ok, rounds = hopper.run(max_rounds)
    return ok, rounds, chain
