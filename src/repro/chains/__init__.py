"""Chain generators: every input family used by tests and experiments."""

from repro.chains.boundary import fill_holes, is_connected, outline
from repro.chains.perturb import perturb
from repro.chains.random_blobs import random_chain, random_polyomino
from repro.chains.shapes import (
    comb,
    crenellation,
    l_shape,
    needle,
    plus_shape,
    rectangle_ring,
    spiral,
    square_ring,
    t_shape,
    zigzag_band,
)
from repro.chains.stairways import (
    fig16_fragment,
    serpentine_ring,
    staircase_ring,
    stairway_octagon,
)

#: Named generator registry used by the experiment harness and the CLI.
FAMILIES = {
    "rectangle": lambda n: rectangle_ring(max(2, n // 4 + 1), max(2, n // 4 + 1)),
    "needle": lambda n: needle(max(2, n // 2)),
    "square": lambda n: square_ring(max(2, n // 4 + 1)),
    "comb": lambda n: comb(max(1, n // 16)),
    "octagon": lambda n: stairway_octagon(max(3, n // 8), steps=2),
    "spiral": lambda n: spiral(max(1, 1 + n // 120)),
    "random": lambda n: random_chain(n),
}

__all__ = [
    "outline",
    "fill_holes",
    "is_connected",
    "perturb",
    "random_chain",
    "random_polyomino",
    "rectangle_ring",
    "square_ring",
    "needle",
    "comb",
    "crenellation",
    "plus_shape",
    "l_shape",
    "t_shape",
    "zigzag_band",
    "spiral",
    "fig16_fragment",
    "stairway_octagon",
    "staircase_ring",
    "serpentine_ring",
    "FAMILIES",
]
