"""Polyomino outlines as closed chains.

Many interesting closed chains are the outlines of polyominoes (combs,
spirals, L/T/plus shapes, random blobs).  :func:`outline` walks the
boundary of a hole-free cell set counter-clockwise and returns the
corner points visited — a valid closed chain (the walk may revisit
points at pinch corners, which the model allows: only chain *neighbours*
must be distinct initially).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import ChainError
from repro.grid.lattice import Vec

Cell = Tuple[int, int]

# Directed boundary edges keep the polyomino on the walker's left,
# producing a counter-clockwise outline.  For a cell (x, y) occupying
# the unit square [x, x+1] × [y, y+1]:
#   missing south neighbour -> walk east  along the bottom side
#   missing east  neighbour -> walk north along the right side
#   missing north neighbour -> walk west  along the top side
#   missing west  neighbour -> walk south along the left side
_SIDES = (
    ((0, -1), lambda x, y: ((x, y), (x + 1, y))),
    ((1, 0), lambda x, y: ((x + 1, y), (x + 1, y + 1))),
    ((0, 1), lambda x, y: ((x + 1, y + 1), (x, y + 1))),
    ((-1, 0), lambda x, y: ((x, y + 1), (x, y))),
)

# left-turn preference order for resolving pinch points: relative to the
# incoming direction d, try left, straight, right (never reverse).
_LEFT = {(1, 0): (0, 1), (0, 1): (-1, 0), (-1, 0): (0, -1), (0, -1): (1, 0)}
_RIGHT = {v: k for k, v in _LEFT.items()}


def fill_holes(cells: Iterable[Cell]) -> Set[Cell]:
    """Return the cell set with interior holes filled.

    Flood-fills the complement from outside the bounding box; anything
    unreachable is a hole and gets added.
    """
    cells = set(cells)
    if not cells:
        return cells
    xs = [c[0] for c in cells]
    ys = [c[1] for c in cells]
    x0, x1 = min(xs) - 1, max(xs) + 1
    y0, y1 = min(ys) - 1, max(ys) + 1
    outside: Set[Cell] = set()
    queue = deque([(x0, y0)])
    outside.add((x0, y0))
    while queue:
        x, y = queue.popleft()
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if x0 <= nx <= x1 and y0 <= ny <= y1 and (nx, ny) not in cells \
                    and (nx, ny) not in outside:
                outside.add((nx, ny))
                queue.append((nx, ny))
    filled = set(cells)
    for x in range(x0, x1 + 1):
        for y in range(y0, y1 + 1):
            if (x, y) not in cells and (x, y) not in outside:
                filled.add((x, y))
    return filled


def is_connected(cells: Iterable[Cell]) -> bool:
    """4-connectivity of a cell set."""
    cells = set(cells)
    if not cells:
        return True
    start = next(iter(cells))
    seen = {start}
    queue = deque([start])
    while queue:
        x, y = queue.popleft()
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nb = (x + dx, y + dy)
            if nb in cells and nb not in seen:
                seen.add(nb)
                queue.append(nb)
    return len(seen) == len(cells)


def boundary_edges(cells: Set[Cell]) -> Dict[Tuple[Vec, Vec], None]:
    """All directed boundary edges (insertion-ordered set)."""
    edges: Dict[Tuple[Vec, Vec], None] = {}
    for (x, y) in cells:
        for (dx, dy), seg in _SIDES:
            if (x + dx, y + dy) not in cells:
                edges[seg(x, y)] = None
    return edges


def outline(cells: Iterable[Cell]) -> List[Vec]:
    """Counter-clockwise outline of a connected, hole-free polyomino.

    Returns the corner points in walk order (the closing point is not
    repeated).  Raises :class:`ChainError` when the cell set is empty,
    disconnected, or has holes (fill them with :func:`fill_holes`).
    """
    cells = set(cells)
    if not cells:
        raise ChainError("cannot outline an empty polyomino")
    if not is_connected(cells):
        raise ChainError("polyomino is not 4-connected")
    if fill_holes(cells) != cells:
        raise ChainError("polyomino has holes; call fill_holes() first")

    edges = boundary_edges(cells)
    by_start: Dict[Vec, List[Vec]] = {}
    for (a, b) in edges:
        by_start.setdefault(a, []).append(b)

    start_edge = next(iter(edges))
    path: List[Vec] = [start_edge[0]]
    current = start_edge
    used: Set[Tuple[Vec, Vec]] = set()
    while True:
        used.add(current)
        a, b = current
        path.append(b)
        if b == start_edge[0] and len(used) == len(edges):
            break
        outs = [t for t in by_start.get(b, ()) if (b, t) not in used]
        if not outs:
            raise ChainError("boundary walk got stuck (corrupt polyomino?)")
        if len(outs) == 1:
            nxt = outs[0]
        else:
            # pinch point: prefer the left-most turn to stay on this lobe
            d = (b[0] - a[0], b[1] - a[1])
            for cand_dir in (_LEFT[d], d, _RIGHT[d]):
                target = (b[0] + cand_dir[0], b[1] + cand_dir[1])
                if target in outs:
                    nxt = target
                    break
            else:
                nxt = outs[0]
        current = (b, nxt)
    return path[:-1]
