"""Connectivity-preserving chain mutations (fuzzing support).

The mutation operators deform a valid closed chain into another valid
closed chain.  Applied repeatedly they explore configuration space far
from the clean generator families — dents, bulges and local spikes in
arbitrary combination — which is where the property tests hunt for
liveness/safety bugs.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import ChainError
from repro.grid.lattice import Vec, add, is_axis_unit, manhattan, neg, perpendicular, sub
from repro.core.chain import ClosedChain


def _insert_spike(pts: List[Vec], i: int, rng: random.Random) -> Optional[List[Vec]]:
    """Insert an out-and-back pair after robot ``i`` (adds a spike)."""
    p = pts[i]
    nxt = pts[(i + 1) % len(pts)]
    e = sub(nxt, p)
    if not is_axis_unit(e):
        return None
    d = rng.choice(perpendicular(e))
    spike = add(p, d)
    return pts[: i + 1] + [spike, p] + pts[i + 1:]


def _fold_corner(pts: List[Vec], i: int, rng: random.Random) -> Optional[List[Vec]]:
    """Move a corner robot to the opposite corner of its cell (a dent)."""
    n = len(pts)
    p = pts[i]
    a = pts[(i - 1) % n]
    b = pts[(i + 1) % n]
    u = sub(a, p)
    v = sub(b, p)
    if not (is_axis_unit(u) and is_axis_unit(v)) or u == neg(v) or u == v:
        return None
    folded = add(add(p, u), v)
    out = list(pts)
    out[i] = folded
    return out


def _insert_bulge(pts: List[Vec], i: int, rng: random.Random) -> Optional[List[Vec]]:
    """Detour one edge over a neighbouring cell (inserts two robots).

    The edge ``p -> q`` becomes ``p -> p+d -> q+d -> q`` for a
    perpendicular ``d`` — a one-cell bulge.
    """
    n = len(pts)
    p, q = pts[i], pts[(i + 1) % n]
    e = sub(q, p)
    if not is_axis_unit(e):
        return None
    d = rng.choice(perpendicular(e))
    return pts[: i + 1] + [add(p, d), add(q, d)] + pts[i + 1:]


_OPERATORS = (_insert_spike, _fold_corner, _insert_bulge)


def perturb(positions: List[Vec], mutations: int = 10,
            rng: Optional[random.Random] = None) -> List[Vec]:
    """Apply random connectivity-preserving mutations to a closed chain.

    The result is always a valid initial chain (validated before
    returning); mutations that would produce coincident neighbours are
    discarded and retried.
    """
    rng = rng or random.Random()
    pts = list(positions)
    ClosedChain(pts, require_disjoint_neighbors=True)
    done = 0
    attempts = 0
    while done < mutations and attempts < 50 * mutations:
        attempts += 1
        op = rng.choice(_OPERATORS)
        i = rng.randrange(len(pts))
        candidate = op(pts, i, rng)
        if candidate is None:
            continue
        try:
            ClosedChain(candidate, require_disjoint_neighbors=True)
        except ChainError:
            continue
        pts = candidate
        done += 1
    return pts
