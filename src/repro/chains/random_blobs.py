"""Random closed chains via random polyomino outlines.

The generator grows a random 4-connected, hole-free polyomino and takes
its boundary.  Outlines of random blobs mix every local feature the
algorithm must handle — straight stretches, jogs, spikes, stairways,
deep concavities, pinch points — and are the workhorse of the
integration and property tests and of EXP-T1's "random" family.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.errors import ChainError
from repro.grid.lattice import Vec
from repro.chains.boundary import fill_holes, is_connected, outline

Cell = Tuple[int, int]


def random_polyomino(cells: int, rng: Optional[random.Random] = None,
                     elongation: float = 0.0) -> Set[Cell]:
    """Grow a random connected polyomino with ``cells`` cells.

    ``elongation`` in [0, 1) biases growth toward the frontier's newest
    cells, producing stringier shapes (longer chains per cell).
    """
    if cells < 1:
        raise ChainError("random_polyomino needs cells >= 1")
    rng = rng or random.Random()
    blob: Set[Cell] = {(0, 0)}
    frontier: List[Cell] = [(0, 0)]
    while len(blob) < cells:
        if elongation > 0 and rng.random() < elongation:
            seed = frontier[-1]
        else:
            seed = frontier[rng.randrange(len(frontier))]
        x, y = seed
        candidates = [(x + dx, y + dy)
                      for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
                      if (x + dx, y + dy) not in blob]
        if not candidates:
            frontier.remove(seed)
            if not frontier:
                frontier = list(blob)
            continue
        new = candidates[rng.randrange(len(candidates))]
        blob.add(new)
        frontier.append(new)
    return fill_holes(blob)


def random_chain(target_n: int, rng: Optional[random.Random] = None,
                 elongation: float = 0.3, max_tries: int = 64) -> List[Vec]:
    """Random closed chain with roughly ``target_n`` robots.

    Grows blobs until the outline length is within ±30% of the target
    (outline length tracks perimeter, which scales with blob size for a
    fixed shape regime).  Always returns a valid initial chain.
    """
    if target_n < 4:
        raise ChainError("random_chain needs target_n >= 4")
    rng = rng or random.Random()
    cells_estimate = max(1, target_n // 3)
    best: Optional[List[Vec]] = None
    for _ in range(max_tries):
        blob = random_polyomino(cells_estimate, rng, elongation)
        chain = outline(blob)
        if best is None or abs(len(chain) - target_n) < abs(len(best) - target_n):
            best = chain
        if abs(len(chain) - target_n) <= max(2, int(0.3 * target_n)):
            return chain
        # adjust the estimate proportionally
        ratio = target_n / max(len(chain), 1)
        cells_estimate = max(1, int(cells_estimate * ratio))
    assert best is not None
    return best
