"""Deterministic chain families used across tests, examples, benchmarks.

Each generator returns a list of positions forming a valid initial
closed chain (no coincident neighbours, even length).  Families marked
*mergeless* contain no merge pattern at the paper's default ``k_max``
for large enough parameters — they exercise the run machinery.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.errors import ChainError
from repro.grid.lattice import Vec
from repro.chains.boundary import fill_holes, outline

Cell = Tuple[int, int]


def rectangle_ring(width: int, height: int) -> List[Vec]:
    """Axis-aligned rectangle outline with ``width × height`` grid points.

    ``n = 2·(width-1) + 2·(height-1)`` robots.  Thin rectangles collapse
    through cap merges; fat ones (both sides ≥ ``k_max + 2``) are
    mergeless and rely on runs.
    """
    if width < 2 or height < 2:
        raise ChainError("rectangle_ring needs width, height >= 2")
    pts: List[Vec] = []
    pts += [(x, 0) for x in range(width - 1)]
    pts += [(width - 1, y) for y in range(height - 1)]
    pts += [(x, height - 1) for x in range(width - 1, 0, -1)]
    pts += [(0, y) for y in range(height - 1, 0, -1)]
    return pts


def square_ring(side: int) -> List[Vec]:
    """Square outline with ``side × side`` grid points."""
    return rectangle_ring(side, side)


def needle(length: int) -> List[Vec]:
    """Long 2-point-tall rectangle: the paper's thin worst case."""
    return rectangle_ring(length, 2)


def comb(teeth: int, tooth_height: int = 4, tooth_width: int = 2,
         gap: int = 2, spine: int = 2) -> List[Vec]:
    """Outline of a comb polyomino: a spine with upward teeth.

    Combs produce many simultaneous merge opportunities and deeply
    nested good pairs — the pipelining stress test (paper Fig. 9).
    """
    if teeth < 1 or tooth_height < 1 or tooth_width < 1 or gap < 1 or spine < 1:
        raise ChainError("comb parameters must be positive")
    cells: Set[Cell] = set()
    total_w = teeth * tooth_width + (teeth - 1) * gap
    for x in range(total_w):
        for y in range(spine):
            cells.add((x, y))
    for t in range(teeth):
        x0 = t * (tooth_width + gap)
        for dx in range(tooth_width):
            for y in range(spine, spine + tooth_height):
                cells.add((x0 + dx, y))
    return outline(cells)


def crenellation(teeth: int, tooth_width: int = 1, base_height: int = 2) -> List[Vec]:
    """Outline of a battlement: a base band with alternating top teeth.

    Produces the overlapping-merge scenario of paper Fig. 3a along its
    crenellated top edge.
    """
    if teeth < 2 or tooth_width < 1 or base_height < 1:
        raise ChainError("crenellation needs teeth >= 2, tooth_width >= 1")
    cells: Set[Cell] = set()
    width = teeth * 2 * tooth_width
    for x in range(width):
        for y in range(base_height):
            cells.add((x, y))
    for t in range(teeth):
        x0 = t * 2 * tooth_width
        for dx in range(tooth_width):
            cells.add((x0 + dx, base_height))
    return outline(cells)


def plus_shape(arm: int, thickness: int = 2) -> List[Vec]:
    """Outline of a plus/cross polyomino."""
    if arm < 1 or thickness < 1:
        raise ChainError("plus_shape parameters must be positive")
    cells: Set[Cell] = set()
    for x in range(-arm, thickness + arm):
        for y in range(thickness):
            cells.add((x, y))
    for y in range(-arm, thickness + arm):
        for x in range(thickness):
            cells.add((x, y))
    return outline(cells)


def l_shape(width: int, height: int, thickness: int = 2) -> List[Vec]:
    """Outline of an L-shaped polyomino."""
    if width <= thickness or height <= thickness:
        raise ChainError("l_shape needs width and height larger than thickness")
    cells: Set[Cell] = set()
    for x in range(width):
        for y in range(thickness):
            cells.add((x, y))
    for y in range(height):
        for x in range(thickness):
            cells.add((x, y))
    return outline(cells)


def t_shape(width: int, height: int, thickness: int = 2) -> List[Vec]:
    """Outline of a T-shaped polyomino."""
    if width <= thickness or height <= thickness:
        raise ChainError("t_shape needs width and height larger than thickness")
    cells: Set[Cell] = set()
    for x in range(width):
        for y in range(height - thickness, height):
            cells.add((x, y))
    mid = width // 2
    for x in range(mid - thickness // 2, mid - thickness // 2 + thickness):
        for y in range(height):
            cells.add((x, y))
    return outline(cells)


def spiral(windings: int, corridor: int = 2, pitch: int = 4) -> List[Vec]:
    """Outline of a square spiral polyomino.

    The chain runs into the spiral and back out along parallel arms —
    long straight quasi lines joined by corners, with arms one cell
    apart: a tough, mostly mergeless family for the run machinery.
    """
    if windings < 1 or corridor < 1 or pitch < corridor + 1:
        raise ChainError("spiral needs windings >= 1 and pitch > corridor")
    cells: Set[Cell] = set()
    heading = ((1, 0), (0, 1), (-1, 0), (0, -1))
    px, py = 0, 0
    length = pitch
    for leg in range(windings * 4):
        dx, dy = heading[leg % 4]
        for _ in range(length):
            for tx in range(corridor):
                for ty in range(corridor):
                    cells.add((px + tx, py + ty))
            px += dx
            py += dy
        if leg % 2 == 1:
            length += pitch
    for tx in range(corridor):
        for ty in range(corridor):
            cells.add((px + tx, py + ty))
    return outline(fill_holes(cells))


def zigzag_band(periods: int, amplitude: int = 3, run: int = 4,
                thickness: int = 2) -> List[Vec]:
    """Outline of a thick zig-zag ribbon."""
    if periods < 1 or amplitude < 1 or run < 2 or thickness < 1:
        raise ChainError("zigzag_band parameters must be positive (run >= 2)")
    cells: Set[Cell] = set()
    x = 0
    level = 0
    for p in range(periods):
        for dx in range(run):
            for y in range(level, level + thickness):
                cells.add((x + dx, y))
        nxt = amplitude if level == 0 else 0
        lo, hi = min(level, nxt), max(level, nxt) + thickness
        for y in range(lo, hi):
            cells.add((x + run - 1, y))
        x += run
        level = nxt
    return outline(fill_holes(cells))
