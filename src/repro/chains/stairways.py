"""Mergeless chains built from quasi lines and stairways (paper Fig. 16-18).

These constructions realise the structures from the proof of Lemma 1:
chains whose every subchain is a quasi line, a stairway, or a junction
between them — no merge pattern exists anywhere, so all progress must
come from runs.  They are the sharpest liveness tests for the run
machinery.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.errors import ChainError
from repro.grid.lattice import EAST, NORTH, SOUTH, WEST, Vec
from repro.core.chain import ClosedChain
from repro.chains.boundary import fill_holes, outline


def _stair(a: Vec, b: Vec, steps: int) -> List[Vec]:
    """Edges of a stairway alternating ``a, b`` for ``steps`` pairs."""
    edges: List[Vec] = []
    for _ in range(steps):
        edges.extend((a, b))
    return edges


def stairway_octagon(side: int, steps: int = 2) -> List[Vec]:
    """A mergeless octagonal ring: 4 straight quasi lines + 4 stairways.

    Every straight side has ``side`` edges (≥ 3 keeps it a quasi line);
    the corners are stairways of ``steps`` step pairs, whose alternating
    turns admit no merge pattern.  New runs can only start at the eight
    quasi-line endpoints (Fig. 5(i) junctions).
    """
    if side < 3 or steps < 1:
        raise ChainError("stairway_octagon needs side >= 3 and steps >= 1")
    edges: List[Vec] = []
    edges += [EAST] * side
    edges += _stair(NORTH, EAST, steps)
    edges += [NORTH] * side
    edges += _stair(WEST, NORTH, steps)
    edges += [WEST] * side
    edges += _stair(SOUTH, WEST, steps)
    edges += [SOUTH] * side
    edges += _stair(EAST, SOUTH, steps)
    chain = ClosedChain.from_edges((0, 0), edges)
    return chain.positions


def fig16_fragment(line1: int = 5, stair_steps: int = 3, line2: int = 5) -> List[Vec]:
    """The open subchain of paper Fig. 16: two horizontal quasi lines
    connected by a stairway (as positions, not closed).

    Used by the pattern-recognition tests and EXP-F16.
    """
    pts: List[Vec] = [(0, 0)]

    def walk(edge: Vec, count: int) -> None:
        for _ in range(count):
            last = pts[-1]
            pts.append((last[0] + edge[0], last[1] + edge[1]))

    walk(EAST, line1)
    for _ in range(stair_steps):
        walk(NORTH, 1)
        walk(EAST, 1)
    walk(NORTH, 1)
    walk(EAST, line2)
    return pts


def staircase_ring(steps: int, run: int = 6, rise: int = 6,
                   band: int = 13) -> List[Vec]:
    """Fig. 17/18-style mergeless ring: a thick staircase band outline.

    Horizontal quasi lines alternate with vertical quasi lines along a
    rising staircase of ``steps`` steps; the band is ``band`` cells
    thick, so the two end caps are straight runs of ``band`` edges —
    unmergeable whenever ``band >= k_max + 1`` (the default 13 exceeds
    the paper's largest merge length 10).
    """
    if steps < 1 or run < 3 or rise < 3 or band < 2:
        raise ChainError("staircase_ring needs steps >= 1, run/rise >= 3, band >= 2")
    cells: Set[Tuple[int, int]] = set()
    for i in range(steps):
        x0, y0 = i * run, i * rise
        for x in range(x0, x0 + run + band):
            for y in range(y0, y0 + band):
                cells.add((x, y))
        for x in range(x0 + run, x0 + run + band):
            for y in range(y0, y0 + rise + band):
                cells.add((x, y))
    return outline(fill_holes(cells))


def serpentine_ring(lines: int = 2, line_len: int = 8, riser: int = 4) -> List[Vec]:
    """A self-overlapping serpentine ring (hard overlap family).

    The chain snakes over ``lines`` horizontal levels and then descends
    back along the start column, doubling over its own risers — legal
    in the paper's model (only chain *neighbours* must be distinct) and
    a stress test for merges between co-located non-neighbours, which
    must NOT happen.
    """
    if lines < 1 or line_len < 3 or riser < 3:
        raise ChainError("serpentine_ring needs line_len >= 3, riser >= 3, lines >= 1")
    edges: List[Vec] = []
    for i in range(lines):
        horiz = EAST if i % 2 == 0 else WEST
        edges += [horiz] * line_len
        edges += [NORTH] * riser
    if lines % 2 == 1:
        edges += [WEST] * line_len
    edges += [SOUTH] * (lines * riser)
    chain = ClosedChain.from_edges((0, 0), edges)
    return chain.positions
