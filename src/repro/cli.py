"""Command-line interface.

Usage examples::

    python -m repro gather --family square --n 80 --render
    python -m repro gather --chain my_chain.json --engine vectorized
    python -m repro batch --family square --sizes 16 32 64 --workers 4
    python -m repro batch --family random --sizes 96 --repeat 20 --json
    python -m repro render --family octagon --n 64 --svg out.svg
    python -m repro experiment --ids EXP-T1 EXP-FIG --quick --workers 2
    python -m repro serve --slots 256 --wal /var/lib/repro/wal
    python -m repro families
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.config import Parameters
from repro.core.simulator import ENGINES, Simulator
from repro.chains import FAMILIES
from repro.io import load_chain
from repro.viz import render_ascii, save_svg
from repro.analysis import summarize


def _build_chain(args):
    if args.chain:
        return load_chain(args.chain).positions
    family = FAMILIES.get(args.family)
    if family is None:
        raise SystemExit(f"unknown family {args.family!r}; "
                         f"try one of {sorted(FAMILIES)}")
    return family(args.n)


def _params(args) -> Parameters:
    kwargs = {}
    if getattr(args, "viewing", None):
        kwargs["viewing_path_length"] = args.viewing
    if getattr(args, "interval", None):
        kwargs["start_interval"] = args.interval
    if getattr(args, "k_max", None):
        kwargs["k_max"] = args.k_max
    return Parameters(**kwargs)


def cmd_gather(args) -> int:
    positions = _build_chain(args)
    sim = Simulator(positions, params=_params(args), engine=args.engine,
                    check_invariants=args.check, record_trace=args.render)
    result = sim.run(max_rounds=args.max_rounds)
    print(result.summary())
    if args.json:
        print(json.dumps(summarize(result), indent=2))
    if args.render and result.trace is not None:
        from repro.viz import render_trace_strip
        print(render_trace_strip(result.trace.snapshots,
                                 every=max(1, result.rounds // 6), max_frames=6))
    return 0 if result.gathered else 2


def cmd_render(args) -> int:
    positions = _build_chain(args)
    if args.svg:
        save_svg(args.svg, positions, title=f"{args.family} n={len(positions)}")
        print(f"wrote {args.svg}")
    else:
        print(render_ascii(positions))
    return 0


def _batch_progress(every: int = 100):
    """Progress callback printing each ``every``-chain milestone.

    Long sweeps otherwise run silent; the callback is rate-limited to
    crossings of the milestone (and completion) so tight fleets do not
    flood the terminal.
    """
    last = [0]

    def cb(done: int, total: int) -> None:
        if done // every > last[0] // every or done == total:
            # a streaming batch reports total == -1 until its input
            # iterator is exhausted; elide the unknown
            of = "" if total < 0 else f"/{total}"
            print(f"  completed {done}{of} chains", flush=True)
        last[0] = done

    return cb


def _iter_jsonl_chains(path: str, skip_bad: bool = False, on_bad=None):
    """Yield position lists from a JSONL file ('-' reads stdin).

    One chain per line: a JSON array of ``[x, y]`` pairs.  Blank lines
    are skipped, so concatenated outputs stream through unchanged.
    A line that is not a position list aborts (strict default) or —
    with ``skip_bad`` — is quarantined: ``on_bad(lineno, error, raw)``
    is called and the stream continues.  Skipped lines consume no
    stream index (the scheduler never sees them), so the dead-letter
    line number is the only handle back to the input.
    """
    if path == "-":
        fh = sys.stdin
        # a detached or closed stdin (`0<&-`, daemonised parents) is an
        # *empty* stream, not a crash: the batch reports 0/0 and exits
        # 0, exactly like `printf '' |` — distinguishable from a parse
        # failure, which still aborts
        if fh is None or getattr(fh, "closed", False):
            return
    else:
        fh = open(path, "r", encoding="utf-8")
    try:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                pts = json.loads(line)
                yield [(int(x), int(y)) for x, y in pts]
            except (ValueError, TypeError) as exc:
                if not skip_bad:
                    raise SystemExit(
                        f"{path}:{lineno}: not a JSON position list: {exc}")
                if on_bad is not None:
                    on_bad(lineno, exc, line)
    finally:
        if fh is not sys.stdin:
            fh.close()


def _open_stream_out(path: str, resume: bool):
    """The NDJSON output file and the stream indices it already holds.

    Delegates to :func:`repro.io.serialization.open_ndjson_ledger`
    (shared with the service tier, §2.15): on ``--resume`` the torn
    trailing line is truncated, complete lines' ``chain`` indices join
    the seen set, and new lines append — the finished file is
    byte-identical to an uninterrupted run's.
    """
    from repro.errors import ChainError
    from repro.io.serialization import open_ndjson_ledger
    try:
        return open_ndjson_ledger(path, resume)
    except ChainError as exc:
        raise SystemExit(str(exc))


def cmd_batch_stream(args) -> int:
    """Bounded-memory streaming batch: JSONL chains in, results out."""
    from repro.core.batch import BatchSimulator
    from repro.core.results import ChainOutcome
    if args.engine != "kernel":
        raise SystemExit("--stream runs on the fleet backend; it requires "
                         "--engine kernel")
    if args.backend == "process":
        raise SystemExit("--stream runs on the fleet backend; "
                         "--backend process has no shared arena to bound")
    backend = "shm" if args.backend == "shm" else "fleet"
    if args.resume and not args.wal:
        raise SystemExit("--resume continues a write-ahead-logged run; "
                         "it needs --wal DIR")
    if args.resume and backend == "shm":
        raise SystemExit("--backend shm streams are not snapshot-resumable "
                         "(per-shard WALs are effect logs); re-run, or use "
                         "the service tier for exactly-once re-feeding")
    if args.resume and args.workers and args.workers > 1:
        raise SystemExit("--resume continues the one top-level log "
                         "in-process; drop --workers")
    if args.skip_bad_lines and not args.dead_letter:
        raise SystemExit("--skip-bad-lines quarantines rejected input "
                         "lines; it needs --dead-letter FILE")
    faults = None
    if args.faults:
        from repro.core.faults import FaultPlan
        try:
            faults = FaultPlan.parse(args.faults)
        except ValueError as exc:
            raise SystemExit(f"--faults: {exc}")
    dl = None
    if args.dead_letter:
        from repro.core.supervisor import DeadLetterWriter
        dl = DeadLetterWriter(args.dead_letter)
    bad_lines = [0]

    def on_bad(lineno, exc, raw):
        bad_lines[0] += 1
        dl.write({"kind": "bad-line", "line": lineno,
                  "error": str(exc), "raw": raw[:200]})

    out_fh, seen = (None, set())
    if args.out:
        out_fh, seen = _open_stream_out(args.out, args.resume)
    sim = BatchSimulator([], params=_params(args), engine="kernel",
                         check_invariants=args.check, workers=args.workers,
                         keep_reports=False, backend=backend)
    progress = _batch_progress() if args.progress else None
    chains = _iter_jsonl_chains(args.stream, skip_bad=args.skip_bad_lines,
                                on_bad=on_bad)
    # a dead-letter ledger turns on the supervision tier (§2.13):
    # poisoned chains quarantine to the ledger instead of aborting
    on_error = "quarantine" if dl is not None else "raise"
    total = gathered = rounds = robots = quarantined = 0
    try:
        for idx, result in sim.run_stream(chains, slots=args.slots,
                                          max_rounds=args.max_rounds,
                                          progress=progress,
                                          wal_dir=args.wal,
                                          snapshot_every=args.snapshot_every,
                                          faults=faults,
                                          resume=args.resume,
                                          on_error=on_error,
                                          max_retries=args.max_retries):
            if isinstance(result, ChainOutcome) and not result.ok:
                quarantined += 1
                dl.write_outcome(result)
                continue
            if isinstance(result, ChainOutcome):
                result = result.result
            total += 1
            gathered += bool(result.gathered)
            rounds += result.rounds
            robots += result.initial_n
            # NDJSON, one line per finished chain, in completion order.
            # The line is flushed *before* the loop re-enters the
            # generator (which appends the WAL yield record), so a
            # recorded yield always implies a durable output line.
            line = json.dumps({"chain": idx, "n": result.initial_n,
                               "rounds": result.rounds,
                               "gathered": result.gathered,
                               "rounds_per_robot":
                               round(result.rounds_per_robot, 3)})
            if out_fh is not None:
                if idx not in seen:
                    out_fh.write(line + "\n")
                    out_fh.flush()
            elif args.json:
                print(line, flush=True)
    finally:
        if out_fh is not None:
            out_fh.close()
        if dl is not None:
            dl.close()
    stats = sim.last_stream_stats or {}
    extras = ""
    if dl is not None:
        extras = (f", quarantined={quarantined}, "
                  f"bad_lines={bad_lines[0]}")
    if "topo_rebuilds" in stats:
        # single-worker streams report the incremental-topology
        # telemetry: delta splices vs full rebuilds plus round rate
        extras += (f", rounds_per_s={stats.get('rounds_per_s', 0.0)}, "
                   f"topo_rebuilds={stats['topo_rebuilds']}, "
                   f"topo_delta_ops={stats['topo_delta_ops']}, "
                   f"topo_delta_cells={stats['topo_delta_cells']}")
    if "per_shard" in stats:
        # shm streams report per-shard scaling telemetry so scale-out
        # is observable, not inferred
        extras += (f", chains_per_s={stats.get('chains_per_s', 0.0)}, "
                   f"respawns={stats.get('respawns', 0)}")
        for row in stats["per_shard"]:
            print(f"  shard {row['shard']}: completed={row['completed']}, "
                  f"chains_per_s={row['chains_per_s']}, "
                  f"respawns={row['respawns']}", flush=True)
    print(f"{gathered}/{total} gathered, {robots} robots in {rounds} rounds "
          f"total (slots={args.slots}, workers={sim.workers}, "
          f"peak_live={stats.get('peak_live_chains', 'n/a')}{extras})")
    return 0 if gathered == total and not quarantined and not bad_lines[0] \
        else 2


def cmd_batch(args) -> int:
    import random
    from repro.core.batch import BatchSimulator
    if args.stream:
        return cmd_batch_stream(args)
    if args.wal or args.resume or args.out or args.faults \
            or args.dead_letter or args.skip_bad_lines:
        raise SystemExit("--wal/--resume/--out/--faults/--dead-letter/"
                         "--skip-bad-lines apply to streaming batches; "
                         "add --stream JSONL")
    family = FAMILIES.get(args.family)
    if family is None:
        raise SystemExit(f"unknown family {args.family!r}; "
                         f"try one of {sorted(FAMILIES)}")
    from repro.chains import random_chain
    rng = random.Random(args.seed)
    chains = []
    labels = []
    for n in args.sizes:
        for _ in range(args.repeat):
            if args.family == "random":
                chains.append(random_chain(n, rng))  # deterministic via --seed
            else:
                chains.append(family(n))
            labels.append(f"{args.family}-{n}")
    sim = BatchSimulator(chains, params=_params(args), engine=args.engine,
                         check_invariants=args.check, workers=args.workers,
                         keep_reports=False, backend=args.backend)
    progress = _batch_progress() if args.progress else None
    batch = sim.run(max_rounds=args.max_rounds, progress=progress)
    print(batch.summary())
    if args.json:
        rows = [{"chain": lbl, "n": r.initial_n, "rounds": r.rounds,
                 "gathered": r.gathered,
                 "rounds_per_robot": round(r.rounds_per_robot, 3)}
                for lbl, r in zip(labels, batch)]
        print(json.dumps({"summary": batch.summary(), "runs": rows}, indent=2))
    return 0 if batch.all_gathered else 2


def cmd_wal_audit(args) -> int:
    """Machine-check a WAL directory against a deterministic re-run."""
    from repro.errors import WalError
    from repro.io.wal import audit_wal
    # unparseable lines never consumed a stream index (strict runs
    # aborted on them, --skip-bad-lines runs quarantined them), so the
    # audit filters them the same way the logged run did
    skipped = [0]

    def _on_bad(lineno, exc, raw):
        skipped[0] += 1

    chains = (_iter_jsonl_chains(args.stream, skip_bad=True, on_bad=_on_bad)
              if args.stream else ())
    try:
        report = audit_wal(args.dir, chains)
    except WalError as exc:
        print(f"audit FAILED: {exc}")
        return 1
    if skipped[0]:
        print(f"note: {skipped[0]} unparseable stream line(s) skipped, "
              f"as the logged run did")
    print(report.summary())
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    """Gathering-as-a-service: NDJSON-over-TCP front-end (§2.15)."""
    import asyncio
    from repro.service.server import GatherService, serve
    try:
        svc = GatherService(
            host=args.host, port=args.port, slots=args.slots,
            workers=args.workers or 1, queue_capacity=args.queue,
            params=_params(args), wal_dir=args.wal, resume=args.resume,
            snapshot_every=args.snapshot_every, max_rounds=args.max_rounds,
            max_chain=args.max_chain, check_invariants=args.check)
    except ValueError as exc:
        raise SystemExit(str(exc))

    def ready(s):
        # parse-friendly ready line: harnesses read the bound port here
        print(f"serving on {s.host}:{s.port} (slots={s.slots}, "
              f"workers={s.workers}, queue={s.queue_capacity}"
              f"{', wal=' + s.wal_dir if s.wal_dir else ''})", flush=True)

    try:
        asyncio.run(serve(svc, ready=ready))
    except KeyboardInterrupt:
        pass
    except Exception as exc:
        print(f"service failed: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    print(f"served {svc.served} chains", flush=True)
    return 0


def cmd_experiment(args) -> int:
    from repro.experiments import run_experiments, format_markdown_report
    results = run_experiments(ids=args.ids or None, quick=args.quick,
                              verbose=True, workers=args.workers)
    if args.markdown:
        print(format_markdown_report(results))
    return 0 if all(r.passed for r in results) else 1


def cmd_families(args) -> int:
    for name in sorted(FAMILIES):
        pts = FAMILIES[name](48)
        print(f"{name:12s} example n={len(pts)}")
    return 0


def cmd_verify(args) -> int:
    from repro.verification import verify_all
    report = verify_all(args.n, engine=args.engine, limit=args.limit)
    scope = "all" if args.limit is None else f"first {args.limit}"
    print(f"n={report.n}: {scope} {report.total} configurations, "
          f"{report.gathered} gathered, max {report.max_rounds} rounds")
    for pts in report.failures[:5]:
        print("  FAILURE:", pts)
    return 0 if report.complete or (args.limit and not report.failures) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gathering a closed chain of robots on a grid "
                    "(IPDPS 2016 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_chain_args(p):
        p.add_argument("--family", default="square",
                       help="generator family (see `repro families`)")
        p.add_argument("--n", type=int, default=64,
                       help="approximate chain length")
        p.add_argument("--chain", help="load a chain JSON instead")

    g = sub.add_parser("gather", help="run the gathering algorithm")
    add_chain_args(g)
    g.add_argument("--engine", choices=ENGINES, default="reference")
    g.add_argument("--max-rounds", type=int, default=None)
    g.add_argument("--check", action="store_true",
                   help="enable per-round invariant checking")
    g.add_argument("--render", action="store_true",
                   help="print an ASCII film strip of the gathering")
    g.add_argument("--json", action="store_true", help="print metrics JSON")
    g.add_argument("--viewing", type=int, help="viewing path length (default 11)")
    g.add_argument("--interval", type=int, help="run start interval L (default 13)")
    g.add_argument("--k-max", type=int, dest="k_max",
                   help="merge length cap (default: viewing - 1)")
    g.set_defaults(func=cmd_gather)

    r = sub.add_parser("render", help="render a chain (ASCII or SVG)")
    add_chain_args(r)
    r.add_argument("--svg", help="write an SVG file instead of ASCII")
    r.set_defaults(func=cmd_render)

    b = sub.add_parser("batch",
                       help="gather a fleet of chains (optionally in parallel)")
    b.add_argument("--family", default="square",
                   help="generator family (see `repro families`)")
    b.add_argument("--sizes", type=int, nargs="+", default=[32, 64],
                   help="approximate chain lengths")
    b.add_argument("--repeat", type=int, default=1,
                   help="chains per size (for stochastic families)")
    b.add_argument("--seed", type=int, default=0,
                   help="seed for stochastic families")
    b.add_argument("--engine", choices=ENGINES, default="kernel")
    b.add_argument("--backend", choices=("auto", "fleet", "process", "shm"),
                   default="auto",
                   help="fleet: shared-array fleet kernel (kernel engine); "
                        "process: one simulation per chain; shm: zero-copy "
                        "shared-memory shard tier (--workers slab-backed "
                        "kernel processes, kernel engine); auto: fleet "
                        "whenever the engine is kernel")
    b.add_argument("--workers", type=int, default=None,
                   help="process-pool width (default: in-process; the fleet "
                        "backend shards the batch across workers)")
    b.add_argument("--stream", metavar="JSONL",
                   help="stream chains from a JSONL file of position lists "
                        "('-' reads stdin) through a bounded arena instead "
                        "of materialising a fleet; results print as chains "
                        "finish (kernel engine only)")
    b.add_argument("--slots", type=int, default=256,
                   help="streaming slot budget: max chains concurrently "
                        "resident in total (default: 256; with --workers "
                        "each worker kernel gets slots//workers)")
    b.add_argument("--wal", metavar="DIR",
                   help="write-ahead-log the stream to DIR (round deltas + "
                        "periodic snapshots) so a killed run can --resume "
                        "bit-identically; with --workers each worker logs "
                        "to its own shard-<k>/ sub-WAL and a killed worker "
                        "resumes from its shard snapshot")
    b.add_argument("--resume", action="store_true",
                   help="resume a crashed --wal run: restore the latest "
                        "snapshot, replay the log, skip already-yielded "
                        "results and continue the same stream")
    b.add_argument("--out", metavar="FILE",
                   help="write NDJSON results to FILE instead of stdout; "
                        "with --resume, already-written lines are kept and "
                        "deduplicated so the finished file is byte-identical "
                        "to an uninterrupted run's")
    b.add_argument("--snapshot-every", type=int, default=512,
                   dest="snapshot_every", metavar="R",
                   help="rounds between WAL snapshots (default 512)")
    b.add_argument("--faults", metavar="SPEC",
                   help="deterministic fault injection, e.g. "
                        "'seed=7,crash=0.02,perturb=0.1,mid_crash=0.01,"
                        "mid_restart=0.02,window=32': drop, reshape or "
                        "mid-run-fault stream entries reproducibly")
    b.add_argument("--dead-letter", metavar="FILE", dest="dead_letter",
                   help="supervised streaming: append quarantined chains "
                        "(poisoned inputs, invariant violations, chains "
                        "that keep killing workers) to FILE as NDJSON and "
                        "keep streaming instead of aborting")
    b.add_argument("--skip-bad-lines", action="store_true",
                   dest="skip_bad_lines",
                   help="quarantine unparseable --stream input lines to "
                        "the --dead-letter ledger (with line numbers) "
                        "instead of aborting; default is strict")
    b.add_argument("--max-retries", type=int, default=3, dest="max_retries",
                   metavar="N",
                   help="re-dispatches granted to a chunk whose worker "
                        "died before it is bisected down to the poison "
                        "chain (default 3)")
    b.add_argument("--progress", action="store_true",
                   help="print per-100-chain completion milestones")
    b.add_argument("--max-rounds", type=int, default=None)
    b.add_argument("--check", action="store_true",
                   help="enable per-round invariant checking")
    b.add_argument("--json", action="store_true", help="print per-run JSON")
    b.add_argument("--viewing", type=int, help="viewing path length (default 11)")
    b.add_argument("--interval", type=int, help="run start interval L (default 13)")
    b.add_argument("--k-max", type=int, dest="k_max",
                   help="merge length cap (default: viewing - 1)")
    b.set_defaults(func=cmd_batch)

    s = sub.add_parser(
        "serve",
        help="gathering-as-a-service: accept chain submissions over "
             "NDJSON TCP and stream results back as they finish")
    s.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    s.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0: pick a free port and print "
                        "it in the ready line)")
    s.add_argument("--slots", type=int, default=256,
                   help="streaming slot budget shared by all clients "
                        "(default 256)")
    s.add_argument("--workers", type=int, default=None,
                   help="shard the stream across the zero-copy shared-"
                        "memory tier: K slab-backed kernel processes "
                        "(default: in-process kernel); persisted in the "
                        "service WAL header and restored on --resume")
    s.add_argument("--queue", type=int, default=None,
                   help="admission queue capacity; submissions beyond it "
                        "get a backpressure frame and park (default: "
                        "slots)")
    s.add_argument("--wal", metavar="DIR",
                   help="write-ahead-log the service to DIR (submissions, "
                        "admission order, results ledger + kernel WAL) so "
                        "a killed service can --resume")
    s.add_argument("--resume", action="store_true",
                   help="resume a killed --wal service: replay accepted "
                        "submissions in logged admission order and "
                        "complete the results ledger byte-identically")
    s.add_argument("--snapshot-every", type=int, default=512,
                   dest="snapshot_every", metavar="R",
                   help="rounds between WAL snapshots (default 512)")
    s.add_argument("--max-chain", type=int, default=4096, dest="max_chain",
                   metavar="N",
                   help="largest accepted submission; longer chains are "
                        "rejected with a bad-line frame (default 4096)")
    s.add_argument("--max-rounds", type=int, default=None,
                   help="round budget per admitted chain; over-budget "
                        "chains come back quarantined (default: 3n+50)")
    s.add_argument("--check", action="store_true",
                   help="enable per-round invariant checking")
    s.add_argument("--viewing", type=int, help="viewing path length (default 11)")
    s.add_argument("--interval", type=int, help="run start interval L (default 13)")
    s.add_argument("--k-max", type=int, dest="k_max",
                   help="merge length cap (default: viewing - 1)")
    s.set_defaults(func=cmd_serve)

    e = sub.add_parser("experiment", help="run reproduction experiments")
    e.add_argument("--ids", nargs="*", help="experiment ids (default: all)")
    e.add_argument("--quick", action="store_true", help="reduced sizes")
    e.add_argument("--markdown", action="store_true",
                   help="print the EXPERIMENTS.md body")
    e.add_argument("--workers", type=int, default=None,
                   help="process-pool width for sweep experiments")
    e.set_defaults(func=cmd_experiment)

    f = sub.add_parser("families", help="list chain generator families")
    f.set_defaults(func=cmd_families)

    w = sub.add_parser("wal", help="write-ahead-log maintenance")
    wsub = w.add_subparsers(dest="wal_command", required=True)
    wa = wsub.add_parser(
        "audit",
        help="re-execute a logged stream and diff it against its own "
             "audit-only records (round effects, admissions, retires, "
             "yields); exits 1 at the first divergent LSN")
    wa.add_argument("dir", help="WAL directory (wal.ndjson + snapshots)")
    wa.add_argument("--stream", metavar="JSONL",
                    help="the JSONL chain stream the logged run was fed "
                         "(required when the log admitted any chains "
                         "after its last on-disk snapshot)")
    wa.set_defaults(func=cmd_wal_audit)

    v = sub.add_parser("verify",
                       help="exhaustively verify all closed chains of length n")
    v.add_argument("--n", type=int, default=10, help="chain length (even)")
    v.add_argument("--engine", choices=ENGINES, default="kernel")
    v.add_argument("--limit", type=int, default=None,
                   help="cap the number of configurations (sampling)")
    v.set_defaults(func=cmd_verify)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
