"""Core: the paper's gathering algorithm and its FSYNC execution model."""

from repro.core.batch import (BatchResult, BatchSimulator, gather_batch,
                              gather_stream)
from repro.core.chain import ClosedChain, MergeRecord
from repro.core.config import DEFAULT_PARAMETERS, PROOF_PARAMETERS, Parameters
from repro.core.engine import Engine
from repro.core.events import RoundReport, Snapshot, Trace
from repro.core.merges import MergePlan, plan_merges
from repro.core.patterns import (
    MergePattern,
    RunStart,
    find_merge_patterns,
    run_start_decisions,
    endpoint_visible_ahead,
    is_quasi_line,
    is_stairway,
)
from repro.core.results import ChainOutcome
from repro.core.runs import RunMode, RunRegistry, RunState, StopReason
from repro.core.simulator import GatheringResult, Simulator, gather
from repro.core.supervisor import (DeadLetterWriter, StreamSupervisor,
                                   supervise_stream)
from repro.core.view import ChainWindow

__all__ = [
    "BatchResult",
    "BatchSimulator",
    "gather_batch",
    "gather_stream",
    "ClosedChain",
    "MergeRecord",
    "Parameters",
    "DEFAULT_PARAMETERS",
    "PROOF_PARAMETERS",
    "Engine",
    "RoundReport",
    "Snapshot",
    "Trace",
    "MergePlan",
    "plan_merges",
    "MergePattern",
    "RunStart",
    "find_merge_patterns",
    "run_start_decisions",
    "endpoint_visible_ahead",
    "is_quasi_line",
    "is_stairway",
    "RunMode",
    "RunRegistry",
    "RunState",
    "StopReason",
    "GatheringResult",
    "Simulator",
    "gather",
    "ChainWindow",
    "ChainOutcome",
    "DeadLetterWriter",
    "StreamSupervisor",
    "supervise_stream",
]
