"""Admission sources: live, open-ended intake for the streaming tier.

DESIGN.md §2.15.  :meth:`FleetKernel.run_stream` was built around a
*finite* iterator of chains — ``next()`` either returns the next chain
or raises ``StopIteration``, and the scheduler treats the latter as
"no more work, ever".  A service front-end needs a third answer:
*"nothing right now, but keep the stream open"* — live chains must
keep stepping while the wire is idle, and a fully drained arena must
park (not exit) until the next submission or an explicit close.

An **admission source** is any object exposing::

    take(block=False, timeout=None) -> chain-or-positions
        Non-blocking by default.  Raises :class:`Starved` when the
        source is open but momentarily empty (``block=True`` waits —
        up to ``timeout`` seconds, then :class:`Starved` again);
        raises ``StopIteration`` once the source is closed *and*
        drained.
    close()
        No further submissions; pending items still drain.

plus plain (blocking) iteration, so every existing consumer of a chain
iterable — ``FleetKernel.restore_stream``'s fast-forward, the
supervised pool's intake loop — keeps working unchanged.  The
scheduler detects the protocol by the ``take`` attribute; plain
iterables keep the exact pre-§2.15 code path.

:class:`QueueSource` is the reference implementation: a bounded,
thread-safe FIFO whose producer side is fed from another thread (the
asyncio service loop, a test driver) while the fleet kernel consumes
it from its own thread.  The service tier's fair queue
(:class:`repro.service.queue.FairAdmissionQueue`) implements the same
protocol with per-client round-robin on top.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Iterator, Optional


class Starved(Exception):
    """An admission source is open but has nothing to hand out.

    Distinct from ``StopIteration`` (closed and drained): the
    scheduler reacts by stepping the live fleet (work remains) or by
    parking in a blocking :meth:`~QueueSource.take` (arena empty).
    """


def is_admission_source(obj) -> bool:
    """Duck-typed protocol check used by the streaming schedulers."""
    return callable(getattr(obj, "take", None))


class QueueSource:
    """Bounded thread-safe admission queue implementing the protocol.

    Producers call :meth:`put` (blocking when the queue is at
    ``capacity``) or :meth:`put_nowait`; the consumer — the fleet
    kernel's pull loop — calls :meth:`take`.  :meth:`close` ends the
    stream once the backlog drains.  ``capacity=None`` is unbounded
    (replay feeds).
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None: unbounded)")
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        #: total items ever accepted (producer side)
        self.accepted = 0
        #: total items ever taken (consumer side)
        self.taken = 0
        #: high-water mark of the backlog
        self.peak_depth = 0

    # -- producer side -------------------------------------------------
    def put(self, item, timeout: Optional[float] = None) -> None:
        """Enqueue; block while at capacity.  Raises ``ValueError`` on
        a closed source and ``TimeoutError`` when ``timeout`` expires
        at capacity."""
        with self._not_full:
            while (not self._closed and self.capacity is not None
                   and len(self._items) >= self.capacity):
                if not self._not_full.wait(timeout):
                    raise TimeoutError("admission queue full")
            if self._closed:
                raise ValueError("admission source is closed")
            self._append(item)

    def put_nowait(self, item) -> None:
        """Enqueue or raise ``BlockingIOError`` when at capacity."""
        with self._lock:
            if self._closed:
                raise ValueError("admission source is closed")
            if (self.capacity is not None
                    and len(self._items) >= self.capacity):
                raise BlockingIOError("admission queue full")
            self._append(item)

    def _append(self, item) -> None:
        self._items.append(item)
        self.accepted += 1
        if len(self._items) > self.peak_depth:
            self.peak_depth = len(self._items)
        self._not_empty.notify()

    # -- consumer side -------------------------------------------------
    def take(self, block: bool = False, timeout: Optional[float] = None):
        """Dequeue per the admission-source protocol (see module doc)."""
        with self._not_empty:
            if block:
                if not self._not_empty.wait_for(
                        lambda: self._items or self._closed, timeout):
                    raise Starved
            if self._items:
                self.taken += 1
                item = self._items.popleft()
                self._not_full.notify()
                return item
            if self._closed:
                raise StopIteration
            raise Starved

    def close(self) -> None:
        """End the stream; queued items still drain through ``take``."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def qsize(self) -> int:
        with self._lock:
            return len(self._items)

    # -- iterable face (restore fast-forward, pool intake) -------------
    def __iter__(self) -> Iterator:
        return self

    def __next__(self):
        # blocking iteration: the classic iterator contract on top of
        # the protocol — parks while open-but-empty, ends on close
        while True:
            try:
                return self.take(block=True)
            except Starved:
                continue


def feed_queue(source: QueueSource, chains: Iterable,
               close: bool = True) -> None:
    """Feed a finite iterable through a source (testing convenience)."""
    for c in chains:
        source.put(c)
    if close:
        source.close()
