"""Per-robot decision logic — the algorithm of paper Fig. 15.

Every round each robot executes, from the same FSYNC snapshot:

1. **Merge** — if it participates in a visible merge pattern it performs
   the pattern's hop (blacks) or stands still (whites); its runs
   terminate (Table 1.3).
2. **Run operations** — termination conditions (Table 1), run passing
   (Fig. 8/14), travel continuation, and the reshapement operations of
   Fig. 11.
3. **Start new runs** — every L-th round, at the shapes of Fig. 5.

The functions here are *pure*: they read the snapshot through
:class:`~repro.core.view.ChainWindow` (which enforces the viewing path
length) and return decision records that the engine applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.grid.lattice import Vec, add, are_perpendicular, is_axis_unit
from repro.core.config import Parameters
from repro.core.patterns import endpoint_visible_ahead
from repro.core.runs import RunMode, RunState, StopReason
from repro.core.view import ChainWindow


@dataclass
class RunDecision:
    """The action a run takes this round (engine applies it)."""

    run: RunState
    stop_reason: Optional[StopReason] = None
    hop: Optional[Vec] = None
    mode_after: Optional[RunMode] = None
    target_after_set: bool = False
    target_after: Optional[int] = None
    travel_steps_after: Optional[int] = None

    @property
    def moves(self) -> bool:
        """Surviving runs always advance one robot (Lemma 3.1)."""
        return self.stop_reason is None


def _oncoming_run_offset(window: ChainWindow, direction: int, limit: int) -> Optional[int]:
    """Smallest offset (1-based, toward ``direction``) carrying an oncoming run."""
    return window.runs_ahead(direction, limit)[1]


def decide_run(run: RunState, window: ChainWindow, params: Parameters,
               merge_participants: Set[int]) -> RunDecision:
    """Compute a run's action for this round (paper Fig. 15, step 2)."""
    sigma = run.direction
    v = params.viewing_path_length

    # Table 1.3 — the carrier takes part in a merge operation.
    if window.id_at(0) in merge_participants:
        return RunDecision(run, stop_reason=StopReason.MERGE_PARTICIPATION)

    sequent, oncoming_far = window.runs_ahead(sigma, v)

    # Table 1.1 — sequent run visible in front.  With the sequent guard,
    # a sequent run at or beyond the approaching partner is receding on
    # the far side of the quasi line and is ignored (DESIGN.md §2.7).
    if sequent is not None:
        guarded = (params.sequent_guard and oncoming_far is not None
                   and sequent >= oncoming_far)
        if not guarded:
            return RunDecision(run, stop_reason=StopReason.SEQUENT_RUN_AHEAD)

    # one bulk edge scan serves the endpoint grammar and the operation
    # shape checks below (measured hot path, see bench_engines)
    ahead = window.ahead_edges(sigma, v)

    # Table 1.2 — endpoint of the quasi line visible in front.
    if endpoint_visible_ahead(window, sigma, run.axis, params.effective_k_max,
                              edges=ahead):
        if not (params.endpoint_guard and oncoming_far is not None):
            return RunDecision(run, stop_reason=StopReason.ENDPOINT_VISIBLE)

    # --- arrival bookkeeping: leaving passing/travel when on target -------
    mode = run.mode
    target = run.target_id
    steps = run.travel_steps_left
    if mode is RunMode.PASSING and target is not None and window.id_at(0) == target:
        mode, target = RunMode.NORMAL, None
    if mode is RunMode.TRAVEL and ((target is not None and window.id_at(0) == target)
                                   or steps <= 0):
        mode, target, steps = RunMode.NORMAL, None, 0

    # --- run passing (Fig. 8 / Fig. 14) ------------------------------------
    if mode is RunMode.PASSING:
        return RunDecision(run, mode_after=RunMode.PASSING,
                           target_after_set=True, target_after=target)
    oncoming = _oncoming_run_offset(window, sigma, params.passing_distance)
    if oncoming is not None and mode is not RunMode.INIT_CORNER:
        if mode is RunMode.TRAVEL and target is not None:
            # Fig. 14: an interrupted operation keeps its settled target.
            passing_target = target
        else:
            passing_target = window.id_at(oncoming * sigma)
        return RunDecision(run, mode_after=RunMode.PASSING,
                           target_after_set=True, target_after=passing_target)

    # --- continue an operation already in progress (Fig. 11 b/c) -----------
    if mode is RunMode.TRAVEL:
        return RunDecision(run, mode_after=RunMode.TRAVEL,
                           target_after_set=True, target_after=target,
                           travel_steps_after=steps - 1)

    # --- operation (c): corner-cut hop of a fresh Fig. 5(ii) run -----------
    if mode is RunMode.INIT_CORNER:
        u = window.edge(0, 1)
        w_ = window.edge(0, -1)
        hop = None
        if is_axis_unit(u) and is_axis_unit(w_) and are_perpendicular(u, w_):
            hop = add(u, w_)
        return RunDecision(run, hop=hop, mode_after=RunMode.NORMAL)

    # --- normal operation: (a) reshape or (b) travel ------------------------
    e1 = ahead[0]
    if is_axis_unit(e1):
        aligned2 = ahead[1] == e1
        aligned3 = aligned2 and ahead[2] == e1
        behind = window.edge(0, -sigma)
        if aligned3:
            # operation (a): runner and next >= 3 robots on a straight line
            if is_axis_unit(behind) and are_perpendicular(behind, e1):
                return RunDecision(run, hop=add(behind, e1),
                                   mode_after=RunMode.NORMAL)
            return RunDecision(run, mode_after=RunMode.NORMAL)
        if aligned2:
            # operation (b): move hop-less to the corner three robots ahead
            return RunDecision(run, mode_after=RunMode.TRAVEL,
                               target_after_set=True,
                               target_after=window.id_at(3 * sigma),
                               travel_steps_after=params.travel_steps)
    # defensive default: keep moving at speed one without reshaping
    return RunDecision(run, mode_after=RunMode.NORMAL)
