"""Per-robot decision logic — the algorithm of paper Fig. 15.

Every round each robot executes, from the same FSYNC snapshot:

1. **Merge** — if it participates in a visible merge pattern it performs
   the pattern's hop (blacks) or stands still (whites); its runs
   terminate (Table 1.3).
2. **Run operations** — termination conditions (Table 1), run passing
   (Fig. 8/14), travel continuation, and the reshapement operations of
   Fig. 11.
3. **Start new runs** — every L-th round, at the shapes of Fig. 5.

The functions here are *pure*: they read the snapshot through
:class:`~repro.core.view.ChainWindow` (which enforces the viewing path
length) and return decision records that the engine applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.grid.lattice import Vec, add, are_perpendicular, is_axis_unit
from repro.core.chain import CODE_TO_DIR
from repro.core.config import Parameters
from repro.core.patterns import endpoint_visible_ahead
from repro.core.runs import RunMode, RunState, StopReason
from repro.core.view import ChainWindow


@dataclass(slots=True)
class RunDecision:
    """The action a run takes this round (engine applies it)."""

    run: RunState
    stop_reason: Optional[StopReason] = None
    hop: Optional[Vec] = None
    mode_after: Optional[RunMode] = None
    target_after_set: bool = False
    target_after: Optional[int] = None
    travel_steps_after: Optional[int] = None

    @property
    def moves(self) -> bool:
        """Surviving runs always advance one robot (Lemma 3.1)."""
        return self.stop_reason is None


#: Shared "keep moving, nothing special" decision (no hop, no stop,
#: NORMAL mode, target cleared) — the most common outcome, returned as a
#: singleton to keep the per-run hot path allocation-free.  Its ``run``
#: field is None: the engine pairs decisions with runs positionally.
_CONTINUE = RunDecision(None, mode_after=RunMode.NORMAL)


def _oncoming_run_offset(window: ChainWindow, direction: int, limit: int) -> Optional[int]:
    """Smallest offset (1-based, toward ``direction``) carrying an oncoming run."""
    return window.runs_ahead(direction, limit)[1]


def decide_run(run, window: ChainWindow, params: Parameters,
               merge_participants: Set[int]) -> RunDecision:
    """Compute a run's action for this round (paper Fig. 15, step 2).

    ``run`` is anything exposing the decision-hot read attributes
    (``robot_id``, ``direction``, ``axis``, ``mode``, ``target_id``,
    ``travel_steps_left``): a :class:`~repro.core.runs.RunState` or the
    engine's row-local :class:`~repro.core.runs.DecisionRow` snapshot
    (the function only reads — application is the engine's job).
    """
    sigma = run.direction
    v = params.viewing_path_length
    self_id = run.robot_id               # == window.id_at(0) by construction

    # Table 1.3 — the carrier takes part in a merge operation.
    if self_id in merge_participants:
        return RunDecision(run, stop_reason=StopReason.MERGE_PARTICIPATION)

    sequent, oncoming_far = window.runs_ahead(sigma, v)

    # Table 1.1 — sequent run visible in front.  With the sequent guard,
    # a sequent run at or beyond the approaching partner is receding on
    # the far side of the quasi line and is ignored (DESIGN.md §2.7).
    if sequent is not None:
        guarded = (params.sequent_guard and oncoming_far is not None
                   and sequent >= oncoming_far)
        if not guarded:
            return RunDecision(run, stop_reason=StopReason.SEQUENT_RUN_AHEAD)

    # Table 1.2 — endpoint of the quasi line visible in front.  With the
    # endpoint guard and an oncoming run in view the verdict would be
    # discarded anyway, so the scan and the grammar parse are skipped;
    # otherwise one bulk edge-code scan serves the grammar and the
    # operation shape checks below (measured hot path, see bench_engines)
    if params.endpoint_guard and oncoming_far is not None:
        ahead = None
    else:
        ahead = window.ahead_codes(sigma, v)
        if endpoint_visible_ahead(window, sigma, run.axis,
                                  params.effective_k_max, codes=ahead):
            return RunDecision(run, stop_reason=StopReason.ENDPOINT_VISIBLE)

    # --- arrival bookkeeping: leaving passing/travel when on target -------
    mode = run.mode
    target = run.target_id
    steps = run.travel_steps_left
    if mode is RunMode.PASSING and target is not None and self_id == target:
        mode, target = RunMode.NORMAL, None
    if mode is RunMode.TRAVEL and ((target is not None and self_id == target)
                                   or steps <= 0):
        mode, target, steps = RunMode.NORMAL, None, 0

    # --- run passing (Fig. 8 / Fig. 14) ------------------------------------
    if mode is RunMode.PASSING:
        return RunDecision(run, mode_after=RunMode.PASSING,
                           target_after_set=True, target_after=target)
    pd = params.passing_distance
    if pd <= v:
        # the bulk scan above already found the nearest oncoming run
        # within the full viewing range; the passing check only narrows
        # the horizon, so no second scan is needed
        oncoming = oncoming_far if (oncoming_far is not None
                                    and oncoming_far <= pd) else None
    else:
        oncoming = _oncoming_run_offset(window, sigma, pd)
    if oncoming is not None and mode is not RunMode.INIT_CORNER:
        if mode is RunMode.TRAVEL and target is not None:
            # Fig. 14: an interrupted operation keeps its settled target.
            passing_target = target
        else:
            passing_target = window.id_at(oncoming * sigma)
        return RunDecision(run, mode_after=RunMode.PASSING,
                           target_after_set=True, target_after=passing_target)

    # --- continue an operation already in progress (Fig. 11 b/c) -----------
    if mode is RunMode.TRAVEL:
        return RunDecision(run, mode_after=RunMode.TRAVEL,
                           target_after_set=True, target_after=target,
                           travel_steps_after=steps - 1)

    # --- operation (c): corner-cut hop of a fresh Fig. 5(ii) run -----------
    if mode is RunMode.INIT_CORNER:
        u = window.edge(0, 1)
        w_ = window.edge(0, -1)
        hop = None
        if is_axis_unit(u) and is_axis_unit(w_) and are_perpendicular(u, w_):
            hop = add(u, w_)
        return RunDecision(run, hop=hop, mode_after=RunMode.NORMAL)

    # --- normal operation: (a) reshape or (b) travel ------------------------
    if ahead is None:
        ahead = window.ahead_codes(sigma, 3)   # only the shape checks remain
    c1 = ahead[0]
    if c1 >= 0:                            # lead edge is an axis unit
        aligned2 = ahead[1] == c1
        aligned3 = aligned2 and ahead[2] == c1
        if aligned3:
            # operation (a): runner and next >= 3 robots on a straight line
            behind = window.code_toward(-sigma)
            if behind >= 0 and ((behind ^ c1) & 1):
                return RunDecision(run,
                                   hop=add(CODE_TO_DIR[behind], CODE_TO_DIR[c1]),
                                   mode_after=RunMode.NORMAL)
            return _CONTINUE
        if aligned2:
            # operation (b): move hop-less to the corner three robots ahead
            return RunDecision(run, mode_after=RunMode.TRAVEL,
                               target_after_set=True,
                               target_after=window.id_at(3 * sigma),
                               travel_steps_after=params.travel_steps)
    # defensive default: keep moving at speed one without reshaping
    return _CONTINUE
