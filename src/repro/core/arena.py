"""The chain arena: struct-of-arrays storage for a fleet of chains.

The fleet execution tier (DESIGN.md §2.10) advances many closed chains
round-for-round inside one process.  Its storage is this arena: every
fleet member's positions, edge codes, robot ids and id → index tables
live in contiguous fleet-wide arrays, one fixed segment per chain, and
each :class:`~repro.core.chain.ClosedChain` stays a thin view — its
``_arr`` *is* a slice of the arena's position buffer and its edge-code
cache *is* a slice of the arena's code buffer, so every in-place
mutation the chain performs (indexed scatter moves, incremental code
maintenance) keeps the fleet-wide arrays coherent for free.

Layout.  Segment bases are assigned once, from the initial chain
lengths, and never move: a chain's base simultaneously offsets its
*cells* (``base + chain_index``) and its *id space* (``base +
robot_id`` — ids are handed out densely at construction and never
grow), so one fixed table serves both addressings and ``base[c] +
robot_id`` is a fleet-unique robot key.  Contraction shrinks a chain
within its segment (the chain re-packs into the segment prefix —
per-segment compaction); retirement drops the chain from the live set,
and the compact *topology arrays* — the live cells in fleet order with
per-cell cyclic predecessor/successor and owning chain — are rebuilt
lazily whenever the layout changed.  Every fleet-wide stage (merge
detection, run-start scan, decision windows, movement, termination
checks) indexes through these arrays, so retired segments cost
nothing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chain import ClosedChain

#: The four topology arrays: (cells, cell_chain, prev_pos, next_pos).
Topology = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class ChainArena:
    """Fleet-wide struct-of-arrays storage with per-chain segments.

    Parameters
    ----------
    chains:
        The fleet members (mutated in place as the fleet steps).  Each
        chain is adopted: its backing arrays become views into the
        arena buffers.
    """

    __slots__ = ("chains", "base", "n0", "length", "pos", "codes", "ids",
                 "index", "live", "_topo", "_topo_dirty")

    def __init__(self, chains: Sequence[ClosedChain]):
        self.chains: List[ClosedChain] = list(chains)
        ns = np.array([c.n for c in self.chains], dtype=np.int64)
        self.n0 = ns
        self.base = np.concatenate([[0], np.cumsum(ns)[:-1]]) \
            if len(ns) else np.empty(0, np.int64)
        span = int(ns.sum())
        # one padding row so reduceat segment ends may equal the span
        self.pos = np.empty((span + 1, 2), dtype=np.int64)
        self.codes = np.empty(span, dtype=np.int64)
        self.ids = np.empty(span, dtype=np.int64)
        self.index = np.full(span, -1, dtype=np.int64)
        self.length = ns.copy()
        self.live = np.ones(len(self.chains), dtype=bool)
        self._topo: Optional[Topology] = None
        self._topo_dirty = True
        for ci in range(len(self.chains)):
            self.attach(ci)

    # ------------------------------------------------------------------
    @property
    def span(self) -> int:
        """Total arena cells (sum of initial chain lengths)."""
        return len(self.codes)

    def live_indices(self) -> np.ndarray:
        """Chain ids of the live fleet members, ascending."""
        return np.flatnonzero(self.live)

    # ------------------------------------------------------------------
    def attach(self, ci: int) -> None:
        """(Re-)pack a chain into its segment and adopt its storage.

        Called at construction and after every contraction (the chain's
        rebuilt arrays are private then).  Copies the chain's current
        positions into the segment prefix and re-points ``_arr`` at the
        arena; the edge-code cache is carried over when the chain kept
        it alive through the contraction (the isolated-pair fast path
        does, preserving its exact zero-edge counter) and re-encoded
        into the segment otherwise.  Refreshes the id and index tables.
        """
        chain = self.chains[ci]
        b = int(self.base[ci])
        n = chain.n
        self.length[ci] = n
        seg = self.pos[b:b + n]
        seg[:] = chain._arr
        chain._arr = seg
        buf = self.codes[b:b + n]
        chain._codes_buf = buf
        codes = chain._codes_cache
        chain._codes_view_cache = None
        if codes is not None and len(codes) == n:
            buf[:] = codes
            chain._codes_cache = buf
        else:
            chain._codes_cache = None
            chain._codes_list_cache = None
            chain.edge_codes()             # encode into the buffer
        ids = chain.ids_array()
        self.ids[b:b + n] = ids
        idx_seg = self.index[b:b + int(self.n0[ci])]
        idx_seg[:] = -1
        idx_seg[ids] = np.arange(n, dtype=np.int64)
        self._topo_dirty = True

    def retire(self, ci: int) -> None:
        """Drop a chain from the live set (gathered or out of budget)."""
        self.live[ci] = False
        self._topo_dirty = True

    # ------------------------------------------------------------------
    def topology(self) -> Topology:
        """Compact live-cell arrays, rebuilt lazily after layout changes.

        Returns ``(cells, cell_chain, prev_pos, next_pos)``: the global
        cell indices of every live robot in fleet order, the owning
        chain id per cell, and each cell's cyclic within-chain
        predecessor/successor as *positions into these compact arrays*
        (so multi-step neighbour lookups compose by repeated gathering).
        The fleet-wide recognisers (merge RLE scan, run-start scan)
        evaluate their rolled-code comparisons through these instead of
        per-chain ``np.roll`` calls.
        """
        if not self._topo_dirty and self._topo is not None:
            return self._topo
        live = self.live_indices()
        lens = self.length[live]
        total = int(lens.sum())
        rep = np.repeat(np.arange(len(live), dtype=np.int64), lens)
        within = np.arange(total, dtype=np.int64) - \
            np.repeat(np.cumsum(lens) - lens, lens)
        lr = lens[rep]
        cells = self.base[live][rep] + within
        idx = np.arange(total, dtype=np.int64)
        prev_pos = idx - 1
        first = within == 0
        prev_pos[first] = (idx + lr - 1)[first]
        next_pos = idx + 1
        last = within == lr - 1
        next_pos[last] = (idx - lr + 1)[last]
        self._topo = (cells, live[rep], prev_pos, next_pos)
        self._topo_dirty = False
        return self._topo

    # ------------------------------------------------------------------
    def gathered_mask(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-chain 2×2-subgrid termination check, one reduceat pass.

        Returns ``(live_chain_ids, gathered)``.  Segment bounds are
        interleaved ``[start, end, start, end, ...]`` so the even
        reduceat groups are exactly the per-chain reductions — the odd
        (inter-segment) groups absorb retired segments and are
        discarded, which is what lets retired chains keep their cells
        without polluting live bounding boxes.
        """
        live = self.live_indices()
        b = self.base[live]
        bounds = np.empty(2 * len(live), dtype=np.int64)
        bounds[0::2] = b
        bounds[1::2] = b + self.length[live]
        mn = np.minimum.reduceat(self.pos, bounds, axis=0)[0::2]
        mx = np.maximum.reduceat(self.pos, bounds, axis=0)[0::2]
        return live, ((mx - mn) <= 1).all(axis=1)

    # ------------------------------------------------------------------
    def apply_moves(self, gidx: np.ndarray, deltas: np.ndarray,
                    mover_chain: np.ndarray) -> np.ndarray:
        """Fleet-wide simultaneous movement: one scatter, codes kept exact.

        ``gidx`` are global cells of the hopping robots (unique — a
        robot hops at most once per round), ``deltas`` the single-round
        hop vectors, ``mover_chain`` the owning chain ids.  The scatter
        writes through every chain's position view; the two edges
        incident to each mover are re-encoded in bulk (the fleet-wide
        form of :meth:`ClosedChain._post_move_codes`).  Per-chain
        Python-side caches (tuple lists, zero-edge counters) are *not*
        maintained here — the flat arrays are the fleet's source of
        truth and chain-level state settles at the fleet's sync points
        (``FleetKernel._sync_ids`` / retirement), so a round costs no
        per-chain loop.  Single-segment arenas move through
        :meth:`ClosedChain.apply_moves_indexed` instead, which *does*
        keep the chain caches coherent.

        Returns the global cells of the edges that *became* zero this
        round, ascending — exactly the fleet's coincident neighbour
        pairs, since contraction clears every zero edge each round.
        """
        if len(gidx) == 0:
            return np.empty(0, dtype=np.int64)
        pos = self.pos
        pos[gidx] += deltas
        base_m = self.base[mover_chain]
        len_m = self.length[mover_chain]
        local = gidx - base_m
        e_prev = np.where(local == 0, len_m - 1, local - 1) + base_m
        # dedup by scatter-mark (adjacent movers share an edge); the
        # owning chain re-derives from the fixed base table
        emask = np.zeros(self.span, dtype=bool)
        emask[e_prev] = True
        emask[gidx] = True
        E = np.flatnonzero(emask)
        ec = np.searchsorted(self.base, E, side="right") - 1
        lb = self.base[ec]
        el = E - lb
        nxt = np.where(el + 1 == self.length[ec], 0, el + 1) + lb
        d = pos[nxt] - pos[E]
        dx, dy = d[:, 0], d[:, 1]
        nc = np.full(len(E), -2, dtype=np.int64)
        horiz = (dy == 0) & ((dx == 1) | (dx == -1))
        nc[horiz] = 1 - dx[horiz]
        vert = (dx == 0) & ((dy == 1) | (dy == -1))
        nc[vert] = 2 - dy[vert]
        nc[(dx == 0) & (dy == 0)] = -1
        oc = self.codes[E]
        ch = oc != nc
        if ch.any():
            self.codes[E[ch]] = nc[ch]
        return E[nc == -1]
