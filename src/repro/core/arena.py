"""The chain arena: struct-of-arrays storage for a fleet of chains.

The fleet execution tier (DESIGN.md §2.10/§2.11) advances many closed
chains round-for-round inside one process.  Its storage is this arena:
every fleet member's positions, edge codes, robot ids and id → index
tables live in contiguous fleet-wide arrays, one *slot* per chain, and
each :class:`~repro.core.chain.ClosedChain` stays a thin view — its
``_arr`` *is* a slice of the arena's position buffer and its edge-code
cache *is* a slice of the arena's code buffer, so every in-place
mutation the chain performs (indexed scatter moves, incremental code
maintenance) keeps the fleet-wide arrays coherent for free.

Layout.  A chain's slot base simultaneously offsets its *cells*
(``base + chain_index``) and its *id space* (``base + robot_id`` —
ids are handed out densely at construction and never grow), so one
fixed table serves both addressings and ``base[c] + robot_id`` is a
fleet-unique robot key.  Slots are exactly ``n0`` cells (the chain's
initial length == its id-space size); contraction shrinks a chain
within its slot (the chain re-packs into the slot prefix).

Lifecycle (DESIGN.md §2.11).  Slots are *reclaimable*: :meth:`retire`
returns a finished chain's slot to a coalescing free list,
:meth:`admit` packs an incoming chain into a free slot (best fit over
hole sizes), and :meth:`compact` re-bases the live slots into the
buffer prefix — re-pointing every chain view — when fragmentation
blocks an admission that would otherwise fit.  Because admission
reuses holes, slot bases are *not* ordered by chain id; the
span-sized :attr:`owner` table maps any live cell back to its owning
chain (the fixed ``searchsorted(base)`` lookup of the fixed-fleet
arena would be wrong after the first out-of-order admission).

The compact *topology arrays* — the live cells in fleet order with
per-cell cyclic predecessor/successor and owning chain — are rebuilt
lazily whenever the layout changed.  Every fleet-wide stage (merge
detection, run-start scan, decision windows, movement, termination
checks) indexes through these arrays, so retired slots cost nothing.
Per-round span-sized masks come from a :class:`ScratchPool` so
steady-state rounds allocate nothing.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.chain import ClosedChain

#: The four topology arrays: (cells, cell_chain, prev_pos, next_pos).
Topology = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

#: "No pending topology damage" sentinel — larger than any compact
#: position, so ``min(damage, p0)`` accumulates naturally.
_TOPO_CLEAN = 1 << 62


def append_cell(buf: np.ndarray, count: int, value) -> np.ndarray:
    """Write ``value`` at row ``count - 1`` of an append-only column.

    The amortised-doubling idiom shared by every admission-appended
    per-chain table (the arena's base/length tables, the scheduler's
    birth/budget columns): the caller keeps the returned buffer and
    re-slices its ``[:count]`` view, so a long stream pays O(1) per
    admitted chain instead of a full table copy.
    """
    if len(buf) < count:
        grown = np.empty(max(count, 2 * len(buf), 8), dtype=buf.dtype)
        grown[:count - 1] = buf[:count - 1]
        buf = grown
    buf[count - 1] = value
    return buf


class ScratchPool:
    """Reusable scratch buffers for the per-round span-sized masks.

    The fleet pipeline needs a handful of span-sized work arrays every
    round (participant masks, mover flags, zero-edge flags, run-count
    scatters).  Allocating them anew each round costs page-zeroing on
    large arenas; the pool hands out one persistent buffer per ``(tag,
    dtype, shape)`` use site instead — refilled, never reallocated
    while the requested size fits — so steady-state rounds allocate
    nothing.  Tags are unique per call site, which is what makes the
    reuse safe: two buffers live at the same time never share a tag.
    Buffers only ever grow (to the largest size a tag requested), and
    the returned view is not safe to hold across rounds.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: Dict[tuple, np.ndarray] = {}

    def take(self, tag: str, size: int, dtype, fill=None) -> np.ndarray:
        """A length-``size`` scratch array for ``tag``, optionally filled."""
        key = (tag, np.dtype(dtype).str)
        buf = self._bufs.get(key)
        if buf is None or len(buf) < size:
            buf = np.empty(max(size, 16), dtype=dtype)
            self._bufs[key] = buf
        view = buf[:size]
        if fill is not None:
            view.fill(fill)
        return view


class ChainArena:
    """Fleet-wide struct-of-arrays storage with reclaimable slots.

    Parameters
    ----------
    chains:
        The initial fleet members (mutated in place as the fleet
        steps).  Each chain is adopted: its backing arrays become
        views into the arena buffers.  May be empty for a streaming
        arena that fills by :meth:`admit`.
    capacity:
        Total cell capacity.  Defaults to exactly the initial chains'
        footprint; a larger value pre-provisions free space for
        admissions (streaming tier).
    """

    __slots__ = ("chains", "base", "n0", "length", "pos", "codes", "ids",
                 "index", "owner", "live", "free", "free_ids", "scratch",
                 "live_cells", "peak_cells", "peak_live", "_topo",
                 "_topo_dirty", "_base_buf", "_n0_buf", "_len_buf",
                 "_live_buf", "n_live", "_topo_bufs", "_topo_len",
                 "_topo_start_buf", "_topo_start", "_topo_p0",
                 "topo_stats", "_fixed")

    def __init__(self, chains: Sequence[ClosedChain] = (), capacity: int = 0,
                 buffers: Optional[Dict[str, np.ndarray]] = None):
        self.chains: List[ClosedChain] = list(chains)
        ns = np.array([c.n for c in self.chains], dtype=np.int64)
        self.n0 = ns
        self.base = np.concatenate([[0], np.cumsum(ns)[:-1]]) \
            if len(ns) else np.empty(0, np.int64)
        used = int(ns.sum())
        cap = max(int(capacity), used)
        if buffers is not None:
            # externally-backed cell buffers (shared-memory shard tier,
            # DESIGN.md §2.16): the views are adopted, never
            # reallocated — the arena is *fixed* (grow() refuses; the
            # slab owner swaps segments instead) and its capacity is
            # exactly what the views hold
            cap = len(buffers["codes"])
            if cap < used or len(buffers["pos"]) != cap + 1:
                raise ValueError(
                    f"buffers hold {cap} cells (+1 pos padding row); "
                    f"initial chains need {used}")
            self.pos = buffers["pos"]
            self.codes = buffers["codes"]
            self.ids = buffers["ids"]
            self.index = buffers["index"]
            self.owner = buffers["owner"]
            self.index[:] = -1
            self.owner[:] = -1
            self._fixed = True
        else:
            # one padding row so reduceat segment ends may equal the span
            self.pos = np.empty((cap + 1, 2), dtype=np.int64)
            self.codes = np.empty(cap, dtype=np.int64)
            self.ids = np.empty(cap, dtype=np.int64)
            self.index = np.full(cap, -1, dtype=np.int64)
            self.owner = np.full(cap, -1, dtype=np.int64)
            self._fixed = False
        self.length = ns.copy()
        self.live = np.ones(len(self.chains), dtype=bool)
        # the per-chain tables are views of amortised-doubling buffers
        # (admission appends a row; a growing stream must not pay a
        # full table copy per admitted chain)
        self._base_buf = self.base
        self._n0_buf = self.n0
        self._len_buf = self.length
        self._live_buf = self.live
        #: free holes as (offset, size) pairs, ascending by offset
        self.free: List[Tuple[int, int]] = [(used, cap - used)] \
            if cap > used else []
        #: retired chain rows available for reuse, ascending.  Row
        #: recycling is what keeps every per-chain table — and every
        #: per-round count-sized pass over them — bounded by *peak
        #: occupancy* instead of by chains ever admitted; a stream of
        #: millions must not decay as its chain tables grow.
        self.free_ids: List[int] = []
        self.scratch = ScratchPool()
        self.live_cells = used
        self.peak_cells = used
        self.n_live = len(self.chains)
        self.peak_live = self.n_live
        self._topo: Optional[Topology] = None
        self._topo_dirty = True
        # incremental-topology state: persistent compact-array buffers,
        # the live length of their prefix, and each chain row's block
        # start within the compact arrays (-1 when absent).  Valid
        # exactly while ``_topo_dirty`` is clear — every delta op
        # (retire/admit/contract) keeps them exact; the full-rebuild
        # sites only flag dirty and let :meth:`topology` reset them.
        self._topo_bufs: Optional[List[np.ndarray]] = None
        self._topo_len = 0
        self._topo_p0 = _TOPO_CLEAN
        count = len(self.chains)
        self._topo_start_buf = np.full(max(count, 8), -1, dtype=np.int64)
        self._topo_start = self._topo_start_buf[:count]
        #: rebuild/delta instrumentation (streaming stats surface):
        #: full rebuilds vs suffix splices and total cells respliced
        self.topo_stats: Dict[str, int] = {
            "rebuilds": 0, "delta_ops": 0, "delta_cells": 0}
        for ci in range(len(self.chains)):
            self.attach(ci)

    # ------------------------------------------------------------------
    @property
    def span(self) -> int:
        """Total arena cell capacity (live slots + free holes)."""
        return len(self.codes)

    @property
    def free_cells(self) -> int:
        """Cells currently sitting in free holes."""
        return sum(size for _, size in self.free)

    @property
    def largest_hole(self) -> int:
        """Size of the largest free hole (0 when the arena is full)."""
        return max((size for _, size in self.free), default=0)

    def live_indices(self) -> np.ndarray:
        """Chain ids of the live fleet members, ascending."""
        return np.flatnonzero(self.live)

    def live_count(self) -> int:
        """Number of live fleet members (occupied slots), O(1)."""
        return self.n_live

    # ------------------------------------------------------------------
    def attach(self, ci: int) -> None:
        """(Re-)pack a chain into its slot and adopt its storage.

        Called at construction and admission (the chain's arrays are
        private then).  Copies the chain's current positions into the
        slot prefix and re-points ``_arr`` at the arena; the edge-code
        cache is carried over when the chain kept it alive (preserving
        its exact zero-edge counter) and re-encoded into the slot
        otherwise.  Refreshes the id, index and owner tables.
        """
        chain = self.chains[ci]
        b = int(self.base[ci])
        n = chain.n
        self.length[ci] = n
        seg = self.pos[b:b + n]
        seg[:] = chain._arr
        chain._arr = seg
        buf = self.codes[b:b + n]
        chain._codes_buf = buf
        codes = chain._codes_cache
        chain._codes_view_cache = None
        if codes is not None and len(codes) == n:
            buf[:] = codes
            chain._codes_cache = buf
        else:
            chain._codes_cache = None
            chain._codes_list_cache = None
            chain.edge_codes()             # encode into the buffer
        ids = chain.ids_array()
        self.ids[b:b + n] = ids
        idx_seg = self.index[b:b + int(self.n0[ci])]
        idx_seg[:] = -1
        idx_seg[ids] = np.arange(n, dtype=np.int64)
        self.owner[b:b + int(self.n0[ci])] = ci
        # topology upkeep belongs to the callers: __init__ starts
        # dirty and admit() splices the new block in incrementally

    # ------------------------------------------------------------------
    # slot lifecycle
    # ------------------------------------------------------------------
    def admit(self, chain: ClosedChain) -> int:
        """Pack an incoming chain into a free slot (best fit).

        Returns the chain id — the lowest retired row is recycled when
        one exists (so the per-chain tables stay sized to peak
        occupancy), a fresh row is appended otherwise — or ``-1`` when
        no hole fits (the caller may :meth:`compact` — when the total
        free space would fit — or :meth:`grow`, then retry).  The slot
        is exactly ``chain.n`` cells; a larger hole is split and the
        remainder stays free.
        """
        n = chain.n
        best = -1
        best_size = 0
        for i, (_, size) in enumerate(self.free):
            if size >= n and (best < 0 or size < best_size):
                best = i
                best_size = size
                if size == n:              # exact fit: cannot do better
                    break
        if best < 0:
            return -1
        off, size = self.free[best]
        if size == n:
            del self.free[best]
        else:
            self.free[best] = (off + n, size - n)
        if self.free_ids:
            ci = self.free_ids.pop(0)      # lowest first: deterministic
            self.chains[ci] = chain
            self.base[ci] = off
            self.n0[ci] = n
            self.length[ci] = n
            self.live[ci] = True
        else:
            ci = len(self.chains)
            self.chains.append(chain)
            count = ci + 1
            self._base_buf = append_cell(self._base_buf, count, off)
            self._n0_buf = append_cell(self._n0_buf, count, n)
            self._len_buf = append_cell(self._len_buf, count, n)
            self._live_buf = append_cell(self._live_buf, count, True)
            self._topo_start_buf = append_cell(self._topo_start_buf,
                                               count, -1)
            self.base = self._base_buf[:count]
            self.n0 = self._n0_buf[:count]
            self.length = self._len_buf[:count]
            self.live = self._live_buf[:count]
            self._topo_start = self._topo_start_buf[:count]
        self.attach(ci)
        self.live_cells += n
        if self.live_cells > self.peak_cells:
            self.peak_cells = self.live_cells
        self.n_live += 1
        if self.n_live > self.peak_live:
            self.peak_live = self.n_live
        self._topo_insert(ci)
        return ci

    def reserve_batch(self, ns: Sequence[int]) -> List[int]:
        """:meth:`reserve` for a run of admissions (hot intake path).

        Identical best-fit hole choice and row recycling per entry,
        with the per-call attribute traffic hoisted and the row-table
        writes batched into a few fancy-index stores.  Stops at the
        first entry no hole fits — the caller compacts or grows and
        retries the remainder — and returns the reserved chain ids of
        the fitted prefix, in order.
        """
        free = self.free
        free_ids = self.free_ids
        chains = self.chains
        out: List[int] = []
        rec_ci: List[int] = []
        rec_off: List[int] = []
        rec_n: List[int] = []
        live_cells = self.live_cells
        n_live = self.n_live
        for n in ns:
            best = -1
            best_size = 0
            for i, (_, size) in enumerate(free):
                if size >= n and (best < 0 or size < best_size):
                    best = i
                    best_size = size
                    if size == n:          # exact fit: cannot do better
                        break
            if best < 0:
                break
            off, size = free[best]
            if size == n:
                del free[best]
            else:
                free[best] = (off + n, size - n)
            if free_ids:
                ci = free_ids.pop(0)       # lowest first: deterministic
                chains[ci] = None
                rec_ci.append(ci)
                rec_off.append(off)
                rec_n.append(n)
            else:
                ci = len(chains)
                chains.append(None)
                count = ci + 1
                self._base_buf = append_cell(self._base_buf, count, off)
                self._n0_buf = append_cell(self._n0_buf, count, n)
                self._len_buf = append_cell(self._len_buf, count, n)
                self._live_buf = append_cell(self._live_buf, count, True)
                self._topo_start_buf = append_cell(self._topo_start_buf,
                                                   count, -1)
                self.base = self._base_buf[:count]
                self.n0 = self._n0_buf[:count]
                self.length = self._len_buf[:count]
                self.live = self._live_buf[:count]
                self._topo_start = self._topo_start_buf[:count]
            out.append(ci)
            live_cells += n
            n_live += 1
        if rec_ci:
            # recycled rows: one fancy-index store per table (appended
            # rows were already written through append_cell)
            rec = np.asarray(rec_ci, dtype=np.int64)
            self.base[rec] = rec_off
            self.n0[rec] = rec_n
            self.length[rec] = rec_n
            self.live[rec] = True
        self.live_cells = live_cells
        if live_cells > self.peak_cells:
            self.peak_cells = live_cells
        self.n_live = n_live
        if n_live > self.peak_live:
            self.peak_live = n_live
        return out

    def topo_admit_batch(self, cis: Sequence[int]) -> None:
        """Batched :meth:`_topo_insert` for an intake burst.

        Every admitted row is stamped with the *burst's* lowest
        insertion position rather than its own — a conservative
        membership key (>= the damage mark at stamp time, <= the row's
        true position, so the ``key >= damage`` membership test stays
        exact and the next patch recomputes every stamped start) — and
        one tail scan replaces the per-admission scans.
        """
        if not self._topo_live() or not len(cis):
            return
        ci0 = min(cis)
        tail = self._topo_start[ci0 + 1:]
        present = tail[tail >= 0]
        p0 = int(present.min()) if len(present) else self._topo_len
        self._topo_start[cis] = p0
        if p0 < self._topo_p0:
            self._topo_p0 = p0

    def attach_batch(self, cis: Sequence[int],
                     arrs: Sequence[np.ndarray],
                     codes: Sequence[np.ndarray],
                     zero_counts: Sequence[int]) -> None:
        """Adopt a burst of reserved slots in one splice.

        ``cis``/``arrs``/``codes``/``zero_counts`` are parallel: each
        slot from :meth:`reserve` receives its chain's positions and
        pre-computed edge codes through a single fleet-wide scatter.
        Fresh chains carry ids ``0..n-1`` in chain order, so the id and
        index tables fill from the identity layout, and the chain
        object is a lightweight view over the slot (no per-chain
        encode, validation or dict build) exactly like
        :meth:`revive_chain` produces.
        """
        k = len(cis)
        cis_a = np.asarray(cis, dtype=np.int64)
        ns = np.fromiter((len(a) for a in arrs), np.int64, count=k)
        total = int(ns.sum())
        rep = np.repeat(np.arange(k, dtype=np.int64), ns)
        within = np.arange(total, dtype=np.int64) \
            - np.repeat(np.cumsum(ns) - ns, ns)
        dst = self.base[cis_a][rep] + within
        self.pos[dst] = np.concatenate(arrs) if k > 1 else arrs[0]
        self.codes[dst] = np.concatenate(codes) if k > 1 else codes[0]
        # fresh slots are exactly n cells (n0 == n): the identity
        # id/index layout covers the whole slot, no -1 backfill needed
        self.ids[dst] = within
        self.index[dst] = within
        self.owner[dst] = cis_a[rep]
        for j in range(k):
            ci = int(cis_a[j])
            b = int(self.base[ci])
            n = int(ns[j])
            chain = ClosedChain.__new__(ClosedChain)
            chain._arr = self.pos[b:b + n]
            buf = self.codes[b:b + n]
            chain._codes_buf = buf
            chain._codes_cache = buf
            chain._codes_list_cache = None
            chain._codes_view_cache = None
            chain._pos_cache = None
            chain._invalid_edges = int(zero_counts[j])
            chain._next_id = n
            chain._ids = list(range(n))
            # fresh __new__ object: no id dict to drop, the lazy
            # __getattr__ builds it on first by-id access
            chain._ids_arr_cache = None
            chain._index_arr_cache = None
            self.chains[ci] = chain

    def _take_range(self, off: int, size: int) -> None:
        """Carve the exact cell range ``[off, off + size)`` out of the
        free list (splitting its covering hole), or raise ``ValueError``
        when no single hole covers it."""
        free = self.free
        lo, hi = 0, len(free)
        while lo < hi:                     # last hole with offset <= off
            mid = (lo + hi) // 2
            if free[mid][0] <= off:
                lo = mid + 1
            else:
                hi = mid
        i = lo - 1
        if i < 0 or off + size > free[i][0] + free[i][1]:
            raise ValueError(
                f"no free hole covers cells [{off}, {off + size})")
        h_off, h_size = free[i]
        left = off - h_off
        right = (h_off + h_size) - (off + size)
        if left and right:
            free[i] = (h_off, left)
            free.insert(i + 1, (off + size, right))
        elif left:
            free[i] = (h_off, left)
        elif right:
            free[i] = (off + size, right)
        else:
            del free[i]

    def adopt_slots(self, bases: Sequence[int], ns: Sequence[int],
                    zero_counts: Sequence[int]) -> List[int]:
        """Adopt slots whose cells are *already resident* in the buffers.

        The shared-memory shard tier's admission (DESIGN.md §2.16): the
        parent parsed the burst, chose every placement and wrote each
        chain's positions and edge codes straight into this arena's
        (slab-backed) buffers; the worker-side arena only takes the
        dictated ranges off its free-list mirror, registers rows
        (recycling retired rows lowest-first, exactly like
        :meth:`reserve_batch`) and builds the lightweight chain views —
        no cell copies, no placement choice, no per-chain encode.
        Returns the adopted chain ids, in order.
        """
        k = len(bases)
        cis: List[int] = []
        rec_ci: List[int] = []
        rec_off: List[int] = []
        rec_n: List[int] = []
        chains = self.chains
        free_ids = self.free_ids
        for off, n in zip(bases, ns):
            self._take_range(int(off), int(n))
            if free_ids:
                ci = free_ids.pop(0)       # lowest first: deterministic
                chains[ci] = None
                rec_ci.append(ci)
                rec_off.append(int(off))
                rec_n.append(int(n))
            else:
                ci = len(chains)
                chains.append(None)
                count = ci + 1
                self._base_buf = append_cell(self._base_buf, count, int(off))
                self._n0_buf = append_cell(self._n0_buf, count, int(n))
                self._len_buf = append_cell(self._len_buf, count, int(n))
                self._live_buf = append_cell(self._live_buf, count, True)
                self._topo_start_buf = append_cell(self._topo_start_buf,
                                                   count, -1)
                self.base = self._base_buf[:count]
                self.n0 = self._n0_buf[:count]
                self.length = self._len_buf[:count]
                self.live = self._live_buf[:count]
                self._topo_start = self._topo_start_buf[:count]
            cis.append(ci)
        if rec_ci:
            rec = np.asarray(rec_ci, dtype=np.int64)
            self.base[rec] = rec_off
            self.n0[rec] = rec_n
            self.length[rec] = rec_n
            self.live[rec] = True
        cis_a = np.asarray(cis, dtype=np.int64)
        ns_a = np.asarray(ns, dtype=np.int64)
        total = int(ns_a.sum())
        self.live_cells += total
        if self.live_cells > self.peak_cells:
            self.peak_cells = self.live_cells
        self.n_live += k
        if self.n_live > self.peak_live:
            self.peak_live = self.n_live
        self.topo_admit_batch(cis)
        # identity id/index layout and ownership for the fresh slots;
        # positions and codes are already in place (parent-written)
        rep = np.repeat(np.arange(k, dtype=np.int64), ns_a)
        within = np.arange(total, dtype=np.int64) \
            - np.repeat(np.cumsum(ns_a) - ns_a, ns_a)
        dst = self.base[cis_a][rep] + within
        self.ids[dst] = within
        self.index[dst] = within
        self.owner[dst] = cis_a[rep]
        for j in range(k):
            ci = int(cis_a[j])
            b = int(self.base[ci])
            n = int(ns_a[j])
            chain = ClosedChain.__new__(ClosedChain)
            chain._arr = self.pos[b:b + n]
            buf = self.codes[b:b + n]
            chain._codes_buf = buf
            chain._codes_cache = buf
            chain._codes_list_cache = None
            chain._codes_view_cache = None
            chain._pos_cache = None
            chain._invalid_edges = int(zero_counts[j])
            chain._next_id = n
            chain._ids = list(range(n))
            chain._ids_arr_cache = None
            chain._index_arr_cache = None
            chains[ci] = chain
        return cis

    def _release_slot(self, off: int, size: int) -> None:
        """Insert a hole into the free list, coalescing neighbours."""
        free = self.free
        lo, hi = 0, len(free)
        while lo < hi:                     # bisect by offset
            mid = (lo + hi) // 2
            if free[mid][0] < off:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, (off, size))
        # merge with successor, then predecessor
        if lo + 1 < len(free) and off + size == free[lo + 1][0]:
            free[lo] = (off, size + free[lo + 1][1])
            del free[lo + 1]
        if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == off:
            free[lo - 1] = (free[lo - 1][0], free[lo - 1][1] + free[lo][1])
            del free[lo]

    def retire(self, ci: int) -> None:
        """Return a finished chain's slot (and row) to the free lists."""
        self.live[ci] = False
        self._release_slot(int(self.base[ci]), int(self.n0[ci]))
        self.live_cells -= int(self.n0[ci])
        self.n_live -= 1
        bisect.insort(self.free_ids, ci)
        if self._topo_live():
            p0 = int(self._topo_start[ci])
            self._topo_start[ci] = -1
            if p0 < self._topo_p0:
                self._topo_p0 = p0
        else:
            self._topo_dirty = True

    def retire_batch(self, cis: np.ndarray) -> None:
        """Retire many chains at once: one merge pass over the free list.

        The retiring slots and the existing holes are both sorted and
        disjoint, so one linear two-list merge — coalescing adjacent
        entries as it goes — replaces the per-chain bisect-inserts of
        :meth:`retire` (a draining stream retires most of a fleet in a
        few of these calls).
        """
        cis = np.asarray(cis, dtype=np.int64)
        if len(cis) == 0:
            return
        self.live[cis] = False
        self.live_cells -= int(self.n0[cis].sum())
        self.n_live -= len(cis)
        self.free_ids = sorted(self.free_ids + cis.tolist())
        holes = sorted(zip(self.base[cis].tolist(), self.n0[cis].tolist()))
        old = self.free
        merged: List[Tuple[int, int]] = []
        i = j = 0
        while i < len(old) or j < len(holes):
            if j >= len(holes) or (i < len(old)
                                   and old[i][0] < holes[j][0]):
                nxt = old[i]
                i += 1
            else:
                nxt = holes[j]
                j += 1
            if merged and merged[-1][0] + merged[-1][1] == nxt[0]:
                merged[-1] = (merged[-1][0], merged[-1][1] + nxt[1])
            else:
                merged.append(nxt)
        self.free = merged
        if self._topo_live():
            p0 = int(self._topo_start[cis].min())
            self._topo_start[cis] = -1
            if p0 < self._topo_p0:
                self._topo_p0 = p0
        else:
            self._topo_dirty = True

    # ------------------------------------------------------------------
    def _repoint(self, ci: int) -> None:
        """Re-point a live chain's views at its (possibly moved) slot.

        Content-preserving: the slot already holds the chain's exact
        positions/codes/ids, so only the array views change — the
        Python-side caches (tuple list, code list, id list/index) stay
        valid exactly as they were (stale ones stay stale and settle
        at the kernel's usual sync points).
        """
        chain = self.chains[ci]
        b = int(self.base[ci])
        n = int(self.length[ci])
        chain._arr = self.pos[b:b + n]
        buf = self.codes[b:b + n]
        had = chain._codes_cache is not None and len(chain._codes_cache) == n
        chain._codes_buf = buf
        chain._codes_cache = buf if had else None
        chain._codes_view_cache = None

    def compact(self) -> int:
        """Re-base live slots into the buffer prefix; one tail hole.

        Moves slots in ascending base order (every destination is at
        or below its source), rebuilds the owner and index tables for
        the moved slots and re-points every moved chain's views.
        Returns the number of cells reclaimed into the tail hole.
        """
        live = self.live_indices()
        order = live[np.argsort(self.base[live], kind="stable")]
        before = self.largest_hole
        cursor = 0
        for ci in order.tolist():
            b = int(self.base[ci])
            n0 = int(self.n0[ci])
            n = int(self.length[ci])
            if b != cursor:
                self.pos[cursor:cursor + n] = self.pos[b:b + n].copy()
                self.codes[cursor:cursor + n] = self.codes[b:b + n].copy()
                seg_ids = self.ids[b:b + n].copy()
                self.ids[cursor:cursor + n] = seg_ids
                idx_seg = self.index[cursor:cursor + n0]
                idx_seg[:] = -1
                idx_seg[seg_ids] = np.arange(n, dtype=np.int64)
                self.owner[cursor:cursor + n0] = ci
                self.base[ci] = cursor
                self._repoint(ci)
            cursor += n0
        cap = self.span
        self.owner[cursor:] = -1
        self.free = [(cursor, cap - cursor)] if cap > cursor else []
        self._topo_dirty = True
        return self.largest_hole - before

    def grow(self, min_capacity: int) -> None:
        """Reallocate the buffers to at least ``min_capacity`` cells.

        Slot bases are unchanged; every live chain's views re-point at
        the new buffers and the tail hole absorbs the added cells.
        Rare by construction — the streaming tier provisions capacity
        from its slot budget and reuses retired slots.
        """
        old = self.span
        cap = max(int(min_capacity), old)
        if cap == old:
            return
        if self._fixed:
            raise RuntimeError(
                "fixed-buffer arena cannot grow: its cells are "
                "externally backed (shared-memory shard tier) — the "
                "slab owner swaps segments instead")
        pos = np.empty((cap + 1, 2), dtype=np.int64)
        pos[:old] = self.pos[:old]
        self.pos = pos
        for name in ("codes", "ids"):
            buf = np.empty(cap, dtype=np.int64)
            buf[:old] = getattr(self, name)
            setattr(self, name, buf)
        for name in ("index", "owner"):
            buf = np.full(cap, -1, dtype=np.int64)
            buf[:old] = getattr(self, name)
            setattr(self, name, buf)
        self._release_slot(old, cap - old)
        for ci in self.live_indices().tolist():
            self._repoint(ci)
        self._topo_dirty = True

    # ------------------------------------------------------------------
    def topology(self) -> Topology:
        """Compact live-cell arrays, incrementally maintained.

        Returns ``(cells, cell_chain, prev_pos, next_pos)``: the global
        cell indices of every live robot in fleet order, the owning
        chain id per cell, and each cell's cyclic within-chain
        predecessor/successor as *positions into these compact arrays*
        (so multi-step neighbour lookups compose by repeated gathering).
        The fleet-wide recognisers (merge RLE scan, run-start scan)
        evaluate their rolled-code comparisons through these instead of
        per-chain ``np.roll`` calls.

        Layout churn no longer forces a from-scratch rebuild: retire,
        admit and contraction splice their deltas into persistent
        buffers (:meth:`_topo_patch`), and only :meth:`compact`,
        :meth:`grow` and :meth:`restore_state` — the sites that move
        slot bases wholesale — still flag ``_topo_dirty`` and pay the
        full O(live span) pass here.  The returned views alias the
        internal buffers: hold them within one pipeline stage only,
        never across a layout change.
        """
        if not self._topo_dirty and self._topo is not None:
            if self._topo_p0 != _TOPO_CLEAN:
                self._topo_patch(self._topo_p0)
            return self._topo
        self._topo_start.fill(-1)
        self._topo_fill(0, self.live_indices())
        self._topo_dirty = False
        self._topo_p0 = _TOPO_CLEAN
        self.topo_stats["rebuilds"] += 1
        return self._topo

    # ------------------------------------------------------------------
    # incremental topology (DESIGN.md §2.14)
    # ------------------------------------------------------------------
    def _topo_live(self) -> bool:
        """Whether the compact arrays (and block starts) are exact."""
        return self._topo is not None and not self._topo_dirty

    def _topo_buffers(self, total: int, keep: int) -> List[np.ndarray]:
        """The four persistent buffers, grown to ``total`` cells.

        ``keep`` is the prefix length that must survive a
        reallocation (the untouched part of a suffix splice); growth
        doubles, so a steady stream of patches never reallocates.
        """
        bufs = self._topo_bufs
        if bufs is None or len(bufs[0]) < total:
            cap = max(total, 2 * len(bufs[0]) if bufs is not None else 0, 16)
            grown = [np.empty(cap, dtype=np.int64) for _ in range(4)]
            if bufs is not None and keep:
                for dst, src in zip(grown, bufs):
                    dst[:keep] = src[:keep]
            self._topo_bufs = bufs = grown
        return bufs

    def _topo_fill(self, p0: int, rows: np.ndarray) -> None:
        """Recompute the compact arrays from position ``p0`` onward.

        ``rows`` are the chain rows whose blocks occupy positions
        ``p0:`` in fleet order (ascending chain id — blocks are laid
        out by chain id, so among suffix rows ascending id *is*
        ascending block start).  One vectorised repeat/cumsum pass —
        the same math as the old full rebuild, restricted to the
        suffix — recomputes cells, owners and the cyclic prev/next
        positions, and refreshes ``_topo_start`` for the moved rows.
        """
        lens = self.length[rows]
        tail = int(lens.sum())
        total = p0 + tail
        bufs = self._topo_buffers(total, p0)
        starts = p0 + np.cumsum(lens) - lens
        self._topo_start[rows] = starts
        rep = np.repeat(np.arange(len(rows), dtype=np.int64), lens)
        within = np.arange(tail, dtype=np.int64) - \
            np.repeat(starts - p0, lens)
        lr = lens[rep]
        cells_b, chain_b, prev_b, next_b = bufs
        cells_b[p0:total] = self.base[rows][rep] + within
        chain_b[p0:total] = rows[rep]
        idx = np.arange(p0, total, dtype=np.int64)
        pv = idx - 1
        first = within == 0
        pv[first] = (idx + lr - 1)[first]
        prev_b[p0:total] = pv
        nx = idx + 1
        last = within == lr - 1
        nx[last] = (idx - lr + 1)[last]
        next_b[p0:total] = nx
        self._topo_len = total
        self._topo = (cells_b[:total], chain_b[:total],
                      prev_b[:total], next_b[:total])

    def _topo_patch(self, p0: int) -> None:
        """Z-set style suffix splice: re-derive positions ``p0:``.

        Every layout delta — a retired block deleted, an admitted
        block inserted, contracted blocks shrunk — leaves the compact
        arrays exact below the first affected position; the rows still
        present at or above it are exactly those whose recorded block
        start is ``>= p0`` (deleted rows were reset to -1 first, an
        inserted row was stamped with its insertion position, and
        recorded starts — stale in *value* above the damage point —
        stay exact as membership/order keys, since blocks only shift
        within the damaged suffix and fleet order among them is
        ascending chain id).  Deltas accumulate as a single damage
        low-water mark (``_topo_p0``), so a whole churn round's worth
        of retires, admissions and contractions costs one vectorised
        suffix rewrite of O(cells after the lowest edit) — not O(live
        span), and not one pass per operation.
        """
        rows = np.flatnonzero(self._topo_start >= p0)
        self._topo_fill(p0, rows)
        self._topo_p0 = _TOPO_CLEAN
        self.topo_stats["delta_ops"] += 1
        self.topo_stats["delta_cells"] += self._topo_len - p0

    def _topo_insert(self, ci: int) -> None:
        """Splice a freshly admitted chain's block into the topology.

        The block belongs between its chain-id neighbours: insertion
        position is the smallest block start among live rows with a
        larger id (the topology tail length when there is none).
        No-op (stays dirty) when a full rebuild is already pending.
        """
        if not self._topo_live():
            return
        tail = self._topo_start[ci + 1:]
        present = tail[tail >= 0]
        p0 = int(present.min()) if len(present) else self._topo_len
        self._topo_start[ci] = p0
        if p0 < self._topo_p0:
            self._topo_p0 = p0

    def topo_contract(self, cis: np.ndarray) -> None:
        """Re-splice after contraction shrank ``cis``'s lengths.

        Called by the fleet contraction once per round, after
        ``length`` is final for every contracted chain; one suffix
        splice from the lowest affected block start covers them all.
        """
        if not self._topo_live():
            self._topo_dirty = True
            return
        cis = np.asarray(cis, dtype=np.int64)
        p0 = int(self._topo_start[cis].min())
        if p0 < self._topo_p0:
            self._topo_p0 = p0

    def topology_reference(self) -> Topology:
        """From-scratch topology (the debug cross-check oracle).

        Recomputes all four arrays from ``base``/``length`` exactly as
        the pre-incremental rebuild did, without touching the
        maintained buffers; :meth:`verify_topology` compares the two.
        """
        live = self.live_indices()
        lens = self.length[live]
        total = int(lens.sum())
        rep = np.repeat(np.arange(len(live), dtype=np.int64), lens)
        within = np.arange(total, dtype=np.int64) - \
            np.repeat(np.cumsum(lens) - lens, lens)
        lr = lens[rep]
        cells = self.base[live][rep] + within
        idx = np.arange(total, dtype=np.int64)
        prev_pos = idx - 1
        first = within == 0
        prev_pos[first] = (idx + lr - 1)[first]
        next_pos = idx + 1
        last = within == lr - 1
        next_pos[last] = (idx - lr + 1)[last]
        return cells, live[rep], prev_pos, next_pos

    def verify_topology(self) -> None:
        """Assert the maintained topology equals a from-scratch rebuild.

        The debug cross-check of the delta algebra: element-equality
        of all four compact arrays, plus block-start consistency when
        the maintained state is live.  Raises ``AssertionError`` on
        the first mismatch (used by the invariant-checking tier and
        the lifecycle property tests; never on the hot path).
        """
        ref = self.topology_reference()
        cur = self.topology()
        names = ("cells", "cell_chain", "prev_pos", "next_pos")
        for name, a, b in zip(names, cur, ref):
            if not np.array_equal(a, b):
                raise AssertionError(
                    f"incremental topology diverged in {name}: "
                    f"maintained {a!r} != rebuilt {b!r}")
        if self._topo_live():
            live = self.live_indices()
            lens = self.length[live]
            starts = np.cumsum(lens) - lens
            if not np.array_equal(self._topo_start[live], starts):
                raise AssertionError("topology block starts diverged")

    # ------------------------------------------------------------------
    def gathered_mask(self, cis: Optional[np.ndarray] = None
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-chain 2×2-subgrid termination check, one reduceat pass.

        Returns ``(chain_ids, gathered)`` — all live chains by
        default, or just ``cis`` (the streaming scheduler re-checks
        only fresh admissions between rounds).  Segment bounds are
        interleaved ``[start, end, start, end, ...]`` so the even
        reduceat groups are exactly the per-chain reductions — the odd
        (inter-segment) groups absorb free holes and retired cells and
        are discarded.  Admission may hand out bases out of chain-id
        order; an out-of-order odd group then degenerates to a single
        element (reduceat's ``start >= end`` rule), which is discarded
        all the same, so the even groups stay exact.
        """
        live = self.live_indices() if cis is None \
            else np.asarray(cis, dtype=np.int64)
        b = self.base[live]
        bounds = np.empty(2 * len(live), dtype=np.int64)
        bounds[0::2] = b
        bounds[1::2] = b + self.length[live]
        mn = np.minimum.reduceat(self.pos, bounds, axis=0)[0::2]
        mx = np.maximum.reduceat(self.pos, bounds, axis=0)[0::2]
        return live, ((mx - mn) <= 1).all(axis=1)

    # ------------------------------------------------------------------
    # snapshot / restore (durability tier, DESIGN.md §2.12)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        """The arena's complete state as plain arrays + scalar metadata.

        Everything the streaming scheduler's behaviour depends on is
        captured: the cell buffers (positions without the padding row,
        whose contents are never defined), the per-chain tables at
        their current count, and the two free lists — hole *order*
        controls where the next admission lands, so it is part of
        bit-identical resume.  Scratch buffers, topology arrays and
        the chain views are derived state and rebuild on restore.
        """
        span = self.span
        count = len(self.chains)
        arrays = {
            "pos": self.pos[:span].copy(),
            "codes": self.codes.copy(),
            "ids": self.ids.copy(),
            "index": self.index.copy(),
            "owner": self.owner.copy(),
            "base": self.base.copy(),
            "n0": self.n0.copy(),
            "length": self.length.copy(),
            "live": self.live.copy(),
            "free": np.array(self.free, dtype=np.int64).reshape(-1, 2),
            "free_ids": np.array(self.free_ids, dtype=np.int64),
        }
        meta = {
            "count": count,
            "live_cells": int(self.live_cells),
            "peak_cells": int(self.peak_cells),
            "n_live": int(self.n_live),
            "peak_live": int(self.peak_live),
            # instrumentation counters ride along so resumed streams
            # report cumulative rebuild/delta totals, not post-crash
            # partials (the arrays themselves are derived state and
            # rebuild on restore)
            "topo_rebuilds": int(self.topo_stats["rebuilds"]),
            "topo_delta_ops": int(self.topo_stats["delta_ops"]),
            "topo_delta_cells": int(self.topo_stats["delta_cells"]),
        }
        return arrays, meta

    @classmethod
    def restore_state(cls, arrays: Dict[str, np.ndarray],
                      meta: Dict[str, int]) -> "ChainArena":
        """Rebuild an arena from :meth:`snapshot_state` output.

        All buffers are copied (the restored arena never aliases the
        snapshot arrays).  Chain objects are *not* revived here — the
        ``chains`` list holds ``None`` placeholders until the kernel
        calls :meth:`revive_chain` for each live slot.
        """
        self = cls.__new__(cls)
        count = int(meta["count"])
        span = len(arrays["codes"])
        self.pos = np.empty((span + 1, 2), dtype=np.int64)
        self.pos[:span] = arrays["pos"]
        self.codes = np.array(arrays["codes"], dtype=np.int64)
        self.ids = np.array(arrays["ids"], dtype=np.int64)
        self.index = np.array(arrays["index"], dtype=np.int64)
        self.owner = np.array(arrays["owner"], dtype=np.int64)
        self._base_buf = np.array(arrays["base"], dtype=np.int64)
        self._n0_buf = np.array(arrays["n0"], dtype=np.int64)
        self._len_buf = np.array(arrays["length"], dtype=np.int64)
        self._live_buf = np.array(arrays["live"], dtype=bool)
        self.base = self._base_buf[:count]
        self.n0 = self._n0_buf[:count]
        self.length = self._len_buf[:count]
        self.live = self._live_buf[:count]
        self.free = [(int(o), int(s))
                     for o, s in np.asarray(arrays["free"]).reshape(-1, 2)]
        self.free_ids = [int(i) for i in arrays["free_ids"]]
        self.chains = [None] * count
        self.scratch = ScratchPool()
        self._fixed = False
        self.live_cells = int(meta["live_cells"])
        self.peak_cells = int(meta["peak_cells"])
        self.n_live = int(meta["n_live"])
        self.peak_live = int(meta["peak_live"])
        self._topo = None
        self._topo_dirty = True
        self._topo_bufs = None
        self._topo_len = 0
        self._topo_p0 = _TOPO_CLEAN
        self._topo_start_buf = np.full(max(count, 8), -1, dtype=np.int64)
        self._topo_start = self._topo_start_buf[:count]
        self.topo_stats = {
            "rebuilds": int(meta.get("topo_rebuilds", 0)),
            "delta_ops": int(meta.get("topo_delta_ops", 0)),
            "delta_cells": int(meta.get("topo_delta_cells", 0)),
        }
        return self

    def revive_chain(self, ci: int) -> ClosedChain:
        """Reconstruct the ClosedChain view over a restored live slot.

        Snapshots are taken at round boundaries, where the arena's
        position and code buffers are exact, so the revived chain
        adopts them directly (``_invalid_edges = 0``) and rebuilds
        only its Python-side id index.  Ids are handed out densely at
        admission and never grow, so ``_next_id`` is the slot's ``n0``.
        """
        b = int(self.base[ci])
        n = int(self.length[ci])
        chain = ClosedChain.__new__(ClosedChain)
        chain._arr = self.pos[b:b + n]
        buf = self.codes[b:b + n]
        chain._codes_buf = buf
        chain._codes_cache = buf
        chain._codes_list_cache = None
        chain._codes_view_cache = None
        chain._pos_cache = None
        chain._invalid_edges = 0
        chain._next_id = int(self.n0[ci])
        chain._ids = self.ids[b:b + n].tolist()
        chain._rebuild_index()
        self.chains[ci] = chain
        return chain

    # ------------------------------------------------------------------
    def apply_moves(self, gidx: np.ndarray, deltas: np.ndarray,
                    mover_chain: np.ndarray) -> np.ndarray:
        """Fleet-wide simultaneous movement: one scatter, codes kept exact.

        ``gidx`` are global cells of the hopping robots (unique — a
        robot hops at most once per round), ``deltas`` the single-round
        hop vectors, ``mover_chain`` the owning chain ids.  The scatter
        writes through every chain's position view; the two edges
        incident to each mover are re-encoded in bulk (the fleet-wide
        form of :meth:`ClosedChain._post_move_codes`).  Per-chain
        Python-side caches (tuple lists, zero-edge counters) are *not*
        maintained here — the flat arrays are the fleet's source of
        truth and chain-level state settles at the fleet's sync points
        (``FleetKernel._sync_ids`` / retirement), so a round costs no
        per-chain loop.  Single-segment arenas move through
        :meth:`ClosedChain.apply_moves_indexed` instead, which *does*
        keep the chain caches coherent.

        Returns the global cells of the edges that *became* zero this
        round, ascending — exactly the fleet's coincident neighbour
        pairs, since contraction clears every zero edge each round.
        """
        if len(gidx) == 0:
            return np.empty(0, dtype=np.int64)
        pos = self.pos
        pos[gidx] += deltas
        base_m = self.base[mover_chain]
        len_m = self.length[mover_chain]
        local = gidx - base_m
        e_prev = np.where(local == 0, len_m - 1, local - 1) + base_m
        # dedup by scatter-mark (adjacent movers share an edge); the
        # owning chain re-derives from the owner table
        emask = self.scratch.take("move_edges", self.span, bool, fill=False)
        emask[e_prev] = True
        emask[gidx] = True
        E = np.flatnonzero(emask)
        ec = self.owner[E]
        lb = self.base[ec]
        el = E - lb
        nxt = np.where(el + 1 == self.length[ec], 0, el + 1) + lb
        d = pos[nxt] - pos[E]
        dx, dy = d[:, 0], d[:, 1]
        nc = np.full(len(E), -2, dtype=np.int64)
        horiz = (dy == 0) & ((dx == 1) | (dx == -1))
        nc[horiz] = 1 - dx[horiz]
        vert = (dx == 0) & ((dy == 1) | (dy == -1))
        nc[vert] = 2 - dy[vert]
        nc[(dx == 0) & (dy == 0)] = -1
        oc = self.codes[E]
        ch = oc != nc
        if ch.any():
            self.codes[E[ch]] = nc[ch]
        return E[nc == -1]
