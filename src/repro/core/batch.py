"""Batch simulation: gather fleets of chains in one call.

Parameter sweeps (Table 1 statistics, ablation grids, baseline
comparisons, verification sweeps) all reduce to "gather many chains and
aggregate the outcomes".  :class:`BatchSimulator` is that layer: it
takes a list of initial chains, runs each through the engine of choice
and returns a :class:`BatchResult` keeping per-chain
:class:`~repro.core.simulator.GatheringResult` objects in input order.

Two in-process backends execute the fleet (DESIGN.md §2.10):

* ``"fleet"`` — the shared-array fleet kernel
  (:class:`repro.core.engine_fleet.FleetKernel`) advances every chain
  round-for-round in one process.  Per-chain results are bit-identical
  to ``engine="kernel"`` single runs; throughput on fleets of small
  chains is several times the per-chain path because per-round
  interpreter costs amortise across the whole batch.
* ``"process"`` — one simulation per chain through
  :class:`~repro.core.simulator.Simulator` (any engine).

``backend="auto"`` (the default) picks ``"fleet"`` whenever the
engine is ``"kernel"``.  With ``workers > 1`` either backend
distributes over a process pool (simulations are pure CPU-bound
Python, so processes — not threads — are the scaling unit): the fleet
backend shards the batch into one sub-fleet per worker, composing the
two tiers.  Jobs are self-contained ``(positions, params, …)`` tuples
and results are plain dataclasses, so nothing but the standard
pickling machinery is involved; ``keep_reports=False`` strips the
per-round reports before results cross the process boundary, which
bounds IPC for large sweeps that only need the aggregate outcome.

See DESIGN.md §3 for how this layer relates to the single-chain
:class:`~repro.core.simulator.Simulator`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.simulator import ENGINES, GatheringResult, Simulator

#: Fleet execution backends accepted by :class:`BatchSimulator`.
BACKENDS = ("auto", "fleet", "process")

#: One batch job: everything a worker needs to gather one chain.
_Job = Tuple[List[tuple], Parameters, str, bool, Optional[int], bool, bool]

#: One fleet shard: everything a worker needs to gather a sub-fleet.
_FleetJob = Tuple[List[List[tuple]], Parameters, bool, Optional[int], bool,
                  bool]


def _gather_job(job: _Job) -> GatheringResult:
    """Run one gathering simulation (top-level: must pickle for pools)."""
    (positions, params, engine, check_invariants, max_rounds,
     validate_initial, keep_reports) = job
    sim = Simulator(positions, params=params, engine=engine,
                    check_invariants=check_invariants,
                    validate_initial=validate_initial)
    result = sim.run(max_rounds=max_rounds)
    if not keep_reports:
        result.reports = []
    return result


def _fleet_job(job: _FleetJob) -> List[GatheringResult]:
    """Gather one fleet shard in-process (top-level: must pickle)."""
    (positions, params, check_invariants, max_rounds, validate_initial,
     keep_reports) = job
    from repro.core.engine_fleet import FleetKernel
    fleet = FleetKernel(positions, params=params,
                        check_invariants=check_invariants,
                        keep_reports=keep_reports,
                        validate_initial=validate_initial)
    return fleet.run(max_rounds=max_rounds)


@dataclass
class BatchResult:
    """Outcome of a fleet of gathering simulations (input order)."""

    results: List[GatheringResult] = field(default_factory=list)
    wall_time: float = 0.0
    workers: int = 1

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i: int) -> GatheringResult:
        return self.results[i]

    @property
    def n_chains(self) -> int:
        return len(self.results)

    @property
    def gathered_count(self) -> int:
        """Chains that reached the 2x2 termination condition."""
        return sum(1 for r in self.results if r.gathered)

    @property
    def all_gathered(self) -> bool:
        return self.gathered_count == len(self.results)

    @property
    def total_rounds(self) -> int:
        return sum(r.rounds for r in self.results)

    @property
    def total_robots(self) -> int:
        return sum(r.initial_n for r in self.results)

    @property
    def max_rounds_per_robot(self) -> float:
        """Worst normalised round count — the paper predicts O(1)."""
        return max((r.rounds_per_robot for r in self.results), default=0.0)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (f"{self.gathered_count}/{self.n_chains} gathered, "
                f"{self.total_robots} robots in {self.total_rounds} rounds total "
                f"({self.wall_time:.2f}s wall, workers={self.workers})")


class BatchSimulator:
    """Gather a fleet of chains in one call.

    Parameters
    ----------
    chains:
        Initial chains — :class:`ClosedChain` instances or position
        sequences.  Input order is preserved in the result.
    params:
        Algorithm constants shared by the whole fleet (sweeps over
        parameters run one batch per parameter setting).
    engine:
        ``"kernel"`` (default here — batches exist for throughput, and
        the kernel engine is the fastest behaviourally-identical
        variant), ``"vectorized"`` or ``"reference"``.
    backend:
        ``"fleet"`` (shared-array fleet kernel, kernel engine only),
        ``"process"`` (one simulation per chain), or ``"auto"``
        (default): fleet whenever the engine is ``"kernel"``.
    check_invariants:
        Per-round invariant checking for every simulation (slow).
    workers:
        Process count.  ``None`` or ``1`` runs in-process; ``>= 2``
        distributes over a ``concurrent.futures`` process pool (the
        fleet backend shards the batch into one sub-fleet per worker).
    keep_reports:
        Keep per-round :class:`RoundReport` lists on each result.  Turn
        off for large sweeps that only need aggregate outcomes (and to
        bound pickling when ``workers > 1``).
    validate_initial:
        Enforce the paper's initial-configuration assumptions on every
        chain before running.
    """

    def __init__(self, chains: Sequence[Union[ClosedChain, Sequence[tuple]]],
                 params: Parameters = DEFAULT_PARAMETERS,
                 engine: str = "kernel",
                 check_invariants: bool = False,
                 workers: Optional[int] = None,
                 keep_reports: bool = True,
                 validate_initial: bool = True,
                 backend: str = "auto"):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        if backend == "fleet" and engine != "kernel":
            raise ValueError(
                "backend='fleet' executes the kernel round pipeline; "
                f"engine {engine!r} needs backend='process'")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.positions: List[List[tuple]] = [self._as_positions(c)
                                             for c in chains]
        self.params = params
        self.engine = engine
        self.backend = backend if backend != "auto" else (
            "fleet" if engine == "kernel" else "process")
        self.check_invariants = check_invariants
        self.workers = int(workers) if workers else 1
        self.keep_reports = keep_reports
        self.validate_initial = validate_initial

    # ------------------------------------------------------------------
    @staticmethod
    def _as_positions(c) -> List[tuple]:
        """One chain input as a plain picklable position list.

        Lists of int tuples — the generator families' native output —
        pass through with a shallow copy; everything else (chains,
        iterables, NumPy scalars) normalises element-wise.
        """
        if isinstance(c, ClosedChain):
            return list(c.positions)
        if type(c) is list and (not c or (type(c[0]) is tuple
                                          and type(c[0][0]) is int)):
            return list(c)
        return [(int(x), int(y)) for x, y in c]

    # ------------------------------------------------------------------
    def _jobs(self, max_rounds: Optional[int]) -> List[_Job]:
        return [(pts, self.params, self.engine, self.check_invariants,
                 max_rounds, self.validate_initial, self.keep_reports)
                for pts in self.positions]

    def run(self, max_rounds: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> BatchResult:
        """Gather the whole fleet and return per-chain results in order.

        ``progress`` is called as ``progress(completed, total)`` as
        chains finish (per retirement batch on the fleet backend, per
        completed simulation on the process backend).
        """
        t0 = time.perf_counter()
        total = len(self.positions)
        workers = min(self.workers, total) if total else 1
        if self.backend == "fleet":
            results = self._run_fleet(max_rounds, workers, progress, total)
        else:
            results = self._run_process(max_rounds, workers, progress, total)
        return BatchResult(results=results,
                           wall_time=time.perf_counter() - t0,
                           workers=workers)

    # ------------------------------------------------------------------
    def _run_fleet(self, max_rounds: Optional[int], workers: int,
                   progress: Optional[Callable[[int, int], None]],
                   total: int) -> List[GatheringResult]:
        """Fleet backend: shared arrays in-process, shards across workers."""
        if workers <= 1:
            from repro.core.engine_fleet import FleetKernel
            fleet = FleetKernel(self.positions, params=self.params,
                                check_invariants=self.check_invariants,
                                keep_reports=self.keep_reports,
                                validate_initial=self.validate_initial)
            return fleet.run(max_rounds=max_rounds, progress=progress)
        from concurrent.futures import ProcessPoolExecutor, as_completed
        shard_size = (total + workers - 1) // workers
        shards = [self.positions[i:i + shard_size]
                  for i in range(0, total, shard_size)]
        jobs: List[_FleetJob] = [
            (shard, self.params, self.check_invariants, max_rounds,
             self.validate_initial, self.keep_reports) for shard in shards]
        results: List[Optional[GatheringResult]] = [None] * total
        offsets = [i * shard_size for i in range(len(shards))]
        done = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_fleet_job, job): k
                       for k, job in enumerate(jobs)}
            for fut in as_completed(futures):
                k = futures[fut]
                shard_results = fut.result()
                results[offsets[k]:offsets[k] + len(shard_results)] = \
                    shard_results
                done += len(shard_results)
                if progress is not None:
                    progress(done, total)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_process(self, max_rounds: Optional[int], workers: int,
                     progress: Optional[Callable[[int, int], None]],
                     total: int) -> List[GatheringResult]:
        """Process backend: one simulation per chain, any engine."""
        jobs = self._jobs(max_rounds)
        if workers > 1:
            from concurrent.futures import ProcessPoolExecutor, as_completed
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if progress is None:
                    chunk = max(1, len(jobs) // (4 * workers))
                    return list(pool.map(_gather_job, jobs, chunksize=chunk))
                results: List[Optional[GatheringResult]] = [None] * total
                futures = {pool.submit(_gather_job, job): k
                           for k, job in enumerate(jobs)}
                done = 0
                for fut in as_completed(futures):
                    results[futures[fut]] = fut.result()
                    done += 1
                    progress(done, total)
                return results  # type: ignore[return-value]
        results = []
        for k, job in enumerate(jobs):
            results.append(_gather_job(job))
            if progress is not None:
                progress(k + 1, total)
        return results


def gather_batch(chains: Sequence[Union[ClosedChain, Sequence[tuple]]],
                 params: Parameters = DEFAULT_PARAMETERS,
                 engine: str = "kernel",
                 check_invariants: bool = False,
                 workers: Optional[int] = None,
                 keep_reports: bool = True,
                 max_rounds: Optional[int] = None,
                 validate_initial: bool = True,
                 backend: str = "auto",
                 progress=None) -> BatchResult:
    """Gather a fleet of chains (one-call convenience API)."""
    sim = BatchSimulator(chains, params=params, engine=engine,
                         check_invariants=check_invariants,
                         workers=workers, keep_reports=keep_reports,
                         validate_initial=validate_initial,
                         backend=backend)
    return sim.run(max_rounds=max_rounds, progress=progress)
