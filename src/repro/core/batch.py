"""Batch simulation: gather fleets of chains in one call.

Parameter sweeps (Table 1 statistics, ablation grids, baseline
comparisons, verification sweeps) all reduce to "gather many chains and
aggregate the outcomes".  :class:`BatchSimulator` is that layer: it
takes a list of initial chains, runs each through the engine of choice
and returns a :class:`BatchResult` keeping per-chain
:class:`~repro.core.simulator.GatheringResult` objects in input order.

Two in-process backends execute the fleet (DESIGN.md §2.10):

* ``"fleet"`` — the shared-array fleet kernel
  (:class:`repro.core.engine_fleet.FleetKernel`) advances every chain
  round-for-round in one process.  Per-chain results are bit-identical
  to ``engine="kernel"`` single runs; throughput on fleets of small
  chains is several times the per-chain path because per-round
  interpreter costs amortise across the whole batch.
* ``"process"`` — one simulation per chain through
  :class:`~repro.core.simulator.Simulator` (any engine).

A third, multi-process backend scales the fleet without copying it:

* ``"shm"`` — the zero-copy shared-memory shard tier
  (:mod:`repro.core.shm`, DESIGN.md §2.16).  One
  ``multiprocessing.shared_memory`` slab holds K disjoint shard
  regions; K worker processes each step a fleet kernel over their
  region.  The parent parses each intake burst once, writes the cells
  straight into the slab and sends five-integer tickets; workers
  publish eight-word result rows into a shared ledger ring.  No chain
  or result payload ever crosses a pipe.  Per-chain results are
  bit-identical to ``backend="fleet"`` per stream index.

The streaming tier (DESIGN.md §2.11) lifts the fleet backend from
one-shot to pipeline: :meth:`BatchSimulator.run_stream` /
:func:`gather_stream` consume an *iterator* of chains, keep the arena
at a bounded slot occupancy — retired slots are reclaimed for the
next admissions — and yield ``(index, result)`` pairs as chains
finish, so a million-chain sweep runs in constant memory.  With
``workers >= 2`` the stream shards round-robin across a process pool,
each worker running its own bounded kernel; per-chain results are
bit-identical to :func:`gather_batch` either way.

``backend="auto"`` (the default) picks ``"fleet"`` whenever the
engine is ``"kernel"``.  With ``workers > 1`` either backend
distributes over a process pool (simulations are pure CPU-bound
Python, so processes — not threads — are the scaling unit): the fleet
backend shards the batch into one sub-fleet per worker, composing the
two tiers.  Jobs are self-contained ``(positions, params, …)`` tuples
and results are plain dataclasses, so nothing but the standard
pickling machinery is involved; ``keep_reports=False`` strips the
per-round reports before results cross the process boundary, which
bounds IPC for large sweeps that only need the aggregate outcome.

See DESIGN.md §3 for how this layer relates to the single-chain
:class:`~repro.core.simulator.Simulator`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.simulator import ENGINES, GatheringResult, Simulator

#: Fleet execution backends accepted by :class:`BatchSimulator`.
BACKENDS = ("auto", "fleet", "process", "shm")

#: One batch job: everything a worker needs to gather one chain.
_Job = Tuple[List[tuple], Parameters, str, bool, Optional[int], bool, bool]

#: One fleet shard: everything a worker needs to gather a sub-fleet.
_FleetJob = Tuple[List[List[tuple]], Parameters, bool, Optional[int], bool,
                  bool]


def _gather_job(job: _Job) -> GatheringResult:
    """Run one gathering simulation (top-level: must pickle for pools)."""
    (positions, params, engine, check_invariants, max_rounds,
     validate_initial, keep_reports) = job
    sim = Simulator(positions, params=params, engine=engine,
                    check_invariants=check_invariants,
                    validate_initial=validate_initial)
    result = sim.run(max_rounds=max_rounds)
    if not keep_reports:
        result.reports = []
    return result


def _pool_result(fut, worker: int, shard_positions, offset: int):
    """Unwrap a one-shot pool future, lifting worker deaths and broken
    result pipes into the :class:`~repro.errors.WorkerCrashError`
    taxonomy so callers can catch one base class (``ReproError``)."""
    from concurrent.futures import BrokenExecutor
    try:
        return fut.result()
    except (BrokenExecutor, EOFError, OSError) as exc:
        from repro.errors import WorkerCrashError
        n = len(shard_positions)
        raise WorkerCrashError(
            f"pool worker died gathering chains "
            f"[{offset}..{offset + n - 1}]: {type(exc).__name__}: {exc}",
            worker=worker,
            indices=list(range(offset, offset + n))) from exc


def _fleet_job(job: _FleetJob) -> List[GatheringResult]:
    """Gather one fleet shard in-process (top-level: must pickle)."""
    (positions, params, check_invariants, max_rounds, validate_initial,
     keep_reports) = job
    from repro.core.engine_fleet import FleetKernel
    fleet = FleetKernel(positions, params=params,
                        check_invariants=check_invariants,
                        keep_reports=keep_reports,
                        validate_initial=validate_initial)
    return fleet.run(max_rounds=max_rounds)


@dataclass
class BatchResult:
    """Outcome of a fleet of gathering simulations (input order)."""

    results: List[GatheringResult] = field(default_factory=list)
    wall_time: float = 0.0
    workers: int = 1

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i: int) -> GatheringResult:
        return self.results[i]

    @property
    def n_chains(self) -> int:
        return len(self.results)

    @property
    def gathered_count(self) -> int:
        """Chains that reached the 2x2 termination condition."""
        return sum(1 for r in self.results if r.gathered)

    @property
    def all_gathered(self) -> bool:
        return self.gathered_count == len(self.results)

    @property
    def total_rounds(self) -> int:
        return sum(r.rounds for r in self.results)

    @property
    def total_robots(self) -> int:
        return sum(r.initial_n for r in self.results)

    @property
    def max_rounds_per_robot(self) -> float:
        """Worst normalised round count — the paper predicts O(1)."""
        return max((r.rounds_per_robot for r in self.results), default=0.0)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (f"{self.gathered_count}/{self.n_chains} gathered, "
                f"{self.total_robots} robots in {self.total_rounds} rounds total "
                f"({self.wall_time:.2f}s wall, workers={self.workers})")


class BatchSimulator:
    """Gather a fleet of chains in one call.

    Parameters
    ----------
    chains:
        Initial chains — :class:`ClosedChain` instances or position
        sequences.  Input order is preserved in the result.
    params:
        Algorithm constants shared by the whole fleet (sweeps over
        parameters run one batch per parameter setting).
    engine:
        ``"kernel"`` (default here — batches exist for throughput, and
        the kernel engine is the fastest behaviourally-identical
        variant), ``"vectorized"`` or ``"reference"``.
    backend:
        ``"fleet"`` (shared-array fleet kernel, kernel engine only),
        ``"process"`` (one simulation per chain), ``"shm"`` (zero-copy
        shared-memory shard tier: ``workers`` slab-backed kernel
        processes, kernel engine only, ``keep_reports=False``), or
        ``"auto"`` (default): fleet whenever the engine is
        ``"kernel"``.
    check_invariants:
        Per-round invariant checking for every simulation (slow).
    workers:
        Process count.  ``None`` or ``1`` runs in-process; ``>= 2``
        distributes over a ``concurrent.futures`` process pool (the
        fleet backend shards the batch into one sub-fleet per worker).
    keep_reports:
        Keep per-round :class:`RoundReport` lists on each result.  Turn
        off for large sweeps that only need aggregate outcomes (and to
        bound pickling when ``workers > 1``).
    validate_initial:
        Enforce the paper's initial-configuration assumptions on every
        chain before running.
    """

    def __init__(self, chains: Sequence[Union[ClosedChain, Sequence[tuple]]],
                 params: Parameters = DEFAULT_PARAMETERS,
                 engine: str = "kernel",
                 check_invariants: bool = False,
                 workers: Optional[int] = None,
                 keep_reports: bool = True,
                 validate_initial: bool = True,
                 backend: str = "auto"):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        if backend in ("fleet", "shm") and engine != "kernel":
            raise ValueError(
                f"backend={backend!r} executes the kernel round pipeline; "
                f"engine {engine!r} needs backend='process'")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.positions: List[List[tuple]] = [self._as_positions(c)
                                             for c in chains]
        self.params = params
        self.engine = engine
        self.backend = backend if backend != "auto" else (
            "fleet" if engine == "kernel" else "process")
        self.check_invariants = check_invariants
        self.workers = int(workers) if workers else 1
        self.keep_reports = keep_reports
        self.validate_initial = validate_initial
        #: occupancy telemetry of the last exhausted :meth:`run_stream`
        self.last_stream_stats: Optional[Dict[str, int]] = None
        #: the live in-process kernel of a running :meth:`run_stream`
        #: (None before the stream starts and on the pool path) — the
        #: service tier reads occupancy/topology telemetry off it for
        #: ``status`` frames (§2.15); reads are racy-but-monotone
        #: scalars, fine for metrics, not for control flow
        self.stream_kernel = None

    # ------------------------------------------------------------------
    @staticmethod
    def _as_positions(c) -> List[tuple]:
        """One chain input as a plain picklable position list.

        Lists of int tuples — the generator families' native output —
        pass through with a shallow copy; everything else (chains,
        iterables, NumPy scalars) normalises element-wise.
        """
        if isinstance(c, ClosedChain):
            return list(c.positions)
        if type(c) is list and (not c or (type(c[0]) is tuple
                                          and type(c[0][0]) is int)):
            return list(c)
        return [(int(x), int(y)) for x, y in c]

    # ------------------------------------------------------------------
    def _jobs(self, max_rounds: Optional[int]) -> List[_Job]:
        return [(pts, self.params, self.engine, self.check_invariants,
                 max_rounds, self.validate_initial, self.keep_reports)
                for pts in self.positions]

    def run(self, max_rounds: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> BatchResult:
        """Gather the whole fleet and return per-chain results in order.

        ``progress`` is called as ``progress(completed, total)`` as
        chains finish (per retirement batch on the fleet backend, per
        completed simulation on the process backend).
        """
        t0 = time.perf_counter()
        total = len(self.positions)
        workers = min(self.workers, total) if total else 1
        if self.backend == "fleet":
            results = self._run_fleet(max_rounds, workers, progress, total)
        elif self.backend == "shm":
            results = self._run_shm(max_rounds, progress, total)
        else:
            results = self._run_process(max_rounds, workers, progress, total)
        return BatchResult(results=results,
                           wall_time=time.perf_counter() - t0,
                           workers=workers)

    # ------------------------------------------------------------------
    def run_stream(self, chains: Iterable = (),
                   slots: int = 256,
                   max_rounds: Optional[int] = None,
                   progress: Optional[Callable[[int, int], None]] = None,
                   wal_dir: Optional[str] = None,
                   snapshot_every: int = 512,
                   faults=None,
                   resume: bool = False,
                   on_error: str = "raise",
                   max_retries: int = 3,
                   backoff: float = 0.05,
                   shard_cells: Optional[int] = None
                   ) -> Iterator[Tuple[int, GatheringResult]]:
        """Stream chains through a bounded arena; yield as they finish.

        ``chains`` is any iterable of chains / position lists —
        consumed lazily, after any chains given to the constructor —
        and ``slots`` caps the *total* number of chains concurrently
        resident, so arbitrarily long streams run in bounded memory
        (retired slots and chain rows are reclaimed for the next
        admissions, DESIGN.md §2.11).  Yields ``(index, result)``
        pairs in completion order; ``index`` is the chain's stream
        position.
        Per-chain results are bit-identical to :meth:`run` /
        :func:`gather_batch` on the same inputs.

        ``workers >= 2`` shards the stream round-robin across a
        process pool — chain ``i`` goes to worker ``i % workers``,
        each worker streaming its shard through ``slots // workers``
        slots of its own — with at most one in-flight chunk per worker
        plus one filling buffer, so the pipeline stays bounded
        end-to-end.  After exhaustion, :attr:`last_stream_stats` holds
        the occupancy telemetry (peak live chains / cells, admission
        and compaction counts) of the in-process kernel.

        Streaming executes on the fleet and shm backends only (the
        process backend has no shared arena to bound).
        ``backend="shm"`` (§2.16) replaces the pickling pool with the
        zero-copy shard tier: ``workers`` slab-backed kernel processes
        fed by tickets into one shared-memory slab, results published
        through shared ledger rings.  Results stay bit-identical per
        stream index; ``keep_reports`` must be ``False``, ``resume``
        is unsupported (per-shard WALs are effect logs — the service
        tier's results ledger provides exactly-once re-feeding), and
        ``shard_cells`` optionally pins the per-shard slab size in
        cells (default: sized from the first burst).

        Durability (§2.12): ``wal_dir`` write-ahead-logs the stream
        (one snapshot every ``snapshot_every`` rounds) so a killed run
        continues with ``resume=True`` — the recorded configuration
        (slots, params, faults, …) wins over the arguments, and
        ``chains`` must be the same stream the crashed run was fed.
        ``faults`` (a :class:`repro.core.faults.FaultPlan`) degrades
        the stream deterministically at intake on either worker
        topology, and mid-run (robot crash/restart) on either as well.
        Under a pool, ``wal_dir`` shards: each worker slot logs to
        ``wal_dir/shard-<k>/`` and a killed worker resumes from its
        own snapshot (supervision tier, §2.13); top-level
        ``resume=True`` stays in-process only.

        Supervision (§2.13): the pool path always survives worker
        deaths — lost chunks re-dispatch with bounded retry
        (``max_retries``) and exponential ``backoff``.
        ``on_error="quarantine"`` additionally turns per-chain
        failures (poisoned inputs, invariant violations, chains that
        exhaust worker retries) into yielded
        :class:`~repro.core.results.ChainOutcome` error records;
        the strict default re-raises them (retry exhaustion as
        :class:`~repro.errors.WorkerCrashError`).  Injected mid-run
        fault *crashes* always yield ``ChainOutcome`` records — they
        are planned degradations, not errors.
        """
        if self.backend not in ("fleet", "shm"):
            raise ValueError(
                "run_stream() executes on the fleet or shm backend "
                f"(engine='kernel'); this simulator resolved to "
                f"backend={self.backend!r}")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if resume and wal_dir is None:
            raise ValueError("resume=True needs wal_dir")
        if self.backend == "shm":
            if resume:
                raise ValueError(
                    "backend='shm' streams are not snapshot-resumable: "
                    "the per-shard worker WALs are effect logs (audit / "
                    "fault forensics), not parent-resumable snapshots — "
                    "re-feed the stream, or use the service tier, whose "
                    "results ledger makes re-feeding exactly-once")
            if self.keep_reports:
                raise ValueError(
                    "backend='shm' publishes results through the shared "
                    "ledger (scalar rows + slab positions); per-round "
                    "reports never cross — set keep_reports=False")
        elif shard_cells is not None:
            raise ValueError("shard_cells applies to backend='shm' only")
        if resume and self.workers > 1:
            raise ValueError(
                "top-level resume is single-process (shard WALs already "
                "resume crashed workers under a live parent); set "
                "workers=1 to resume a killed run")
        if wal_dir is not None and self.workers > 1 and self.keep_reports:
            raise ValueError(
                "sharded WAL streaming cannot keep per-round reports "
                "(the shard results ledger archives scalar outcomes); "
                "set keep_reports=False")
        from repro.core.admission import is_admission_source
        if is_admission_source(chains):
            # admission-source protocol (§2.15): hand the source
            # through untouched so the kernel's pull loop sees its
            # ``take`` — wrapping it in itertools.chain would demote
            # it to a finite iterator and close the stream on the
            # first starvation
            if self.positions:
                raise ValueError(
                    "constructor chains cannot precede an admission "
                    "source; construct BatchSimulator([]) and submit "
                    "everything through the source")
            stream = chains
        else:
            stream = itertools.chain(iter(self.positions), iter(chains))
        if self.backend == "shm":
            yield from self._stream_shm(stream, slots, max_rounds, progress,
                                        faults, wal_dir, snapshot_every,
                                        on_error, shard_cells)
        elif self.workers <= 1:
            yield from self._stream_inprocess(stream, slots, max_rounds,
                                              progress, wal_dir,
                                              snapshot_every, faults, resume,
                                              on_error)
        else:
            yield from self._stream_pool(stream, slots, max_rounds, progress,
                                         faults, wal_dir, snapshot_every,
                                         on_error, max_retries, backoff)

    def _stream_inprocess(self, stream, slots, max_rounds, progress,
                          wal_dir=None, snapshot_every=512, faults=None,
                          resume=False, on_error="raise"):
        import time as _time
        from repro.core.engine_fleet import FleetKernel
        t0 = _time.perf_counter()
        if resume:
            kernel, gen = FleetKernel.restore_stream(wal_dir, stream,
                                                     progress=progress)
            self.stream_kernel = kernel
            yield from gen
        else:
            kernel = FleetKernel([], params=self.params,
                                 check_invariants=self.check_invariants,
                                 keep_reports=self.keep_reports,
                                 validate_initial=self.validate_initial)
            wal = None
            if wal_dir is not None:
                from repro.io.wal import WalWriter
                wal = WalWriter(wal_dir)
            self.stream_kernel = kernel
            yield from kernel.run_stream(stream, slots=slots,
                                         max_rounds=max_rounds,
                                         progress=progress, release=True,
                                         wal=wal,
                                         snapshot_every=snapshot_every,
                                         faults=faults, on_error=on_error)
        arena = kernel.arena
        elapsed = _time.perf_counter() - t0
        self.last_stream_stats = {
            "workers": 1,
            "admitted": kernel.stream_stats["admitted"],
            "compactions": kernel.stream_stats["compactions"],
            "grows": kernel.stream_stats["grows"],
            "fault_crashed": kernel.stream_stats["fault_crashed"],
            "fault_perturbed": kernel.stream_stats["fault_perturbed"],
            "quarantined": kernel.stream_stats["quarantined"],
            "mid_crashed": kernel.stream_stats["mid_crashed"],
            "mid_restarted": kernel.stream_stats["mid_restarted"],
            "peak_live_chains": arena.peak_live,
            "peak_cells": arena.peak_cells,
            "arena_span": arena.span,
            "rounds": kernel.round_index,
            # incremental-topology telemetry (DESIGN.md §2.14): how
            # often the arena fell back to a full O(cells) rebuild vs
            # patching the damaged suffix, and how many cells those
            # patches spliced — the churn-efficiency signal the
            # stream_churn* bench rows record
            "topo_rebuilds": arena.topo_stats["rebuilds"],
            "topo_delta_ops": arena.topo_stats["delta_ops"],
            "topo_delta_cells": arena.topo_stats["delta_cells"],
            "rounds_per_s": round(kernel.round_index / elapsed, 1)
            if elapsed > 0 else 0.0,
        }

    def _stream_pool(self, stream, slots, max_rounds, progress, faults=None,
                     wal_dir=None, snapshot_every=512, on_error="raise",
                     max_retries=3, backoff=0.05):
        # the supervised pool engine (§2.13): shard-per-worker chunks,
        # crash recovery with bounded retry, poison isolation, and —
        # with wal_dir — per-shard WALs + results ledgers
        from repro.core.supervisor import pool_stream
        workers = min(self.workers, slots)
        stats: Dict[str, int] = {"workers": workers,
                                 "slots_per_worker": slots // workers}
        yield from pool_stream(stream, params=self.params, workers=workers,
                               slots=slots, max_rounds=max_rounds,
                               check_invariants=self.check_invariants,
                               keep_reports=self.keep_reports,
                               validate_initial=self.validate_initial,
                               faults=faults, wal_dir=wal_dir,
                               snapshot_every=snapshot_every,
                               on_error=on_error, max_retries=max_retries,
                               backoff=backoff, progress=progress,
                               stats=stats,
                               as_positions=self._as_positions)
        self.last_stream_stats = stats

    def _stream_shm(self, stream, slots, max_rounds, progress, faults=None,
                    wal_dir=None, snapshot_every=512, on_error="raise",
                    shard_cells=None):
        # the zero-copy shard tier (§2.16): one shared slab, K kernel
        # workers, ticket admission and ledger-ring results.  The stats
        # dict is installed *before* the stream runs and mutated live
        # (per-shard occupancy and chains/s), so the service tier can
        # read scaling telemetry off it mid-stream.
        from repro.core.shm import shm_stream
        stats: Dict[str, object] = {}
        self.last_stream_stats = stats
        self.stream_kernel = None      # kernels live in the shard workers
        yield from shm_stream(stream, params=self.params,
                              workers=self.workers, slots=slots,
                              max_rounds=max_rounds,
                              check_invariants=self.check_invariants,
                              validate_initial=self.validate_initial,
                              faults=faults, wal_dir=wal_dir,
                              snapshot_every=snapshot_every,
                              on_error=on_error, progress=progress,
                              stats=stats, shard_cells=shard_cells)

    # ------------------------------------------------------------------
    def _run_shm(self, max_rounds: Optional[int],
                 progress: Optional[Callable[[int, int], None]],
                 total: int) -> List[GatheringResult]:
        """Shm backend one-shot: stream the batch, reassemble in order."""
        if self.keep_reports:
            raise ValueError(
                "backend='shm' cannot keep per-round reports; "
                "set keep_reports=False")
        results: List[Optional[GatheringResult]] = [None] * total
        if total == 0:
            return []
        done = 0
        for idx, res in self._stream_shm(iter(self.positions), max(1, total),
                                         max_rounds, None):
            results[idx] = res
            done += 1
            if progress is not None:
                progress(done, total)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_fleet(self, max_rounds: Optional[int], workers: int,
                   progress: Optional[Callable[[int, int], None]],
                   total: int) -> List[GatheringResult]:
        """Fleet backend: shared arrays in-process, shards across workers."""
        if workers <= 1:
            from repro.core.engine_fleet import FleetKernel
            fleet = FleetKernel(self.positions, params=self.params,
                                check_invariants=self.check_invariants,
                                keep_reports=self.keep_reports,
                                validate_initial=self.validate_initial)
            return fleet.run(max_rounds=max_rounds, progress=progress)
        from concurrent.futures import ProcessPoolExecutor, as_completed
        shard_size = (total + workers - 1) // workers
        shards = [self.positions[i:i + shard_size]
                  for i in range(0, total, shard_size)]
        jobs: List[_FleetJob] = [
            (shard, self.params, self.check_invariants, max_rounds,
             self.validate_initial, self.keep_reports) for shard in shards]
        results: List[Optional[GatheringResult]] = [None] * total
        offsets = [i * shard_size for i in range(len(shards))]
        done = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_fleet_job, job): k
                       for k, job in enumerate(jobs)}
            for fut in as_completed(futures):
                k = futures[fut]
                shard_results = _pool_result(fut, k, jobs[k][0], offsets[k])
                results[offsets[k]:offsets[k] + len(shard_results)] = \
                    shard_results
                done += len(shard_results)
                if progress is not None:
                    progress(done, total)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_process(self, max_rounds: Optional[int], workers: int,
                     progress: Optional[Callable[[int, int], None]],
                     total: int) -> List[GatheringResult]:
        """Process backend: one simulation per chain, any engine."""
        jobs = self._jobs(max_rounds)
        if workers > 1:
            from concurrent.futures import ProcessPoolExecutor, as_completed
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if progress is None:
                    chunk = max(1, len(jobs) // (4 * workers))
                    from concurrent.futures import BrokenExecutor
                    try:
                        return list(pool.map(_gather_job, jobs,
                                             chunksize=chunk))
                    except (BrokenExecutor, EOFError, OSError) as exc:
                        from repro.errors import WorkerCrashError
                        raise WorkerCrashError(
                            f"pool worker died mid-batch: "
                            f"{type(exc).__name__}: {exc}") from exc
                results: List[Optional[GatheringResult]] = [None] * total
                futures = {pool.submit(_gather_job, job): k
                           for k, job in enumerate(jobs)}
                done = 0
                for fut in as_completed(futures):
                    k = futures[fut]
                    results[k] = _pool_result(fut, -1, [jobs[k][0]], k)
                    done += 1
                    progress(done, total)
                return results  # type: ignore[return-value]
        results = []
        for k, job in enumerate(jobs):
            results.append(_gather_job(job))
            if progress is not None:
                progress(k + 1, total)
        return results


def gather_stream(chains: Iterable,
                  slots: int = 256,
                  params: Parameters = DEFAULT_PARAMETERS,
                  check_invariants: bool = False,
                  workers: Optional[int] = None,
                  keep_reports: bool = True,
                  max_rounds: Optional[int] = None,
                  validate_initial: bool = True,
                  progress=None,
                  wal_dir: Optional[str] = None,
                  snapshot_every: int = 512,
                  faults=None,
                  resume: bool = False,
                  on_error: str = "raise",
                  max_retries: int = 3,
                  backoff: float = 0.05,
                  backend: str = "fleet",
                  shard_cells: Optional[int] = None
                  ) -> Iterator[Tuple[int, GatheringResult]]:
    """Stream a chain iterator through a bounded fleet (convenience API).

    Generator form of :func:`gather_batch` for workloads that do not
    fit — or should not sit — in memory at once: ``chains`` is
    consumed lazily, at most ``slots`` chains are resident in total
    (split ``slots // workers`` per worker kernel under a pool), and
    ``(index, result)`` pairs yield as chains finish.
    Kernel engine / fleet backend only (that is where the shared arena
    lives); per-chain results are bit-identical to
    :func:`gather_batch` on the same inputs.  ``wal_dir`` /
    ``snapshot_every`` / ``faults`` / ``resume`` pass through to
    :meth:`BatchSimulator.run_stream` (durability tier, §2.12).
    ``backend="shm"`` runs the zero-copy shared-memory shard tier
    (§2.16) instead of the in-process fleet / pickling pool;
    ``shard_cells`` pins its per-shard slab size.
    """
    sim = BatchSimulator([], params=params, engine="kernel",
                         check_invariants=check_invariants,
                         workers=workers, keep_reports=keep_reports,
                         validate_initial=validate_initial,
                         backend=backend)
    return sim.run_stream(chains, slots=slots, max_rounds=max_rounds,
                          progress=progress, wal_dir=wal_dir,
                          snapshot_every=snapshot_every, faults=faults,
                          resume=resume, on_error=on_error,
                          max_retries=max_retries, backoff=backoff,
                          shard_cells=shard_cells)


def gather_batch(chains: Sequence[Union[ClosedChain, Sequence[tuple]]],
                 params: Parameters = DEFAULT_PARAMETERS,
                 engine: str = "kernel",
                 check_invariants: bool = False,
                 workers: Optional[int] = None,
                 keep_reports: bool = True,
                 max_rounds: Optional[int] = None,
                 validate_initial: bool = True,
                 backend: str = "auto",
                 progress=None) -> BatchResult:
    """Gather a fleet of chains (one-call convenience API)."""
    sim = BatchSimulator(chains, params=params, engine=engine,
                         check_invariants=check_invariants,
                         workers=workers, keep_reports=keep_reports,
                         validate_initial=validate_initial,
                         backend=backend)
    return sim.run(max_rounds=max_rounds, progress=progress)
