"""The closed chain of robots.

A :class:`ClosedChain` is a cyclic sequence of robots with stable
integer identities.  Chain neighbours must occupy the same or
4-adjacent grid points at all times (the paper's connectivity
condition).  Merging — the removal of one of two co-located chain
neighbours, combining their neighbourhoods — is realised by
:meth:`ClosedChain.contract_coincident`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ChainError
from repro.grid.lattice import (
    Vec,
    BoundingBox,
    bounding_box,
    manhattan,
    sub,
)


@dataclass(frozen=True)
class MergeRecord:
    """One neighbourhood contraction: ``removed_id`` merged into ``survivor_id``."""

    survivor_id: int
    removed_id: int
    position: Vec


class ClosedChain:
    """Cyclic sequence of robots on the integer grid.

    Robots are addressed either by chain index (0 … n-1, shifting as
    robots are removed) or by a stable id assigned at construction.
    """

    __slots__ = ("_pos", "_ids", "_next_id", "_index_of_id")

    def __init__(self, positions: Sequence[Vec], validate: bool = True,
                 require_disjoint_neighbors: bool = False):
        self._pos: List[Vec] = [(int(x), int(y)) for x, y in positions]
        self._ids: List[int] = list(range(len(self._pos)))
        self._next_id = len(self._pos)
        self._rebuild_index()
        if validate:
            self.validate(initial=require_disjoint_neighbors)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, start: Vec, edges: Iterable[Vec], validate: bool = True) -> "ClosedChain":
        """Build a chain from a start point and a closed edge sequence.

        The edge vectors must sum to zero (the chain is closed); the
        final wrap-around edge is implicit.
        """
        pts = [tuple(start)]
        for e in edges:
            last = pts[-1]
            pts.append((last[0] + e[0], last[1] + e[1]))
        if pts[-1] != pts[0]:
            raise ChainError(f"edge sequence does not close: ends at {pts[-1]}, started {pts[0]}")
        return cls(pts[:-1], validate=validate)

    def copy(self) -> "ClosedChain":
        """Deep copy preserving robot ids."""
        c = ClosedChain.__new__(ClosedChain)
        c._pos = list(self._pos)
        c._ids = list(self._ids)
        c._next_id = self._next_id
        c._rebuild_index()
        return c

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Current number of robots."""
        return len(self._pos)

    def __len__(self) -> int:
        return len(self._pos)

    @property
    def positions(self) -> List[Vec]:
        """Positions in chain order (fresh list; safe to mutate)."""
        return list(self._pos)

    @property
    def ids(self) -> List[int]:
        """Robot ids in chain order (fresh list)."""
        return list(self._ids)

    def position(self, index: int) -> Vec:
        """Position of the robot at a (cyclic) chain index."""
        return self._pos[index % len(self._pos)]

    def id_at(self, index: int) -> int:
        """Stable id of the robot at a (cyclic) chain index."""
        return self._ids[index % len(self._ids)]

    def index_of_id(self, robot_id: int) -> int:
        """Chain index currently held by a robot id.

        Raises ``KeyError`` for removed robots.
        """
        return self._index_of_id[robot_id]

    def has_id(self, robot_id: int) -> bool:
        """True while the robot has not been merged away."""
        return robot_id in self._index_of_id

    def position_of_id(self, robot_id: int) -> Vec:
        """Position of a robot addressed by id."""
        return self._pos[self._index_of_id[robot_id]]

    def edge(self, index: int) -> Vec:
        """Vector from robot ``index`` to its successor (cyclic)."""
        n = len(self._pos)
        return sub(self._pos[(index + 1) % n], self._pos[index % n])

    def edges(self) -> List[Vec]:
        """All ``n`` cyclic edge vectors."""
        n = len(self._pos)
        return [sub(self._pos[(i + 1) % n], self._pos[i]) for i in range(n)]

    def bounding_box(self) -> BoundingBox:
        """Axis-aligned bounding box of all robots."""
        return bounding_box(self._pos)

    def is_gathered(self) -> bool:
        """Paper's termination condition: everything inside a 2×2 subgrid."""
        return self.bounding_box().fits_in(2, 2)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_moves(self, moves: Dict[int, Vec]) -> None:
        """Simultaneously displace robots (``robot_id -> displacement``).

        Displacements must be single-round hops (Chebyshev ≤ 1); the
        caller is responsible for chain-safety, which :meth:`validate`
        re-checks.
        """
        for robot_id, d in moves.items():
            if max(abs(d[0]), abs(d[1])) > 1:
                raise ChainError(f"illegal hop {d!r} for robot {robot_id}")
            i = self._index_of_id[robot_id]
            p = self._pos[i]
            self._pos[i] = (p[0] + d[0], p[1] + d[1])

    def contract_coincident(self, moved_ids: Optional[Set[int]] = None) -> List[MergeRecord]:
        """Merge every co-located chain-neighbour pair until none remain.

        The surviving robot of a pair is the one that moved this round
        (the paper removes the stationary *white* robot); if both or
        neither moved, the lower id survives.  Returns the merge records
        in the order performed.
        """
        moved = moved_ids or set()
        records: List[MergeRecord] = []
        changed = True
        while changed and len(self._pos) > 1:
            changed = False
            n = len(self._pos)
            for i in range(n):
                j = (i + 1) % n
                if i == j:
                    break
                if self._pos[i] == self._pos[j]:
                    id_i, id_j = self._ids[i], self._ids[j]
                    i_moved = id_i in moved
                    j_moved = id_j in moved
                    if i_moved and not j_moved:
                        keep, drop = i, j
                    elif j_moved and not i_moved:
                        keep, drop = j, i
                    else:
                        keep, drop = (i, j) if id_i < id_j else (j, i)
                    records.append(MergeRecord(self._ids[keep], self._ids[drop], self._pos[keep]))
                    del self._pos[drop]
                    del self._ids[drop]
                    changed = True
                    break
        self._rebuild_index()
        return records

    # ------------------------------------------------------------------
    # navigation by id (post-contraction adjacency)
    # ------------------------------------------------------------------
    def neighbor_id(self, robot_id: int, direction: int) -> int:
        """Id of the chain neighbour of ``robot_id`` toward ``direction`` (+1/-1)."""
        if direction not in (1, -1):
            raise ValueError("direction must be +1 or -1")
        i = self._index_of_id[robot_id]
        return self._ids[(i + direction) % len(self._ids)]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, initial: bool = False) -> None:
        """Check closed-chain structural invariants.

        ``initial`` additionally enforces the paper's starting
        assumption that no two chain neighbours coincide (which forces
        even ``n``) and that the chain has at least 4 robots.
        """
        n = len(self._pos)
        if n == 0:
            raise ChainError("empty chain")
        if initial:
            if n < 4:
                raise ChainError(f"initial closed chain needs n >= 4, got {n}")
            if n % 2 != 0:
                raise ChainError(
                    f"a closed chain with unit edges has even length, got n = {n}")
        for i in range(n):
            a = self._pos[i]
            b = self._pos[(i + 1) % n]
            d = manhattan(a, b)
            if d > 1:
                raise ChainError(
                    f"chain broken between index {i} {a} and {(i + 1) % n} {b}")
            if initial and d == 0:
                raise ChainError(
                    f"initial chain has coincident neighbours at index {i} {a}")
        if len(set(self._ids)) != n:
            raise ChainError("duplicate robot ids")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rebuild_index(self) -> None:
        self._index_of_id = {rid: i for i, rid in enumerate(self._ids)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClosedChain(n={self.n}, bbox={self.bounding_box()})"
