"""The closed chain of robots.

A :class:`ClosedChain` is a cyclic sequence of robots with stable
integer identities.  Chain neighbours must occupy the same or
4-adjacent grid points at all times (the paper's connectivity
condition).  Merging — the removal of one of two co-located chain
neighbours, combining their neighbourhoods — is realised by
:meth:`ClosedChain.contract_coincident`.

Storage model (DESIGN.md §2.8): positions live in a NumPy ``(n, 2)``
int64 array.  Two derived representations are cached and invalidated
by a dirty flag on mutation:

* a list of ``(x, y)`` tuples serving the per-robot scalar read paths
  (:meth:`position`, :class:`~repro.core.view.ChainWindow`), so callers
  keep the original tuple semantics;
* the edge-code array (0=E, 1=N, 2=W, 3=S, -1=zero edge, -2=broken)
  consumed by the vectorised merge detector and run-start scanner
  (:mod:`repro.core.engine_vectorized`).

Both caches are rebuilt at most once per round, which keeps the scalar
paths as fast as the original list-backed chain while giving the
vectorised round pipeline zero-copy array access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChainError
from repro.grid.lattice import (
    Vec,
    BoundingBox,
    manhattan,
    sub,
)

#: Edge-code -> unit-vector lookup shared by the vectorised scanners.
CODE_TO_DIR: Tuple[Vec, ...] = ((1, 0), (0, 1), (-1, 0), (0, -1))


def encode_edges(positions, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Direction code (0=E, 1=N, 2=W, 3=S) of every cyclic edge.

    Accepts a position sequence or an ``(n, 2)`` integer array.  A zero
    edge (coincident neighbours) encodes as ``-1``; any other non-unit
    delta — diagonal or longer, only possible on structurally broken
    chains — encodes as ``-2`` so downstream defensive branches can
    tell "transient merge residue" from "chain is broken" exactly as
    the vector-based recognisers do.

    ``out`` may pass a length-``n`` int64 buffer receiving the codes
    (the chain arena points it at a slice of the fleet-wide code
    array, :mod:`repro.core.arena`); the returned array is ``out``.
    """
    p = np.asarray(positions, dtype=np.int64)
    n = len(p)
    if n == 0:
        return np.empty(0, dtype=np.int64) if out is None else out
    e = np.empty_like(p)
    np.subtract(p[1:], p[:-1], out=e[:-1])
    e[-1] = p[0] - p[-1]
    dx, dy = e[:, 0], e[:, 1]
    # E(1,0)->0, W(-1,0)->2 via 1-dx; N(0,1)->1, S(0,-1)->3 via 2-dy
    code = np.where(dy == 0, 1 - dx, 2 - dy)
    manhattan_len = np.abs(dx) + np.abs(dy)
    code[manhattan_len != 1] = -2
    code[manhattan_len == 0] = -1
    if out is not None:
        out[:] = code
        return out
    return code


@dataclass(frozen=True)
class MergeRecord:
    """One neighbourhood contraction: ``removed_id`` merged into ``survivor_id``."""

    survivor_id: int
    removed_id: int
    position: Vec


class ClosedChain:
    """Cyclic sequence of robots on the integer grid.

    Robots are addressed either by chain index (0 … n-1, shifting as
    robots are removed) or by a stable id assigned at construction.
    """

    __slots__ = ("_arr", "_ids", "_next_id", "_index_of_id",
                 "_pos_cache", "_codes_cache", "_codes_list_cache",
                 "_codes_view_cache", "_invalid_edges", "_codes_buf",
                 "_ids_arr_cache", "_index_arr_cache")

    def __init__(self, positions: Sequence[Vec], validate: bool = True,
                 require_disjoint_neighbors: bool = False):
        # one C-level parse; the tuple-list rendering rebuilds lazily
        if isinstance(positions, np.ndarray):
            arr = np.array(positions, dtype=np.int64).reshape(-1, 2)
        else:
            arr = np.array(list(positions), dtype=np.int64).reshape(-1, 2)
        self._arr = arr
        self._pos_cache: Optional[List[Vec]] = None
        self._codes_cache: Optional[np.ndarray] = None
        self._codes_view_cache: Optional[np.ndarray] = None
        self._codes_list_cache: Optional[List[int]] = None
        self._invalid_edges = -1           # -1: unknown until codes built
        #: External edge-code buffer (a slice of the arena's fleet-wide
        #: code array).  When set — and still the right length — the
        #: lazy re-encode writes into it, keeping the arena coherent.
        self._codes_buf: Optional[np.ndarray] = None
        self._ids: List[int] = list(range(len(arr)))
        self._next_id = len(arr)
        self._rebuild_index()
        if validate:
            self.validate(initial=require_disjoint_neighbors)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, start: Vec, edges: Iterable[Vec], validate: bool = True) -> "ClosedChain":
        """Build a chain from a start point and a closed edge sequence.

        The edge vectors must sum to zero (the chain is closed); the
        final wrap-around edge is implicit.
        """
        pts = [tuple(start)]
        for e in edges:
            last = pts[-1]
            pts.append((last[0] + e[0], last[1] + e[1]))
        if pts[-1] != pts[0]:
            raise ChainError(f"edge sequence does not close: ends at {pts[-1]}, started {pts[0]}")
        return cls(pts[:-1], validate=validate)

    def copy(self) -> "ClosedChain":
        """Deep copy preserving robot ids."""
        c = ClosedChain.__new__(ClosedChain)
        c._arr = self._arr.copy()
        c._pos_cache = None
        c._codes_cache = None
        c._codes_view_cache = None
        c._codes_list_cache = None
        c._invalid_edges = -1
        c._codes_buf = None
        c._ids = list(self._ids)
        c._next_id = self._next_id
        c._rebuild_index()
        return c

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._pos_cache = None
        self._codes_cache = None
        self._codes_view_cache = None
        self._codes_list_cache = None
        self._invalid_edges = -1

    def _pos_list(self) -> List[Vec]:
        """The cached tuple-list rendering of the position array."""
        pos = self._pos_cache
        if pos is None:
            a = self._arr
            pos = list(zip(a[:, 0].tolist(), a[:, 1].tolist()))
            self._pos_cache = pos
        return pos

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Current number of robots."""
        return len(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def positions(self) -> List[Vec]:
        """Positions in chain order (fresh list; safe to mutate)."""
        return list(self._pos_list())

    @property
    def ids(self) -> List[int]:
        """Robot ids in chain order (fresh list)."""
        return list(self._ids)

    def positions_view(self) -> List[Vec]:
        """Positions in chain order, zero-copy.

        The returned list is the chain's internal cache — treat it as
        read-only and do not hold it across mutations.  This is the read
        path for the per-round hot loops (DESIGN.md §2.8).
        """
        return self._pos_list()

    def ids_view(self) -> List[int]:
        """Robot ids in chain order, zero-copy (read-only contract).

        Public accessor for bulk scans such as
        :meth:`~repro.core.view.ChainWindow.runs_ahead`; do not mutate
        and do not hold across mutations.
        """
        return self._ids

    def index_map(self) -> Dict[int, int]:
        """The id -> chain index mapping, zero-copy (read-only contract).

        Bulk form of :meth:`index_of_id` for per-round loops; do not
        mutate and do not hold across mutations.
        """
        return self._index_of_id

    def positions_array(self) -> np.ndarray:
        """The backing ``(n, 2)`` int64 position array (read-only view)."""
        v = self._arr.view()
        v.flags.writeable = False
        return v

    def ids_array(self) -> np.ndarray:
        """Robot ids in chain order as a cached int64 array (read-only).

        Array rendering of :meth:`ids_view` for the kernel engine's
        bulk id gathers; invalidated only when robots are removed
        (moves never change the id sequence).
        """
        arr = self._ids_arr_cache
        if arr is None:
            arr = np.asarray(self._ids, dtype=np.int64)
            arr.flags.writeable = False
            self._ids_arr_cache = arr
        return arr

    def index_array(self) -> np.ndarray:
        """The id -> chain index mapping as a cached int64 array.

        ``index_array()[robot_id]`` is the chain index of a live robot
        and ``-1`` for a removed one — the array rendering of
        :meth:`index_map` (ids are assigned densely at construction, so
        the array has one entry per id ever issued).  Read-only; do not
        hold across contractions.
        """
        arr = self._index_arr_cache
        if arr is None:
            arr = np.full(self._next_id, -1, dtype=np.int64)
            arr[self.ids_array()] = np.arange(len(self._ids), dtype=np.int64)
            arr.flags.writeable = False
            self._index_arr_cache = arr
        return arr

    def edge_codes(self) -> np.ndarray:
        """Cached direction codes of all cyclic edges (read-only).

        Codes follow :func:`encode_edges`; the cache is invalidated by
        every mutation and rebuilt lazily, so within one FSYNC snapshot
        the merge detector and the run-start scanner share one encoding
        pass.
        """
        view = self._codes_view_cache
        if view is not None:
            return view
        codes = self._codes_cache
        if codes is None:
            buf = self._codes_buf
            if buf is not None and len(buf) == len(self._arr):
                codes = encode_edges(self._arr, out=buf)
            else:
                codes = encode_edges(self._arr)
            self._codes_cache = codes
            self._invalid_edges = int(np.count_nonzero(codes == -1))
        view = codes.view()
        view.flags.writeable = False
        self._codes_view_cache = view
        return view

    def edge_codes_list(self) -> List[int]:
        """The edge codes as a cached Python list (read-only contract).

        Serves the per-robot scalar paths (the window's
        :meth:`~repro.core.view.ChainWindow.ahead_codes`), where list
        indexing beats NumPy element access by an order of magnitude.
        """
        lst = self._codes_list_cache
        if lst is None:
            lst = self.edge_codes().tolist()
            self._codes_list_cache = lst
        return lst

    def position(self, index: int) -> Vec:
        """Position of the robot at a (cyclic) chain index."""
        pos = self._pos_cache
        if pos is None:
            pos = self._pos_list()
        return pos[index % len(pos)]

    def id_at(self, index: int) -> int:
        """Stable id of the robot at a (cyclic) chain index."""
        return self._ids[index % len(self._ids)]

    def index_of_id(self, robot_id: int) -> int:
        """Chain index currently held by a robot id.

        Raises ``KeyError`` for removed robots.
        """
        return self._index_of_id[robot_id]

    def has_id(self, robot_id: int) -> bool:
        """True while the robot has not been merged away."""
        return robot_id in self._index_of_id

    def position_of_id(self, robot_id: int) -> Vec:
        """Position of a robot addressed by id."""
        return self._pos_list()[self._index_of_id[robot_id]]

    def edge(self, index: int) -> Vec:
        """Vector from robot ``index`` to its successor (cyclic)."""
        pos = self._pos_list()
        n = len(pos)
        return sub(pos[(index + 1) % n], pos[index % n])

    def edges(self) -> List[Vec]:
        """All ``n`` cyclic edge vectors."""
        pos = self._pos_list()
        n = len(pos)
        return [sub(pos[(i + 1) % n], pos[i]) for i in range(n)]

    def bounding_box(self) -> BoundingBox:
        """Axis-aligned bounding box of all robots."""
        if len(self._ids) == 0:
            raise ValueError("bounding_box() of empty point set")
        a = self._arr
        return BoundingBox(int(a[:, 0].min()), int(a[:, 1].min()),
                           int(a[:, 0].max()), int(a[:, 1].max()))

    def is_gathered(self) -> bool:
        """Paper's termination condition: everything inside a 2×2 subgrid."""
        a = self._arr
        x = a[:, 0]
        if int(x.max()) - int(x.min()) > 1:
            return False
        y = a[:, 1]
        return int(y.max()) - int(y.min()) <= 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def apply_moves(self, moves: Dict[int, Vec]) -> None:
        """Simultaneously displace robots (``robot_id -> displacement``).

        Displacements must be single-round hops (Chebyshev ≤ 1); the
        caller is responsible for chain-safety, which :meth:`validate`
        re-checks.
        """
        if not moves:
            return
        pos = self._pos_list()
        n = len(pos)
        index_of = self._index_of_id
        idxs: List[int] = []
        vals: List[Vec] = []
        for robot_id, d in moves.items():
            dx, dy = d
            if dx > 1 or dx < -1 or dy > 1 or dy < -1:
                raise ChainError(f"illegal hop {d!r} for robot {robot_id}")
            i = index_of[robot_id]
            p = pos[i]
            new_p = (p[0] + dx, p[1] + dy)
            pos[i] = new_p               # keep the tuple cache coherent
            idxs.append(i)
            vals.append(new_p)
        if len(idxs) == 1:
            self._arr[idxs[0]] = vals[0]
        else:
            self._arr[idxs] = vals       # one batched scatter write
        self._post_move_codes(idxs, pos, n)

    def apply_moves_indexed(self, indices: Sequence[int], deltas) -> None:
        """Bulk scatter displacement addressed by chain index.

        Kernel-engine counterpart of :meth:`apply_moves`: ``indices``
        and ``deltas`` are parallel sequences (chain indices, ``(m, 2)``
        single-round hops — lists or arrays).  Same semantics —
        including the incremental edge-code maintenance — without the
        per-robot id → index dict probes; small batches run as a scalar
        loop (array dispatch only amortises over enough movers).
        """
        m = len(indices)
        if m == 0:
            return
        if m < 32:
            idx_list = indices.tolist() if isinstance(indices, np.ndarray) \
                else list(indices)
            if isinstance(deltas, np.ndarray):
                deltas = deltas.tolist()
            pos = self._pos_list()
            n = len(pos)
            for i, (dx, dy) in zip(idx_list, deltas):
                if dx > 1 or dx < -1 or dy > 1 or dy < -1:
                    # validated before any cache write so a bad batch
                    # leaves the chain untouched (the >= 32 tier checks
                    # all deltas up front too)
                    raise ChainError(
                        f"illegal hop ({dx}, {dy}) for robot at chain index {i}")
            vals: List[Vec] = []
            for i, (dx, dy) in zip(idx_list, deltas):
                p = pos[i]
                new_p = (p[0] + dx, p[1] + dy)
                pos[i] = new_p           # keep the tuple cache coherent
                vals.append(new_p)
            if m == 1:
                self._arr[idx_list[0]] = vals[0]
            else:
                self._arr[idx_list] = vals   # one batched scatter write
            self._post_move_codes(idx_list, pos, n)
            return
        idx = np.asarray(indices, dtype=np.int64)
        d = np.asarray(deltas, dtype=np.int64)
        hop_len = np.abs(d).max(axis=1)
        if int(hop_len.max()) > 1:
            bad = int(idx[int(np.argmax(hop_len))])
            raise ChainError(f"illegal hop for robot at chain index {bad}")
        pos = self._pos_list()
        n = len(pos)
        new_pos = self._arr[idx] + d
        self._arr[idx] = new_pos
        idx_list = idx.tolist()
        for i, x, y in zip(idx_list, new_pos[:, 0].tolist(),
                           new_pos[:, 1].tolist()):
            pos[i] = (x, y)              # keep the tuple cache coherent
        self._post_move_codes(idx_list, pos, n)

    def _post_move_codes(self, idxs: List[int], pos: List[Vec], n: int) -> None:
        """Edge-code cache maintenance after a scatter displacement."""
        codes = self._codes_cache
        if codes is None or len(idxs) * 4 >= n:
            # dense rounds: a fresh vectorised encoding (lazily, at the
            # next edge_codes access) beats per-edge bookkeeping.  Since
            # contraction learned to keep the caches alive the coherent
            # cache is worth more, so the crossover sits higher than the
            # raw encode-vs-loop break-even
            self._codes_cache = None
            self._codes_view_cache = None
            self._codes_list_cache = None
            self._invalid_edges = -1
        elif len(idxs) >= 24:
            # mid-size batches: recompute the affected edges with array
            # ops against the (already updated) position array.  Only
            # the list rendering is dropped (one lazy ``tolist`` later)
            # — the code array and the zero-edge counter stay exact
            idx = np.asarray(idxs, dtype=np.int64)
            e = np.unique(np.concatenate([idx - 1, idx]))
            if e[0] < 0:
                e[0] = n - 1
                e.sort()
                e = e[:-1] if e[-2] == n - 1 else e
            b = e + 1
            b[-1] = b[-1] % n
            d = self._arr[b] - self._arr[e]
            dx, dy = d[:, 0], d[:, 1]
            nc = np.full(len(e), -2, dtype=codes.dtype)
            horiz = (dy == 0) & ((dx == 1) | (dx == -1))
            nc[horiz] = 1 - dx[horiz]
            vert = (dx == 0) & ((dy == 1) | (dy == -1))
            nc[vert] = 2 - dy[vert]
            nc[(dx == 0) & (dy == 0)] = -1
            oc = codes[e]
            changed = oc != nc
            if changed.any():
                codes[e[changed]] = nc[changed]
                self._invalid_edges += \
                    int(np.count_nonzero(nc[changed] == -1)) \
                    - int(np.count_nonzero(oc[changed] == -1))
                self._codes_list_cache = None
        else:
            # incremental code maintenance: only the two edges incident
            # to each mover can change; recompute them from the updated
            # tuple cache (Python-side, against the list rendering) and
            # sync the array with one scatter, keeping the zero-edge
            # counter exact.  Neighbouring movers revisit a shared edge,
            # but the second visit sees the updated code and no-ops, so
            # no dedup set is needed
            cl = self._codes_list_cache
            if cl is None:
                cl = codes.tolist()
                self._codes_list_cache = cl
            upd_idx: List[int] = []
            upd_val: List[int] = []
            invalid = self._invalid_edges
            for i in idxs:
                for e in (i - 1 if i else n - 1, i):
                    a = pos[e]
                    b = pos[e + 1 if e + 1 < n else 0]
                    dx = b[0] - a[0]
                    dy = b[1] - a[1]
                    if dy == 0 and (dx == 1 or dx == -1):
                        nc = 1 - dx
                    elif dx == 0 and (dy == 1 or dy == -1):
                        nc = 2 - dy
                    elif dx == 0 and dy == 0:
                        nc = -1
                    else:
                        nc = -2          # broken edge (see encode_edges)
                    oc = cl[e]
                    if oc != nc:
                        cl[e] = nc
                        upd_idx.append(e)
                        upd_val.append(nc)
                        invalid += (1 if nc == -1 else 0) \
                            - (1 if oc == -1 else 0)
            if upd_idx:
                if len(upd_idx) == 1:
                    codes[upd_idx[0]] = upd_val[0]
                else:
                    codes[upd_idx] = upd_val
            self._invalid_edges = invalid

    def contract_coincident(self, moved_ids: Optional[Container[int]] = None) -> List[MergeRecord]:
        """Merge every co-located chain-neighbour pair until none remain.

        The surviving robot of a pair is the one that moved this round
        (the paper removes the stationary *white* robot); if both or
        neither moved, the lower id survives.  Returns the merge records
        in the order performed.

        One linear pass over the chain: within a block of co-located
        robots the earliest pair always merges first, which reproduces
        the restart-scan order of the original implementation, and the
        wrap-around pair is resolved last (it can only coincide once no
        interior pair does).  See DESIGN.md §2.8.
        """
        if len(self._ids) < 2:
            return []
        # fast path: a coincident neighbour pair is exactly a zero edge,
        # i.e. a -1 edge code on a connected chain.  The chain keeps an
        # exact count of -1 codes alongside the code cache (rebuilt here
        # if stale), so on merge-free rounds — the common case — this
        # check is O(1), and the encoding it may force is the same one
        # the next round's detector and run-start scanner consume.
        if self._invalid_edges < 0:
            self.edge_codes()              # rebuild cache + counter
        if self._invalid_edges == 0:
            return []

        pos = self._pos_list()
        moved = moved_ids or set()
        ids = self._ids
        records: List[MergeRecord] = []

        def keep_first(id_a: int, id_b: int) -> bool:
            # pair order (a, b) = (lower chain index, higher chain index)
            a_moved = id_a in moved
            b_moved = id_b in moved
            if a_moved != b_moved:
                return a_moved
            return id_a < id_b

        # vectorised fast path: isolated coincident pairs — no block of
        # three-plus co-located robots (adjacent zero edges) and no
        # wrap-around pair — rebuild with one mask instead of the
        # linear rescan.  Removing the second robot of an isolated pair
        # cannot create a new coincident neighbour pair, so one sweep
        # suffices; record order (ascending index) and survivor choice
        # match the general pass below (pinned by test_contract_linear).
        n = len(ids)
        zs = np.flatnonzero(self._codes_cache == -1)
        if len(zs) and zs[-1] != n - 1 \
                and (len(zs) == 1 or int(np.diff(zs).min()) > 1):
            ia = self.ids_array().copy()
            keep = np.ones(n, dtype=bool)
            zs_list = zs.tolist()
            for e in zs_list:
                top, rid = ids[e], ids[e + 1]
                p = pos[e]
                if keep_first(top, rid):
                    records.append(MergeRecord(top, rid, p))
                else:
                    records.append(MergeRecord(rid, top, p))
                    ia[e] = rid
                keep[e + 1] = False
            self._arr = self._arr[keep]
            self._ids = ia[keep].tolist()
            # removing robot e+1 fuses zero edge e with edge e+1 into one
            # edge that keeps edge e+1's (non-zero) code, so the cached
            # renderings survive the contraction: the code array just
            # loses its -1 entries and the position list the duplicates —
            # no full re-encode next round
            self._codes_cache = np.delete(self._codes_cache, zs)
            self._codes_view_cache = None
            cl = self._codes_list_cache
            if cl is not None:
                for e in reversed(zs_list):
                    del cl[e]
            if self._pos_cache is not None:
                for e in reversed(zs_list):
                    del self._pos_cache[e + 1]
            self._invalid_edges = 0
            self._rebuild_index()
            return records

        out_pos: List[Vec] = []
        out_ids: List[int] = []
        for p, rid in zip(pos, ids):
            if out_pos and out_pos[-1] == p:
                top = out_ids[-1]
                if keep_first(top, rid):
                    records.append(MergeRecord(top, rid, p))
                else:
                    records.append(MergeRecord(rid, top, p))
                    out_ids[-1] = rid
            else:
                out_pos.append(p)
                out_ids.append(rid)
        # wrap-around pair: (last, first) in scan order
        head = 0
        while len(out_pos) - head > 1 and out_pos[-1] == out_pos[head]:
            last_id, first_id = out_ids[-1], out_ids[head]
            if keep_first(last_id, first_id):
                records.append(MergeRecord(last_id, first_id, out_pos[-1]))
                head += 1
            else:
                records.append(MergeRecord(first_id, last_id, out_pos[head]))
                out_pos.pop()
                out_ids.pop()

        if head:
            out_pos = out_pos[head:]
            out_ids = out_ids[head:]
        if not records:
            return []                      # counter was conservative; no change
        self._arr = np.asarray(out_pos, dtype=np.int64).reshape(len(out_pos), 2)
        self._pos_cache = out_pos
        self._codes_cache = None
        self._codes_view_cache = None
        self._codes_list_cache = None
        self._invalid_edges = -1
        self._ids = out_ids
        self._rebuild_index()
        return records

    # ------------------------------------------------------------------
    # navigation by id (post-contraction adjacency)
    # ------------------------------------------------------------------
    def neighbor_id(self, robot_id: int, direction: int) -> int:
        """Id of the chain neighbour of ``robot_id`` toward ``direction`` (+1/-1)."""
        if direction not in (1, -1):
            raise ValueError("direction must be +1 or -1")
        i = self._index_of_id[robot_id]
        return self._ids[(i + direction) % len(self._ids)]

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, initial: bool = False) -> None:
        """Check closed-chain structural invariants.

        ``initial`` additionally enforces the paper's starting
        assumption that no two chain neighbours coincide (which forces
        even ``n``) and that the chain has at least 4 robots.
        """
        n = len(self._ids)
        if n == 0:
            raise ChainError("empty chain")
        if initial:
            if n < 4:
                raise ChainError(f"initial closed chain needs n >= 4, got {n}")
            if n % 2 != 0:
                raise ChainError(
                    f"a closed chain with unit edges has even length, got n = {n}")
        # one pass over the cached edge codes (-2: broken, -1: zero
        # edge); the first offending edge — in scan order, matching the
        # original per-robot loop — picks the message
        codes = self.edge_codes()
        bad = codes == -2
        if initial:
            bad = bad | (codes == -1)
        if bad.any():
            i = int(np.argmax(bad))
            pos = self._pos_list()
            a = pos[i]
            if codes[i] == -1:
                raise ChainError(
                    f"initial chain has coincident neighbours at index {i} {a}")
            b = pos[(i + 1) % n]
            raise ChainError(
                f"chain broken between index {i} {a} and {(i + 1) % n} {b}")
        if len(set(self._ids)) != n:
            raise ChainError("duplicate robot ids")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def __getattr__(self, name):
        # the id -> index dict materialises lazily: chains that are
        # only ever driven through the arena's flat tables (the fleet
        # tier's streaming intake and retirement) never pay the build
        if name == "_index_of_id":
            d = {rid: i for i, rid in enumerate(self._ids)}
            self._index_of_id = d
            return d
        raise AttributeError(name)

    def _rebuild_index(self) -> None:
        try:
            del self._index_of_id
        except AttributeError:
            pass
        self._ids_arr_cache = None
        self._index_arr_cache = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClosedChain(n={self.n}, bbox={self.bounding_box()})"
