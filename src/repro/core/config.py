"""Algorithm parameters (paper constants and ablation knobs).

The paper fixes the viewing path length to 11 and the run-start interval
to ``L = 13`` and proves these suffice (Lemma 3).  Both are exposed as
parameters so the ablation experiments (EXP-A1..A3) can probe how tight
they are.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class Parameters:
    """Tunable constants of the gathering algorithm.

    Attributes
    ----------
    viewing_path_length:
        Number of chain neighbours a robot can see in each direction
        (the paper's constant 11).
    start_interval:
        New runs are started every ``start_interval`` rounds (the
        paper's ``L = 13``).
    k_max:
        Longest black subchain a merge operation may use.  ``None``
        derives the largest locality-compatible value
        ``viewing_path_length - 1`` (all participants of a pattern with
        ``k`` blacks are within chain distance ``k + 1 ≤ V`` of each
        other).  The proof of Lemma 1 only requires ``k_max = 2``; the
        ablation EXP-A2 shows why the algorithm itself wants the larger
        default.
    passing_distance:
        Chain distance at or below which two oncoming runs begin the
        run-passing operation (paper: 3).
    travel_steps:
        Hop-less moves of operation Fig. 11(b) (paper: 3).
    endpoint_guard:
        When True, termination condition 2 (quasi-line endpoint visible
        ahead) is suppressed while an oncoming run is also visible, so a
        good pair keeps working until it meets.  The paper argues this
        situation cannot occur for progress pairs; the guard is an
        implementation safeguard for quasi lines shorter than twice the
        viewing range.  Default True [D] (see DESIGN.md §2.7).
    sequent_guard:
        When True, termination condition 1 (sequent run visible ahead)
        fires only when the sequent run is strictly closer than the
        nearest oncoming run.  A sequent run beyond the approaching
        partner belongs to the far side of the quasi line and is
        receding at equal speed, so it cannot conflict; terminating on
        it deadlocks symmetric rings whose quasi lines are shorter than
        the viewing range.  Default True [D] (see DESIGN.md §2.7).
    """

    viewing_path_length: int = 11
    start_interval: int = 13
    k_max: int | None = None
    passing_distance: int = 3
    travel_steps: int = 3
    endpoint_guard: bool = True
    sequent_guard: bool = True
    #: Merge length cap after applying the visibility constraint —
    #: derived in ``__post_init__``; a plain attribute because the
    #: policy reads it on every run decision (measured hot path).
    effective_k_max: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.viewing_path_length < 4:
            raise ValueError("viewing_path_length must be at least 4 "
                             "(run-start shapes need ±3 neighbours)")
        if self.start_interval < 1:
            raise ValueError("start_interval must be positive")
        if self.k_max is not None and self.k_max < 1:
            raise ValueError("k_max must be at least 1")
        if self.passing_distance < 1:
            raise ValueError("passing_distance must be at least 1")
        if self.travel_steps < 1:
            raise ValueError("travel_steps must be at least 1")
        # the dataclass is frozen, so bypass __setattr__ for the derived cap
        cap = self.viewing_path_length - 1
        object.__setattr__(self, "effective_k_max",
                           cap if self.k_max is None else min(self.k_max, cap))

    def round_budget(self, n: int) -> int:
        """Generous linear round budget used as the stall threshold.

        Theorem 1 bounds gathering by ``2·L·n + n`` rounds; the budget
        adds slack so that a budget overrun reliably indicates a stall
        rather than a slow-but-live configuration.
        """
        return (2 * self.start_interval + 2) * max(n, 1) + 8 * self.start_interval + 64

    def with_(self, **changes) -> "Parameters":
        """Functional update (ablation helper)."""
        return replace(self, **changes)


#: The paper's configuration.
DEFAULT_PARAMETERS = Parameters()

#: Configuration used in the proof of Lemma 1 (merges restricted to k ≤ 2).
PROOF_PARAMETERS = Parameters(k_max=2)
