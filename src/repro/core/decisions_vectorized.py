"""Bulk run decisions: paper Fig. 15 step 2 for all active runs at once.

The reference engine decides each run through a per-robot
:class:`~repro.core.view.ChainWindow` (:func:`repro.core.algorithm.decide_run`).
This module executes the same decision table over the run registry's
struct-of-arrays state and the arena's edge-code arrays, then applies
the outcome (terminations, mode/target/steps transitions, hop
collection with conflict resolution) straight to the registry — the
fused form of the reference engine's steps 3 + 5-6.

Two behaviourally identical paths serve the unified kernel/fleet
substrate (:mod:`repro.core.engine_fleet`):

* :func:`decide_and_apply_fleet` — rolled/gathered array comparisons
  over the whole arena: nearest sequent/oncoming runs via one
  fleet-wide ``searchsorted`` over the carrier key arrays, the
  Table 1.2 endpoint check as a vectorised necessary-condition filter
  (a window without two equal adjacent perpendicular codes, a
  stairway step or a broken edge can never show an endpoint) with
  only the flagged candidates parsed through the reference quasi-line
  grammar (same memoised parser), and the Fig. 11 operations —
  including the ``INIT_CORNER`` op (c) corner cut — as elementwise
  code comparisons.
* :func:`decide_and_apply_scalar` — a tight integer loop over the
  same registry arrays for single-segment arenas with only a handful
  of runs, where per-call NumPy dispatch overhead would dominate
  (the adaptive crossover is :data:`NUMPY_MIN_RUNS`).

Equivalence of both paths against the reference engine is
property-tested decision-for-decision (``tests/test_conformance.py``).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import LocalityViolation
from repro.core.chain import CODE_TO_DIR, ClosedChain
from repro.core.config import Parameters
from repro.core.patterns import endpoint_visible_codes
from repro.core.runs import (
    COL_AXY,
    COL_CHAIN,
    COL_DIRN,
    COL_HOPS,
    COL_MODE,
    COL_ROBOT,
    COL_STEPS,
    COL_TARGET,
    MODE_INIT_CORNER,
    MODE_NORMAL,
    MODE_PASSING,
    MODE_TRAVEL,
    RunRegistry,
    StopReason,
)

#: Stop-reason codes of the decision stage (Table 1.1-1.3).
_STOP_SEQUENT = StopReason.SEQUENT_RUN_AHEAD.value
_STOP_ENDPOINT = StopReason.ENDPOINT_VISIBLE.value
_STOP_MERGE = StopReason.MERGE_PARTICIPATION.value

#: Direction-code -> unit-vector table for hop assembly.
_DIR_TABLE = np.array(CODE_TO_DIR, dtype=np.int64)

#: Precomputed diagonal hops: ``_HOP_SUM[p][q]`` is the vector sum of
#: the unit vectors for codes ``p`` and ``q`` (the op (a)/(c) hop).
_HOP_SUM = tuple(tuple((CODE_TO_DIR[p][0] + CODE_TO_DIR[q][0],
                        CODE_TO_DIR[p][1] + CODE_TO_DIR[q][1])
                       for q in range(4)) for p in range(4))

#: Below this many active runs the scalar path wins: the NumPy path
#: spends ~60 small array dispatches per round, which only amortise
#: once the per-run loop would cost more.  Both paths are behaviourally
#: identical (shared property tests), so this is purely a latency knob.
NUMPY_MIN_RUNS = 40

#: Raw-slice endpoint memo for backward walkers (key: raw code slice,
#: viewing length, axis parity, k_max).  A hit skips building the
#: flipped walking-direction window altogether; the verdict itself is
#: the shared reference grammar's.  Bounded like the grammar memo.
_BWD_EP_CACHE: dict = {}
_BWD_EP_CACHE_MAX = 1 << 15


class AppliedDecisions:
    """Outcome of one decision stage, already written to the registry."""

    __slots__ = ("terminated", "move_idx", "move_deltas",
                 "runner_hop_conflicts")

    def __init__(self, terminated: Dict[int, int], move_idx, move_deltas,
                 runner_hop_conflicts: int):
        #: stop-reason code -> count of runs terminated this stage
        self.terminated = terminated
        #: chain indices of runner hops that execute (conflict-free)
        self.move_idx = move_idx
        #: parallel (m, 2) hop vectors
        self.move_deltas = move_deltas
        #: robots whose two runs demanded different hops (all frozen)
        self.runner_hop_conflicts = runner_hop_conflicts


# ---------------------------------------------------------------------------
# scalar path (single-segment arenas with small run counts)
# ---------------------------------------------------------------------------

def _ahead_codes(cl: List[int], n: int, a: int, d: int, count: int) -> List[int]:
    """Walking-direction codes of the ``count`` edges ahead of anchor ``a``.

    Same semantics as :meth:`ChainWindow.ahead_codes` against the
    chain's cached code list (including the lap case ``count > n``).
    """
    if count > n:                          # window laps the (short) chain
        if d == 1:
            return [cl[(a + j) % n] for j in range(count)]
        return [c ^ 2 if c >= 0 else c
                for j in range(1, count + 1)
                for c in (cl[(a - j) % n],)]
    if d == 1:
        end = a + count
        if end <= n:
            return cl[a:end]
        return cl[a:] + cl[:end - n]
    start = a - count
    seg = cl[start:a] if start >= 0 else cl[start + n:] + cl[:a]
    return [c ^ 2 if c >= 0 else c for c in reversed(seg)]


def decide_and_apply_scalar(chain: ClosedChain, registry: RunRegistry,
                            params: Parameters,
                            part_mask: Optional[np.ndarray],
                            round_index: int) -> AppliedDecisions:
    """Decide every active run of one chain in a tight integer loop.

    Scalar counterpart of :func:`decide_and_apply_fleet` for the
    fleet-of-one below the :data:`NUMPY_MIN_RUNS` crossover (the
    kernel engine's small-chain latency floor).  ``part_mask`` flags
    merge participants by chain index (Table 1.3); movement is *not*
    applied — the returned hop lists join the merge hops in the
    engine's simultaneous-movement step.
    """
    if params.passing_distance > params.viewing_path_length:
        # the reference window raises when the passing scan exceeds the
        # viewing range; mirror the contract rather than widening it
        raise LocalityViolation(
            f"passing distance {params.passing_distance} exceeds viewing "
            f"path length {params.viewing_path_length}")
    cl = chain.edge_codes_list()
    ids = chain.ids_view()
    index_map = chain.index_map()
    n = chain.n
    v = params.viewing_path_length
    pd = params.passing_distance
    seq_guard = params.sequent_guard
    ep_guard = params.endpoint_guard
    k_eff = params.effective_k_max
    travel_steps = params.travel_steps
    participant = part_mask.tolist() if part_mask is not None else None

    data = registry._data

    # one bulk gather of the live matrix rows into plain Python lists
    # (NumPy scalar indexing costs ~10x a list read on this path);
    # stops mutate the live set, so the slot list is snapshotted
    slots = list(registry._active)
    rows = registry.active_rows()

    # anchor indices plus sorted carrier lists split by run direction
    # (one pass): the windows' runs_ahead scan becomes two bisections
    anchors: List[int] = []
    fwd: List[int] = []
    bwd: List[int] = []
    for row in rows:
        a = index_map[row[COL_ROBOT]]
        anchors.append(a)
        (fwd if row[COL_DIRN] == 1 else bwd).append(a)
    fwd.sort()
    bwd.sort()
    nf, nb = len(fwd), len(bwd)
    bisect_right = bisect.bisect_right
    bisect_left = bisect.bisect_left

    terminated: Dict[int, int] = {}
    # robot -> [hop vec, anchor index, run slots...] for conflict resolution
    runner_hops: Dict[int, list] = {}
    conflicts = 0

    for rid, row, a in zip(slots, rows, anchors):
        robot_id = row[COL_ROBOT]
        d = row[COL_DIRN]

        # Table 1.3 — the carrier takes part in a merge operation
        if participant is not None and participant[a]:
            registry.stop_slot(rid, _STOP_MERGE, round_index)
            terminated[_STOP_MERGE] = terminated.get(_STOP_MERGE, 0) + 1
            continue

        # nearest sequent/oncoming carrier toward d, by bisection (the
        # nearest cyclic neighbour in the sorted index lists)
        if d == 1:
            if nf:
                c = fwd[bisect_right(fwd, a) % nf]
                sequent = (c - a) % n or n # the anchor re-appears after a lap
            else:
                sequent = n + 1
            if nb:
                c = bwd[bisect_right(bwd, a) % nb]
                oncoming = (c - a) % n or n
            else:
                oncoming = n + 1
        else:
            if nb:
                c = bwd[bisect_left(bwd, a) - 1]
                sequent = (a - c) % n or n
            else:
                sequent = n + 1
            if nf:
                c = fwd[bisect_left(fwd, a) - 1]
                oncoming = (a - c) % n or n
            else:
                oncoming = n + 1
        has_onc = oncoming <= v

        # Table 1.1 — sequent run visible in front (with the sequent guard)
        if sequent <= v and not (seq_guard and has_onc
                                 and sequent >= oncoming):
            registry.stop_slot(rid, _STOP_SEQUENT, round_index)
            terminated[_STOP_SEQUENT] = terminated.get(_STOP_SEQUENT, 0) + 1
            continue

        # Table 1.2 — endpoint of the quasi line visible in front.
        # Fast path: a wrap-free window whose raw codes are all equal
        # needs no walking-direction list at all — straight along the
        # quasi-line axis parses to False, a straight perpendicular
        # segment parses to True (two equal adjacent perpendicular
        # codes), both without touching the grammar or the memo.
        ahead = None
        straight = 0                       # 0: unknown, 1: straight window
        if not (ep_guard and has_onc):
            if d == 1:
                end = a + v
                seg = cl[a:end] if end <= n else None
            else:
                seg = cl[a - v:a] if a >= v else None
            c0 = seg[0] if seg is not None else -9
            if c0 >= 0 and seg.count(c0) == v:
                straight = 1
                if (c0 & 1) != (1 if row[COL_AXY] else 0):
                    registry.stop_slot(rid, _STOP_ENDPOINT, round_index)
                    terminated[_STOP_ENDPOINT] = \
                        terminated.get(_STOP_ENDPOINT, 0) + 1
                    continue
            elif seg is None or d == 1:
                # wrap case (rare) or forward walk (raw == walking codes)
                ahead = seg if seg is not None else _ahead_codes(cl, n, a, d, v)
                if endpoint_visible_codes(ahead, v,
                                          1 if row[COL_AXY] else 0, k_eff):
                    registry.stop_slot(rid, _STOP_ENDPOINT, round_index)
                    terminated[_STOP_ENDPOINT] = \
                        terminated.get(_STOP_ENDPOINT, 0) + 1
                    continue
            else:
                # backward walk: memoise on the raw slice so cache hits
                # skip the flip-and-reverse list build entirely
                apar = 1 if row[COL_AXY] else 0
                key = (tuple(seg), v, apar, k_eff)
                verdict = _BWD_EP_CACHE.get(key)
                if verdict is None:
                    ahead = [x ^ 2 if x >= 0 else x for x in reversed(seg)]
                    verdict = endpoint_visible_codes(ahead, v, apar, k_eff)
                    if len(_BWD_EP_CACHE) >= _BWD_EP_CACHE_MAX:
                        _BWD_EP_CACHE.clear()
                    _BWD_EP_CACHE[key] = verdict
                if verdict:
                    registry.stop_slot(rid, _STOP_ENDPOINT, round_index)
                    terminated[_STOP_ENDPOINT] = \
                        terminated.get(_STOP_ENDPOINT, 0) + 1
                    continue

        # arrival bookkeeping: leaving passing/travel when on target
        mode = mode0 = row[COL_MODE]
        target = target0 = row[COL_TARGET]
        steps = row[COL_STEPS]
        if mode == MODE_PASSING and target >= 0 and robot_id == target:
            mode, target = MODE_NORMAL, -1
        if mode == MODE_TRAVEL and ((target >= 0 and robot_id == target)
                                    or steps <= 0):
            mode, target = MODE_NORMAL, -1

        # run passing (Fig. 8 / Fig. 14)
        if mode == MODE_PASSING:
            if target != target0:
                data[rid, COL_TARGET] = target   # mode unchanged
            continue
        if has_onc and oncoming <= pd and mode != MODE_INIT_CORNER:
            if mode == MODE_TRAVEL and target >= 0:
                # Fig. 14: an interrupted operation keeps its settled target
                passing_target = target
            else:
                passing_target = ids[(a + oncoming * d) % n]
            if mode0 != MODE_PASSING:
                data[rid, COL_MODE] = MODE_PASSING
            if passing_target != target0:
                data[rid, COL_TARGET] = passing_target
            continue

        # continue an operation already in progress (Fig. 11 b/c)
        if mode == MODE_TRAVEL:
            if target != target0:
                data[rid, COL_TARGET] = target
            data[rid, COL_STEPS] = steps - 1
            continue

        # operation (c): corner-cut hop of a fresh Fig. 5(ii) run
        if mode == MODE_INIT_CORNER:
            u = cl[a]
            w = cl[a - 1]                  # edge(0, -1) reverses edge a-1
            data[rid, COL_MODE] = MODE_NORMAL
            if target0 != -1:
                data[rid, COL_TARGET] = -1
            if u >= 0 and w >= 0 and ((u ^ w) & 1):
                hop = _HOP_SUM[u][w ^ 2]
                entry = runner_hops.get(robot_id)
                if entry is None:
                    runner_hops[robot_id] = [hop, a, rid]
                else:
                    entry.append(hop)
                    entry.append(rid)
            continue

        # normal operation: (a) reshape or (b) travel.  The first three
        # walking-direction codes come from the straight fast path, the
        # already-built window, or three raw reads (flipping cancels in
        # the equality checks toward d == -1).
        if straight:
            c1 = c0 if d == 1 else c0 ^ 2
            aligned3 = True
        elif ahead is not None:
            c1 = ahead[0]
            aligned3 = ahead[1] == c1 and ahead[2] == c1
            if c1 >= 0 and not aligned3 and ahead[1] == c1:
                data[rid, COL_MODE] = MODE_TRAVEL
                data[rid, COL_TARGET] = ids[(a + 3 * d) % n]
                data[rid, COL_STEPS] = travel_steps
                continue
        elif d == 1:
            c1 = cl[a]
            r2 = cl[a + 1 - n] if a + 1 >= n else cl[a + 1]
            r3 = cl[a + 2 - n] if a + 2 >= n else cl[a + 2]
            aligned3 = r2 == c1 and r3 == c1
            if c1 >= 0 and not aligned3 and r2 == c1:
                data[rid, COL_MODE] = MODE_TRAVEL
                data[rid, COL_TARGET] = ids[(a + 3 * d) % n]
                data[rid, COL_STEPS] = travel_steps
                continue
        else:
            r1 = cl[(a - 1) % n]
            r2 = cl[(a - 2) % n]
            r3 = cl[(a - 3) % n]
            c1 = r1 ^ 2 if r1 >= 0 else r1
            aligned3 = r2 == r1 and r3 == r1
            if c1 >= 0 and not aligned3 and r2 == r1:
                data[rid, COL_MODE] = MODE_TRAVEL
                data[rid, COL_TARGET] = ids[(a + 3 * d) % n]
                data[rid, COL_STEPS] = travel_steps
                continue
        if c1 >= 0 and aligned3:
            # op (a): runner and next >= 3 robots on a straight line
            braw = cl[a - 1] if d == 1 else cl[a]
            behind = braw ^ 2 if (d == 1 and braw >= 0) else braw
            if mode0 != MODE_NORMAL:
                data[rid, COL_MODE] = MODE_NORMAL
            if target0 != -1:
                data[rid, COL_TARGET] = -1
            if behind >= 0 and ((behind ^ c1) & 1):
                hop = _HOP_SUM[behind][c1]
                entry = runner_hops.get(robot_id)
                if entry is None:
                    runner_hops[robot_id] = [hop, a, rid]
                else:
                    entry.append(hop)
                    entry.append(rid)
            continue
        # defensive default: keep moving at speed one without reshaping
        if mode0 != MODE_NORMAL:
            data[rid, COL_MODE] = MODE_NORMAL
        if target0 != -1:
            data[rid, COL_TARGET] = -1

    # hop conflict resolution: a robot carrying two hopping runs moves
    # only when both demand the same hop (then each run counts it).
    # Entries are [hop, anchor, slot(, hop2, slot2)] — at most two runs.
    move_idx: List[int] = []
    move_deltas: List[Tuple[int, int]] = []
    hop_slots: List[int] = []
    for entry in runner_hops.values():
        if len(entry) == 3:
            move_idx.append(entry[1])
            move_deltas.append(entry[0])
            hop_slots.append(entry[2])
        elif entry[3] == entry[0]:
            move_idx.append(entry[1])
            move_deltas.append(entry[0])
            hop_slots.append(entry[2])
            hop_slots.append(entry[4])
        else:
            conflicts += 1
    if hop_slots:
        if len(hop_slots) == 1:
            data[hop_slots[0], COL_HOPS] += 1
        else:
            data[hop_slots, COL_HOPS] += 1   # slots unique: one batched RMW
    return AppliedDecisions(terminated, move_idx, move_deltas, conflicts)


# ---------------------------------------------------------------------------
# fleet path (all chains of a fleet in one decision pass)
# ---------------------------------------------------------------------------

class FleetDecisions:
    """Outcome of one fleet-wide decision stage (written to the registry).

    Same content as :class:`AppliedDecisions` lifted to the fleet:
    movement is addressed by global arena cell, and the termination /
    conflict tallies carry the owning chain so the fleet engine can
    split them into per-chain round reports.
    """

    __slots__ = ("terminated", "move_gidx", "move_deltas", "move_chain",
                 "conflicts")

    def __init__(self, terminated, move_gidx, move_deltas, move_chain,
                 conflicts):
        #: (chain_id, stop-reason code) per run terminated this stage
        self.terminated = terminated
        #: global arena cells of runner hops that execute (conflict-free)
        self.move_gidx = move_gidx
        #: parallel (m, 2) hop vectors
        self.move_deltas = move_deltas
        #: parallel owning chain ids
        self.move_chain = move_chain
        #: chain_id -> robots whose two runs demanded different hops
        self.conflicts = conflicts


_EMPTY_FLEET = FleetDecisions([], (), (), (), {})

_EMPTY_I64 = np.empty(0, dtype=np.int64)


def _fleet_nearest_ahead(keys: np.ndarray, bs: np.ndarray, nn: np.ndarray,
                         carriers: np.ndarray, big: int) -> np.ndarray:
    """Cyclic offset to the next same-chain carrier at a larger index.

    ``keys`` are fleet-unique anchor keys (``segment base + local
    index``), ``carriers`` the sorted keys of all carriers of one run
    direction.  Segment bases partition the key space per chain, so
    one fleet-wide ``searchsorted`` resolves every chain at once; the
    wrap-around falls back to the chain's first carrier.
    """
    out = np.full(len(keys), big, dtype=np.int64)
    if len(carriers) == 0 or len(keys) == 0:
        return out
    lo = np.searchsorted(carriers, bs, side="left")
    hi = np.searchsorted(carriers, bs + nn, side="left")
    has = hi > lo
    j = np.searchsorted(carriers, keys, side="right")
    j = np.where(j >= hi, lo, j)
    off = (carriers[np.where(has, j, 0)] - keys) % nn
    off[off == 0] = nn[off == 0]           # the anchor re-appears after a lap
    out[has] = off[has]
    return out


def _fleet_nearest_behind(keys: np.ndarray, bs: np.ndarray, nn: np.ndarray,
                          carriers: np.ndarray, big: int) -> np.ndarray:
    """Cyclic offset to the next same-chain carrier at a smaller index."""
    out = np.full(len(keys), big, dtype=np.int64)
    if len(carriers) == 0 or len(keys) == 0:
        return out
    lo = np.searchsorted(carriers, bs, side="left")
    hi = np.searchsorted(carriers, bs + nn, side="left")
    has = hi > lo
    j = np.searchsorted(carriers, keys, side="left") - 1
    j = np.where(j < lo, hi - 1, j)
    off = (keys - carriers[np.where(has, j, 0)]) % nn
    off[off == 0] = nn[off == 0]
    out[has] = off[has]
    return out


def decide_and_apply_fleet(arena, registry: RunRegistry, params: Parameters,
                           part_flat: Optional[np.ndarray],
                           round_index: int) -> FleetDecisions:
    """Decide every active run of the whole fleet in one NumPy pass.

    The fleet rendering of :func:`_decide_numpy`: anchors, code
    windows, nearest-carrier scans and id lookups all address the
    arena's flat arrays through each run's segment base, so a fleet of
    many small chains presents the decision stage with one large batch
    — the workload the scalar per-chain floor could never amortise
    (DESIGN.md §2.10).  Decision content per run is identical to the
    single-chain paths (shared property tests via the fleet
    equivalence suite); ``part_flat`` flags merge participants by
    global arena cell.
    """
    reg = registry
    data = reg._data
    slots = reg.active_slots()
    R = len(slots)
    if R == 0:
        return _EMPTY_FLEET
    if params.passing_distance > params.viewing_path_length:
        raise LocalityViolation(
            f"passing distance {params.passing_distance} exceeds viewing "
            f"path length {params.viewing_path_length}")
    # one row gather instead of seven column gathers: the live rows are
    # snapshotted once and the columns are views into the copy (the
    # registry writes below never alias them), which matters on
    # churn-heavy fleets where this runs every round over small R
    rows = data[slots]
    cc = rows[:, COL_CHAIN]
    rr = rows[:, COL_ROBOT]
    dd = rows[:, COL_DIRN]
    mm = rows[:, COL_MODE]
    tt = rows[:, COL_TARGET]
    st = rows[:, COL_STEPS]
    ap = (rows[:, COL_AXY] != 0).astype(np.int64)

    bs = arena.base[cc]
    nn = arena.length[cc]
    c = arena.codes
    ids_flat = arena.ids
    index_flat = arena.index
    a = index_flat[bs + rr]
    v = params.viewing_path_length
    pd = params.passing_distance

    stop = np.zeros(R, dtype=np.int64)
    # Table 1.3 — merge participants
    if part_flat is not None:
        stop[part_flat[bs + a]] = _STOP_MERGE

    # nearest sequent / oncoming run ahead: one fleet-wide searchsorted
    # over the direction-split carrier key arrays
    is_f = dd == 1
    keys = bs + a
    fr = np.flatnonzero(is_f)
    br = np.flatnonzero(~is_f)
    fkeys = np.sort(keys[fr])
    bkeys = np.sort(keys[br])
    big = arena.span + v + 1
    seq = np.full(R, big, dtype=np.int64)
    onc = np.full(R, big, dtype=np.int64)
    seq[fr] = _fleet_nearest_ahead(keys[fr], bs[fr], nn[fr], fkeys, big)
    onc[fr] = _fleet_nearest_ahead(keys[fr], bs[fr], nn[fr], bkeys, big)
    seq[br] = _fleet_nearest_behind(keys[br], bs[br], nn[br], bkeys, big)
    onc[br] = _fleet_nearest_behind(keys[br], bs[br], nn[br], fkeys, big)
    has_seq = seq <= v
    has_onc = onc <= v

    # Table 1.1 — sequent run ahead, with the sequent guard
    if params.sequent_guard:
        guarded = has_onc & (seq >= onc)
    else:
        guarded = np.zeros(R, dtype=bool)
    stop[(stop == 0) & has_seq & ~guarded] = _STOP_SEQUENT

    # gather each run's walking-direction code window (R, v)
    offsets = np.arange(v, dtype=np.int64)
    d1 = is_f[:, None]
    local = np.where(d1, a[:, None] + offsets,
                     a[:, None] - 1 - offsets) % nn[:, None]
    W = c[bs[:, None] + local]
    W = np.where(d1 | (W < 0), W, W ^ 2)   # flip valid codes when walking -1

    # Table 1.2 — endpoint visible ahead (necessary-condition filter,
    # reference grammar on flagged candidates only — see _decide_numpy)
    if params.endpoint_guard:
        need = (stop == 0) & ~has_onc
    else:
        need = stop == 0
    if need.any():
        perp = (W >= 0) & ((W & 1) != ap[:, None])
        axis_par = (W >= 0) & ((W & 1) == ap[:, None])
        feature = np.zeros(R, dtype=bool)
        feature |= (perp[:, :-1] & (W[:, 1:] == W[:, :-1])).any(axis=1)
        if v >= 3:
            feature |= (perp[:, :-2] & axis_par[:, 1:-1]
                        & (W[:, 2:] == W[:, :-2])).any(axis=1)
        feature |= (W == -2).any(axis=1)
        k_eff = params.effective_k_max
        for r in np.flatnonzero(need & feature).tolist():
            if endpoint_visible_codes(W[r].tolist(), v, int(ap[r]), k_eff):
                stop[r] = _STOP_ENDPOINT

    alive = stop == 0

    # arrival bookkeeping: leaving passing/travel when on target
    m2 = mm.copy()
    t2 = tt.copy()
    arr_p = alive & (m2 == MODE_PASSING) & (t2 >= 0) & (t2 == rr)
    m2[arr_p] = MODE_NORMAL
    t2[arr_p] = -1
    arr_t = alive & (m2 == MODE_TRAVEL) & (((t2 >= 0) & (t2 == rr))
                                           | (st <= 0))
    m2[arr_t] = MODE_NORMAL
    t2[arr_t] = -1

    out_mode = np.full(R, MODE_NORMAL, dtype=np.int64)
    out_t = np.full(R, -1, dtype=np.int64)
    set_steps = np.zeros(R, dtype=bool)
    out_steps = np.zeros(R, dtype=np.int64)
    hop_has = np.zeros(R, dtype=bool)
    hop_vec = np.zeros((R, 2), dtype=np.int64)

    # run passing (Fig. 8 / Fig. 14): continue, then entry
    is_pass = alive & (m2 == MODE_PASSING)
    out_mode[is_pass] = MODE_PASSING
    out_t[is_pass] = t2[is_pass]
    rem = alive & ~is_pass
    enter = rem & (onc <= pd) & (m2 != MODE_INIT_CORNER)
    keep = enter & (m2 == MODE_TRAVEL) & (t2 >= 0)   # Fig. 14 settled target
    gather = enter & ~keep
    out_mode[enter] = MODE_PASSING
    out_t[keep] = t2[keep]
    out_t[gather] = ids_flat[
        bs[gather] + (a[gather] + onc[gather] * dd[gather]) % nn[gather]]
    rem &= ~enter

    # continue an operation already in progress (Fig. 11 b/c)
    trv = rem & (m2 == MODE_TRAVEL)
    out_mode[trv] = MODE_TRAVEL
    out_t[trv] = t2[trv]
    set_steps[trv] = True
    out_steps[trv] = st[trv] - 1
    rem &= ~trv

    # operation (c): corner-cut hop of a fresh Fig. 5(ii) run.  The
    # vectorised form of the scalar decision path's INIT_CORNER branch
    # (reference-equivalent by the shared property suite): hop when the
    # two edges incident to the anchor are perpendicular axis units.
    raw_prev = c[bs + (a - 1) % nn]
    initm = rem & (m2 == MODE_INIT_CORNER)
    rem &= ~initm
    if initm.any():
        u = c[bs + a]
        hopc = initm & (u >= 0) & (raw_prev >= 0) \
            & (((u ^ raw_prev) & 1) == 1)
        rows_c = np.flatnonzero(hopc)
        hop_has[rows_c] = True
        hop_vec[rows_c] = _DIR_TABLE[u[rows_c]] \
            + _DIR_TABLE[raw_prev[rows_c] ^ 2]
        # mode -> NORMAL, target cleared: the defaults

    # normal operation: (a) reshape or (b) travel
    c1 = W[:, 0]
    al2 = rem & (c1 >= 0) & (W[:, 1] == c1)
    al3 = al2 & (W[:, 2] == c1)
    braw = np.where(is_f, raw_prev, c[bs + a])
    behind = np.where(is_f & (braw >= 0), braw ^ 2, braw)
    hop3 = al3 & (behind >= 0) & (((behind ^ c1) & 1) == 1)
    hop_rows = np.flatnonzero(hop3)
    hop_has[hop_rows] = True
    hop_vec[hop_rows] = _DIR_TABLE[behind[hop_rows]] + _DIR_TABLE[c1[hop_rows]]
    opb = al2 & ~al3
    out_mode[opb] = MODE_TRAVEL
    out_t[opb] = ids_flat[bs[opb] + (a[opb] + 3 * dd[opb]) % nn[opb]]
    set_steps[opb] = True
    out_steps[opb] = params.travel_steps
    # al3-without-hop and non-aligned rows keep the defaults
    # (NORMAL, target cleared): the shared _CONTINUE decision

    # --- apply: terminations, state transitions, hop resolution -----------
    terminated: List[Tuple[int, int]] = []
    dead_rows = np.flatnonzero(stop != 0)
    if len(dead_rows):
        reg.stop_slots(slots[dead_rows], stop[dead_rows], round_index)
        terminated = list(zip(cc[dead_rows].tolist(),
                              stop[dead_rows].tolist()))

    live_rows = np.flatnonzero(alive)
    live_slots = slots[live_rows]
    data[live_slots, COL_MODE] = out_mode[live_rows]
    data[live_slots, COL_TARGET] = out_t[live_rows]
    step_rows = live_rows[set_steps[live_rows]]
    data[slots[step_rows], COL_STEPS] = out_steps[step_rows]

    # hop conflict resolution, grouped on the fleet-unique robot key
    hr = np.flatnonzero(hop_has)
    if len(hr) == 0:
        return FleetDecisions(terminated, _EMPTY_I64,
                              _EMPTY_I64.reshape(0, 2), _EMPTY_I64, {})
    gkey = keys[hr]
    order = np.argsort(gkey, kind="stable")
    hr = hr[order]
    rh = gkey[order]
    boundary = rh[1:] != rh[:-1]
    firsts = np.r_[True, boundary]
    lasts = np.r_[boundary, True]
    single = firsts & lasts
    pair = np.flatnonzero(firsts & ~lasts) # groups are at most 2 (capacity)
    accept = hr[single]
    conflicts: Dict[int, int] = {}
    if len(pair):
        agree = (hop_vec[hr[pair]] == hop_vec[hr[pair + 1]]).all(axis=1)
        for r in hr[pair[~agree]].tolist():
            ci = int(cc[r])
            conflicts[ci] = conflicts.get(ci, 0) + 1
        good = pair[agree]
        data[slots[hr[good]], COL_HOPS] += 1
        data[slots[hr[good + 1]], COL_HOPS] += 1
        accept = np.concatenate([accept, hr[good]])
    data[slots[hr[single]], COL_HOPS] += 1
    return FleetDecisions(terminated, keys[accept], hop_vec[accept],
                          cc[accept], conflicts)
