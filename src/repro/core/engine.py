"""The FSYNC round engine (reference implementation).

Executes the round pipeline of DESIGN.md §2.8: one snapshot, all
decisions from it, simultaneous movement, merging, run maintenance.
The merge detector is pluggable so the vectorised engine
(:mod:`repro.core.engine_vectorized`) can reuse the entire pipeline and
differ only in the hot inner loop.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.grid.lattice import Vec
from repro.core.algorithm import RunDecision, decide_run
from repro.core.chain import ClosedChain
from repro.core.config import Parameters
from repro.core.events import RoundReport, RunSnapshot, Snapshot, Trace
from repro.core.merges import MergePlan, plan_merges
from repro.core.patterns import MergePattern, RunStart, find_merge_patterns, run_start_decisions
from repro.core.runs import RunMode, RunRegistry, RunState, StopReason
from repro.core.view import ChainWindow
from repro.core import invariants

#: Signature of a merge-pattern detector: positions -> patterns.
MergeDetector = Callable[[Sequence[Vec], int], List[MergePattern]]


class Engine:
    """Drives one closed chain through FSYNC rounds.

    Parameters
    ----------
    chain:
        The chain to gather (mutated in place).
    params:
        Algorithm constants.
    merge_detector:
        Pattern detector; defaults to the pure-Python reference scanner.
    check_invariants:
        Verify model invariants after every round (slower; on in tests).
    trace:
        Optional :class:`Trace` receiving snapshots and reports.
    """

    def __init__(self, chain: ClosedChain, params: Parameters,
                 merge_detector: Optional[MergeDetector] = None,
                 check_invariants: bool = True,
                 trace: Optional[Trace] = None):
        self.chain = chain
        self.params = params
        self.registry = RunRegistry()
        self.round_index = 0
        self._detector: MergeDetector = merge_detector or find_merge_patterns
        self._check = check_invariants
        self.trace = trace

    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """Observable state at the current instant."""
        runs = tuple(
            RunSnapshot(r.run_id, r.robot_id, r.direction, r.mode.value, r.born_round)
            for r in self.registry.active_runs())
        return Snapshot(self.round_index, tuple(self.chain.positions),
                        tuple(self.chain.ids), runs)

    # ------------------------------------------------------------------
    def _select_moves(self, moves: Dict[int, Vec]) -> Dict[int, Vec]:
        """Scheduler hook: which computed moves actually execute.

        FSYNC executes everything; the SSYNC ablation engine
        (:mod:`repro.schedulers`) overrides this to model partial
        activation.
        """
        return moves

    # ------------------------------------------------------------------
    def step(self) -> RoundReport:
        """Execute one full FSYNC round and return its report."""
        chain, params, registry = self.chain, self.params, self.registry
        n0 = chain.n
        report = RoundReport(round_index=self.round_index, n_before=n0, n_after=n0,
                             active_runs=len(registry))
        if self.trace is not None:
            self.trace.record_snapshot(self.snapshot())
        pos_before = {rid: chain.position_of_id(rid) for rid in chain.ids} if self._check else {}

        ids = chain.ids
        # snapshot the (sparse) run placement once per round; the window
        # lookups in decide_run are the measured hot path
        run_dirs: Dict[int, Tuple[int, ...]] = {}
        for run in registry.active_runs():
            prev = run_dirs.get(run.robot_id, ())
            run_dirs[run.robot_id] = prev + (run.direction,)
        empty: Tuple[int, ...] = ()

        def lookup(robot_id: int, _table=run_dirs, _empty=empty):
            return _table.get(robot_id, _empty)

        # 1-2. merge plan ---------------------------------------------------
        if n0 >= 4:
            patterns = self._detector(chain.positions, params.effective_k_max)
            mplan = plan_merges(chain.positions, ids, params.effective_k_max,
                                patterns=patterns)
        else:
            mplan = MergePlan()
        report.merge_patterns = len(mplan.patterns)
        report.merge_conflicts = mplan.conflicts

        # 3. run decisions ----------------------------------------------------
        decisions: List[RunDecision] = []
        for run in registry.active_runs():
            idx = chain.index_of_id(run.robot_id)
            window = ChainWindow(chain, idx, params.viewing_path_length, lookup)
            decisions.append(decide_run(run, window, params, mplan.participants))

        # 4. run starts (every L-th round) -------------------------------------
        starts: List[Tuple[int, RunStart]] = []
        if self.round_index % params.start_interval == 0:
            for i in range(chain.n):
                rid = ids[i]
                if rid in mplan.participants:
                    continue
                window = ChainWindow(chain, i, params.viewing_path_length, lookup)
                for rs in run_start_decisions(window):
                    starts.append((rid, rs))

        # 5. resolve and apply hops --------------------------------------------
        moves: Dict[int, Vec] = dict(mplan.hops)
        runner_hops: Dict[int, List[Vec]] = {}
        for dec in decisions:
            if dec.hop is not None and dec.stop_reason is None:
                rid = dec.run.robot_id
                if rid not in mplan.participants:
                    runner_hops.setdefault(rid, []).append(dec.hop)
        for rid, hops in runner_hops.items():
            if len(set(hops)) == 1:
                moves[rid] = hops[0]
                for dec in decisions:
                    if dec.run.robot_id == rid and dec.hop is not None:
                        dec.run.hops += 1
            else:
                report.runner_hop_conflicts += 1
        moves = self._select_moves(moves)
        chain.apply_moves(moves)
        report.hops = len(moves)

        # 6. run terminations and mode transitions ------------------------------
        for dec in decisions:
            run = dec.run
            if dec.stop_reason is not None:
                registry.stop(run, dec.stop_reason, self.round_index)
                report.runs_terminated[dec.stop_reason] = \
                    report.runs_terminated.get(dec.stop_reason, 0) + 1
            else:
                if dec.mode_after is not None:
                    run.mode = dec.mode_after
                if dec.target_after_set:
                    run.target_id = dec.target_after
                elif dec.mode_after is RunMode.NORMAL:
                    run.target_id = None
                if dec.travel_steps_after is not None:
                    run.travel_steps_left = dec.travel_steps_after
                elif dec.mode_after is RunMode.TRAVEL and run.travel_steps_left <= 0:
                    run.travel_steps_left = params.travel_steps

        # 7. contraction (merging co-located chain neighbours) --------------------
        records = chain.contract_coincident(set(moves))
        report.merges = records
        removed = {r.removed_id for r in records}
        for run in registry.active_runs():
            if run.robot_id in removed:
                registry.stop(run, StopReason.RUNNER_REMOVED, self.round_index)
                report.runs_terminated[StopReason.RUNNER_REMOVED] = \
                    report.runs_terminated.get(StopReason.RUNNER_REMOVED, 0) + 1

        # 8. target-removal terminations (Table 1.4/1.5) ---------------------------
        for run in registry.active_runs():
            if run.target_id is not None and not chain.has_id(run.target_id):
                reason = (StopReason.PASSING_TARGET_REMOVED
                          if run.mode is RunMode.PASSING
                          else StopReason.TRAVEL_TARGET_REMOVED)
                registry.stop(run, reason, self.round_index)
                report.runs_terminated[reason] = \
                    report.runs_terminated.get(reason, 0) + 1

        # 9. move surviving runs one robot along their direction --------------------
        moved_pairs = []
        for run in registry.active_runs():
            nxt = chain.neighbor_id(run.robot_id, run.direction)
            registry.move(run, nxt)
            moved_pairs.append((nxt, run.robot_id))
        # contraction can push two same-direction runs onto one robot; a
        # robot cannot tell them apart, so the younger run dissolves.
        for run in registry.active_runs():
            twins = [r for r in registry.runs_on(run.robot_id)
                     if r.direction == run.direction]
            if len(twins) > 1:
                youngest = max(twins, key=lambda r: r.run_id)
                registry.stop(youngest, StopReason.DUPLICATE_DIRECTION,
                              self.round_index)
                report.runs_terminated[StopReason.DUPLICATE_DIRECTION] = \
                    report.runs_terminated.get(StopReason.DUPLICATE_DIRECTION, 0) + 1

        # 10. create the new runs decided in step 4 ----------------------------------
        for rid, rs in starts:
            if not chain.has_id(rid):
                continue
            mode = RunMode.INIT_CORNER if rs.kind == "ii" else RunMode.NORMAL
            created = registry.start(rid, rs.direction, rs.axis,
                                     self.round_index, mode=mode)
            if created is not None:
                report.runs_started += 1

        # 11. invariants and bookkeeping ----------------------------------------------
        report.n_after = chain.n
        report.active_runs = len(registry)
        if self._check:
            invariants.check_connectivity(chain)
            invariants.check_monotone_count(n0, chain.n)
            pos_after = {rid: chain.position_of_id(rid) for rid in chain.ids}
            invariants.check_hop_lengths(pos_before, pos_after)
            invariants.check_runs_alive(chain, registry)
            invariants.check_run_speed(moved_pairs)
        if self.trace is not None:
            self.trace.record_report(report)
        self.round_index += 1
        return report
