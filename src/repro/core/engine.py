"""The FSYNC round engine (reference implementation).

Executes the round pipeline of DESIGN.md §2.8: one snapshot, all
decisions from it, simultaneous movement, merging, run maintenance.
The merge detector and the run-start scanner are pluggable so the
vectorised engine (:mod:`repro.core.engine_vectorized`) can reuse the
entire pipeline and differ only in the hot inner loops.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.grid.lattice import Vec
from repro.core.algorithm import RunDecision, decide_run
from repro.core.chain import ClosedChain
from repro.core.config import Parameters
from repro.core.events import RoundReport, RunSnapshot, Snapshot, Trace
from repro.core.merges import MergePlan, plan_merges
from repro.core.patterns import MergePattern, RunStart, find_merge_patterns, run_start_decisions
from repro.core.runs import RunMode, RunRegistry, RunState, StopReason
from repro.core.view import ChainWindow
from repro.core import invariants

#: Shared empty plan for merge-free rounds (the common case).  Never
#: mutated: the engine only reads ``participants``/``hops``/``patterns``.
_EMPTY_MERGE_PLAN = MergePlan()

#: Signature of a merge-pattern detector: positions -> patterns.  A
#: detector with a truthy ``wants_edge_codes`` attribute additionally
#: receives the chain's cached edge codes as a ``codes`` keyword.
MergeDetector = Callable[[Sequence[Vec], int], List[MergePattern]]

#: Signature of a run-start scanner: chain -> (chain index, RunStart)
#: pairs in reference order (ascending index, direction +1 before -1).
StartScanner = Callable[[ClosedChain], List[Tuple[int, RunStart]]]


class Engine:
    """Drives one closed chain through FSYNC rounds.

    Parameters
    ----------
    chain:
        The chain to gather (mutated in place).
    params:
        Algorithm constants.
    merge_detector:
        Pattern detector; defaults to the pure-Python reference scanner.
    start_scanner:
        Bulk run-start scanner replacing the per-robot
        :func:`run_start_decisions` loop; defaults to the reference
        per-window path.  Must be behaviourally equivalent (the
        contract is property-tested, see DESIGN.md §2.8).
    check_invariants:
        Verify model invariants after every round (slower; on in tests).
    trace:
        Optional :class:`Trace` receiving snapshots and reports.
    """

    def __init__(self, chain: ClosedChain, params: Parameters,
                 merge_detector: Optional[MergeDetector] = None,
                 start_scanner: Optional[StartScanner] = None,
                 check_invariants: bool = True,
                 trace: Optional[Trace] = None):
        self.chain = chain
        self.params = params
        self.registry = RunRegistry()
        self.round_index = 0
        self._detector: MergeDetector = merge_detector or find_merge_patterns
        self._detector_wants_codes = bool(
            getattr(self._detector, "wants_edge_codes", False))
        self._start_scanner = start_scanner
        self._check = check_invariants
        self.trace = trace

    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """Observable state at the current instant."""
        runs = tuple(
            RunSnapshot(r.run_id, r.robot_id, r.direction, r.mode.value, r.born_round)
            for r in self.registry.active_runs())
        return Snapshot(self.round_index, tuple(self.chain.positions_view()),
                        tuple(self.chain.ids_view()), runs)

    # ------------------------------------------------------------------
    def _select_moves(self, moves: Dict[int, Vec]) -> Dict[int, Vec]:
        """Scheduler hook: which computed moves actually execute.

        FSYNC executes everything; the SSYNC ablation engine
        (:mod:`repro.schedulers`) overrides this to model partial
        activation.
        """
        return moves

    # ------------------------------------------------------------------
    def step(self) -> RoundReport:
        """Execute one full FSYNC round and return its report."""
        chain, params, registry = self.chain, self.params, self.registry
        round_index = self.round_index
        n0 = chain.n
        terminated: Dict[StopReason, int] = {}
        runner_hop_conflicts = 0
        runs_started = 0
        if self.trace is not None:
            self.trace.record_snapshot(self.snapshot())
        if self._check:
            # array snapshots for the hop-length invariant (the former
            # id -> position dicts made checking quadratic per gathering)
            ids_before = chain.ids_array().copy()
            pos_before = chain.positions_array().copy()

        ids = chain.ids_view()
        positions = chain.positions_view()
        index_map = chain.index_map()
        # run placement once per round, straight from the registry's
        # struct-of-arrays state: the robot_id -> directions lookup the
        # windows probe (missing robots yield None, which the window
        # treats as "no runs") and the carrier chain indices split by
        # run direction for the windows' bulk runs_ahead scans.
        active = registry.active_runs()
        lookup, fwd_carriers, bwd_carriers = registry.round_state(index_map)
        carriers = (fwd_carriers, bwd_carriers)

        # 1-2. merge plan ---------------------------------------------------
        if n0 >= 4:
            k_eff = params.effective_k_max
            if self._detector_wants_codes:
                patterns = self._detector(positions, k_eff,
                                          codes=chain.edge_codes(),
                                          codes_list=chain.edge_codes_list())
            else:
                patterns = self._detector(positions, k_eff)
            mplan = plan_merges(positions, ids, k_eff, patterns=patterns) \
                if patterns else _EMPTY_MERGE_PLAN
        else:
            mplan = _EMPTY_MERGE_PLAN

        # 3. run decisions ----------------------------------------------------
        # decide_run reads row-local snapshots (one bulk gather) instead
        # of the views' matrix-backed properties — the per-read NumPy
        # scalar tax of the SoA registry was the measured ~10% overhead
        # of this loop on mid-size chains (DESIGN.md §2.9)
        decisions: List[RunDecision] = []
        rows = registry.decision_rows() if active else []
        if active:
            # one window slides over all runners; every decision reads the
            # same pre-move snapshot, so re-anchoring is safe
            window = ChainWindow(chain, 0, params.viewing_path_length, lookup,
                                 carriers=carriers)
            participants = mplan.participants
            for row in rows:
                window.reanchor(index_map[row.robot_id])
                decisions.append(decide_run(row, window, params, participants))

        # 4. run starts (every L-th round) -------------------------------------
        starts: List[Tuple[int, RunStart]] = []
        if round_index % params.start_interval == 0:
            participants = mplan.participants
            if self._start_scanner is not None:
                for i, rs in self._start_scanner(chain):
                    rid = ids[i]
                    if rid not in participants:
                        starts.append((rid, rs))
            else:
                window = ChainWindow(chain, 0, params.viewing_path_length,
                                     lookup)
                for i in range(chain.n):
                    rid = ids[i]
                    if rid in participants:
                        continue
                    for rs in run_start_decisions(window.reanchor(i)):
                        starts.append((rid, rs))

        # 5-6. resolve hops; run terminations and mode transitions --------------
        # decisions are paired with `active` positionally; the shared
        # _CONTINUE decision carries no run reference.  State transitions
        # and hop collection fuse into one pass: run state never reads
        # the chain, so its order against the movement is immaterial.
        moves: Dict[int, Vec] = dict(mplan.hops)
        runner_hops: Dict[int, List[Tuple[RunState, Vec]]] = {}
        participants = mplan.participants
        for run, row, dec in zip(active, rows, decisions):
            stop = dec.stop_reason
            if stop is not None:
                registry.stop(run, stop, round_index)
                terminated[stop] = terminated.get(stop, 0) + 1
                continue
            hop = dec.hop
            robot_id = row.robot_id
            if hop is not None and robot_id not in participants:
                runner_hops.setdefault(robot_id, []).append((run, hop))
            mode_after = dec.mode_after
            if mode_after is not None:
                run.mode = mode_after
            if dec.target_after_set:
                run.target_id = dec.target_after
            elif mode_after is RunMode.NORMAL:
                run.target_id = None
            if dec.travel_steps_after is not None:
                run.travel_steps_left = dec.travel_steps_after
            elif mode_after is RunMode.TRAVEL and row.travel_steps_left <= 0:
                run.travel_steps_left = params.travel_steps
        for rid, pairs in runner_hops.items():
            if len({hop for _, hop in pairs}) == 1:
                moves[rid] = pairs[0][1]
                for r, _ in pairs:
                    r.hops += 1
            else:
                runner_hop_conflicts += 1
        moves = self._select_moves(moves)
        chain.apply_moves(moves)

        # 7. contraction (merging co-located chain neighbours) --------------------
        records = chain.contract_coincident(moves.keys())
        if records:
            # a run can only lose its carrier or target through this
            # round's contraction, so both checks are no-ops without one
            removed = {r.removed_id for r in records}
            for run in registry.active_runs():
                if run.robot_id in removed:
                    registry.stop(run, StopReason.RUNNER_REMOVED, round_index)
                    terminated[StopReason.RUNNER_REMOVED] = \
                        terminated.get(StopReason.RUNNER_REMOVED, 0) + 1

            # 8. target-removal terminations (Table 1.4/1.5) -----------------------
            for run in registry.active_runs():
                if run.target_id is not None and not chain.has_id(run.target_id):
                    reason = (StopReason.PASSING_TARGET_REMOVED
                              if run.mode is RunMode.PASSING
                              else StopReason.TRAVEL_TARGET_REMOVED)
                    registry.stop(run, reason, round_index)
                    terminated[reason] = terminated.get(reason, 0) + 1

        # 9. move surviving runs one robot along their direction --------------------
        moved_pairs = registry.advance_runs(chain.ids_view(), chain.index_map())
        # contraction can push two same-direction runs onto one robot; a
        # robot cannot tell them apart, so the younger run dissolves.
        for run in registry.crowded_runs():
            if not run.active:
                continue
            twins = [r for r in registry.runs_on(run.robot_id)
                     if r.direction == run.direction]
            if len(twins) > 1:
                youngest = max(twins, key=lambda r: r.run_id)
                registry.stop(youngest, StopReason.DUPLICATE_DIRECTION,
                              round_index)
                terminated[StopReason.DUPLICATE_DIRECTION] = \
                    terminated.get(StopReason.DUPLICATE_DIRECTION, 0) + 1

        # 10. create the new runs decided in step 4 ----------------------------------
        for rid, rs in starts:
            if not chain.has_id(rid):
                continue
            mode = RunMode.INIT_CORNER if rs.kind == "ii" else RunMode.NORMAL
            created = registry.start(rid, rs.direction, rs.axis,
                                     round_index, mode=mode)
            if created is not None:
                runs_started += 1

        # 11. invariants and bookkeeping ----------------------------------------------
        report = RoundReport(round_index=round_index, n_before=n0,
                             n_after=chain.n, hops=len(moves),
                             merge_patterns=len(mplan.patterns),
                             merges=records, runs_started=runs_started,
                             runs_terminated=terminated,
                             active_runs=len(registry),
                             merge_conflicts=mplan.conflicts,
                             runner_hop_conflicts=runner_hop_conflicts)
        if self._check:
            invariants.check_connectivity(chain)
            invariants.check_monotone_count(n0, chain.n)
            invariants.check_hop_lengths_arrays(
                ids_before, pos_before,
                chain.ids_array(), chain.positions_array())
            invariants.check_runs_alive(chain, registry)
            invariants.check_run_speed(chain, moved_pairs)
        if self.trace is not None:
            self.trace.record_report(report)
        self.round_index += 1
        return report
