"""The fleet kernel: many chains per round in shared arrays.

Fourth execution tier (DESIGN.md §2.10).  The kernel engine
(:mod:`repro.core.engine_kernel`) runs one chain's round on arrays but
hits a per-chain Python floor on small chains: at n ≈ 60 only a
handful of runs are live, so every round pays scalar-loop and
dispatch costs that arrays cannot amortise.  :class:`FleetKernel`
advances an entire batch of chains round-for-round inside one process
instead: all per-robot state lives in one :class:`~repro.core.arena.ChainArena`,
all per-run state in one chain-tagged
:class:`~repro.core.runs.RunRegistry`, and every pipeline stage —
merge detection, run decisions, movement, termination bookkeeping,
run advancement — executes fleet-wide.  A fleet of 256 small chains
presents the decision stage with thousands of runs per round, which
keeps it on the NumPy path that the per-chain engine could never
reach.

Per-chain results are **bit-identical** to running each chain through
``Simulator(engine="kernel")``: same rounds, same final positions,
same per-round :class:`~repro.core.events.RoundReport` content
(property-tested in ``tests/test_fleet_kernel.py``).  Even the rare
sub-cases run fleet-wide: merge planning lifts over global cells,
``INIT_CORNER`` corner-cuts vectorise inline (the scalar decision
path's direct form), and only the per-merge-*event* survivor fold and
the endpoint-grammar candidates drop to Python — both bounded by
actual occurrences, not by fleet size.

Scheduling: FSYNC only (the fleet exists for batch throughput; SSYNC
ablations go through the per-chain engines).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.grid.lattice import Vec
from repro.core.arena import ChainArena
from repro.core.chain import CODE_TO_DIR, ClosedChain, MergeRecord
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.decisions_vectorized import decide_and_apply_fleet
from repro.core.events import RoundReport
from repro.core.patterns import RunStart
from repro.core.runs import (
    MODE_INIT_CORNER,
    MODE_NORMAL,
    MODE_PASSING,
    RunRegistry,
    StopReason,
)
from repro.core.simulator import GatheringResult
from repro.core import invariants
from repro.errors import InvariantViolation

_STOP_RUNNER_REMOVED = StopReason.RUNNER_REMOVED.value
_STOP_PASSING_TARGET = StopReason.PASSING_TARGET_REMOVED.value
_STOP_TRAVEL_TARGET = StopReason.TRAVEL_TARGET_REMOVED.value
_STOP_DUPLICATE = StopReason.DUPLICATE_DIRECTION.value

_CODE_TO_DIR = CODE_TO_DIR

#: Direction-code -> unit-vector table for the fleet planner.
_DIR_TABLE = np.array(CODE_TO_DIR, dtype=np.int64)


def _fleet_merge_candidates(arena: ChainArena, eligible: np.ndarray,
                            k_max: int):
    """Merge-pattern candidates of every eligible chain, one RLE pass.

    Fleet rendering of the vectorised detector's run-length scan
    (:func:`repro.core.engine_vectorized._merge_patterns_rle`): run
    boundaries fall out of one ``codes[cell] != codes[prev]``
    comparison over the arena topology and the per-run spike/U-shape
    conditions are elementwise masks over the fleet-wide run arrays —
    no Python per chain, no pattern objects.  Returns ``(chain,
    first_black_local, k, direction_code)`` arrays (spikes then longs;
    the planner's decision content is order-independent), or ``None``
    when nothing fired.
    """
    cells, cell_chain, prev_pos, next_pos = arena.topology()
    if len(cells) == 0:
        return None
    cv = arena.codes[cells]
    starts_pos = np.flatnonzero(cv != cv[prev_pos])
    if len(starts_pos) == 0:
        return None
    run_chain = cell_chain[starts_pos]
    keep = eligible[run_chain]
    starts_pos = starts_pos[keep]
    if len(starts_pos) == 0:
        return None
    run_chain = run_chain[keep]
    run_codes = cv[starts_pos]
    local = cells[starts_pos] - arena.base[run_chain]
    n_of = arena.length[run_chain]

    # per-chain segmentation of the fleet-wide run list
    m = len(starts_pos)
    idx = np.arange(m, dtype=np.int64)
    first = np.r_[True, run_chain[1:] != run_chain[:-1]]
    seg_first = np.flatnonzero(first)
    seg_last = np.r_[seg_first[1:] - 1, m - 1]
    seg_id = np.cumsum(first) - 1
    prev_run = idx - 1
    prev_run[seg_first] = seg_last
    next_run = idx + 1
    next_run[seg_last] = seg_first
    runs_in_chain = (seg_last - seg_first + 1)[seg_id]

    prev_codes = run_codes[prev_run]
    next_codes = run_codes[next_run]
    k = (local[next_run] - local) % n_of + 1

    valid_prev = prev_codes >= 0
    valid = run_codes >= 0
    spike = valid_prev & valid & (run_codes == (prev_codes + 2) % 4)
    longm = (runs_in_chain >= 3) & valid_prev & valid \
        & (next_codes == (prev_codes + 2) % 4) \
        & (((run_codes ^ prev_codes) & 1) == 1) \
        & (k <= k_max) & (k + 2 <= n_of)

    sp = np.flatnonzero(spike)
    lg = np.flatnonzero(longm)
    if len(sp) == 0 and len(lg) == 0:
        return None
    pch = np.concatenate([run_chain[sp], run_chain[lg]])
    fb = np.concatenate([local[sp], local[lg]])
    kk = np.concatenate([np.ones(len(sp), dtype=np.int64), k[lg]])
    dcode = np.concatenate([run_codes[sp], next_codes[lg]])
    return pch, fb, kk, dcode


class FleetMergePlan:
    """One round's merge plan for the whole fleet (array form).

    Decision content per chain is identical to
    :func:`repro.core.merges.plan_merges_arrays` — short-pattern
    priority, Fig. 3 overlap resolution — computed fleet-wide over
    global arena cells.
    """

    __slots__ = ("part_flat", "hop_gidx", "hop_vec", "hop_chain",
                 "exec_count", "conflicts")

    def __init__(self, part_flat, hop_gidx, hop_vec, hop_chain, exec_count,
                 conflicts):
        #: participant mask by global arena cell
        self.part_flat = part_flat
        #: hopping blacks (global cells) and their (m, 2) hop vectors
        self.hop_gidx = hop_gidx
        self.hop_vec = hop_vec
        #: owning chain per hop
        self.hop_chain = hop_chain
        #: executing-pattern count per chain (round-report field)
        self.exec_count = exec_count
        #: chain -> frozen-robot count (impossible-overlap defensive path)
        self.conflicts = conflicts


def _fleet_plan_merges(arena: ChainArena, pch: np.ndarray, fb: np.ndarray,
                       kk: np.ndarray, dcode: np.ndarray) -> FleetMergePlan:
    """Fleet-wide merge planning over global cells.

    Lifts :func:`repro.core.merges._plan_arrays_np` to the arena:
    black expansion, the per-black minimum pattern length
    (``np.minimum.at`` over the span), white-of-shorter-black
    cancellation and the Fig. 3a/3b hop resolution all run once for
    every pattern of every chain.  Segment bases keep chains disjoint,
    so the per-chain results match the per-chain planner exactly.
    """
    base = arena.base
    n = arena.length[pch]
    b = base[pch]
    m = len(pch)
    rep = np.repeat(np.arange(m, dtype=np.int64), kk)
    offs = np.arange(len(rep), dtype=np.int64) \
        - np.repeat(np.cumsum(kk) - kk, kk)
    black_g = b[rep] + (fb[rep] + offs) % n[rep]

    min_k = np.full(arena.span, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(min_k, black_g, kk[rep])
    w0 = b + (fb - 1) % n
    w1 = b + (fb + kk) % n
    keep = ~((min_k[w0] < kk) | (min_k[w1] < kk))

    part_flat = np.zeros(arena.span, dtype=bool)
    exec_count = np.bincount(pch[keep], minlength=len(arena.chains))
    if not keep.any():
        e = np.empty(0, dtype=np.int64)
        return FleetMergePlan(part_flat, e, e.reshape(0, 2), e,
                              exec_count, {})
    keep_rep = keep[rep]
    bidx = black_g[keep_rep]
    part_flat[bidx] = True
    part_flat[w0[keep]] = True
    part_flat[w1[keep]] = True

    # deduplicate (black cell, hop direction) pairs, then resolve each
    # robot by its distinct hop-direction count (Fig. 3a/3b)
    key = np.unique(bidx * 4 + dcode[rep][keep_rep])
    idx_u = key >> 2
    code_u = key & 3
    first = np.flatnonzero(np.r_[True, idx_u[1:] != idx_u[:-1]])
    counts = np.diff(np.append(first, len(idx_u)))

    conflicts: Dict[int, int] = {}
    single = first[counts == 1]
    hop_g = [idx_u[single]]
    hop_v = [_DIR_TABLE[code_u[single]]]
    double = first[counts == 2]
    if len(double):
        ca, cb = code_u[double], code_u[double + 1]
        perp = ((ca ^ cb) & 1) == 1
        hop_g.append(idx_u[double[perp]])
        hop_v.append(_DIR_TABLE[ca[perp]] + _DIR_TABLE[cb[perp]])
        for cell in idx_u[double[~perp]].tolist():   # impossible; freeze
            ci = int(np.searchsorted(base, cell, side="right")) - 1
            conflicts[ci] = conflicts.get(ci, 0) + 1
    for cell in idx_u[first[counts > 2]].tolist():
        ci = int(np.searchsorted(base, cell, side="right")) - 1
        conflicts[ci] = conflicts.get(ci, 0) + 1
    hop_gidx = np.concatenate(hop_g)
    hop_chain = np.searchsorted(base, hop_gidx, side="right") - 1
    return FleetMergePlan(part_flat, hop_gidx, np.concatenate(hop_v),
                          hop_chain, exec_count, conflicts)


def _fleet_run_starts(arena: ChainArena
                      ) -> List[Tuple[int, int, "RunStart"]]:
    """Every live chain's Fig. 5 run-start decisions, one fleet pass.

    Fleet rendering of :func:`repro.core.engine_vectorized.scan_run_starts`:
    the rolled-code comparisons become gathers through the arena
    topology, and only the (rare) fired candidates are refined in
    Python against their chain's cached code list.  Returns ``(chain,
    robot_id, RunStart)`` triples in reference order — ascending chain,
    ascending index, direction +1 before -1 — with the robot captured
    at snapshot time (indices shift under the later contraction).
    """
    cells, cell_chain, prev_pos, next_pos = arena.topology()
    if len(cells) == 0:
        return []
    codes = arena.codes
    c0 = codes[cells]
    cm1 = c0[prev_pos]
    cm2 = cm1[prev_pos]
    cp1 = c0[next_pos]

    v0 = c0 >= 0
    vm1 = cm1 >= 0
    perp = ((c0 ^ cm1) & 1) == 1
    base_p = v0 & (cp1 == c0) & vm1 & perp
    base_m = vm1 & (cm2 == cm1) & v0 & perp

    fired = np.flatnonzero(base_p | base_m)
    if len(fired) == 0:
        return []
    # candidate refinement runs in Python (rare hits): pre-gather the
    # per-candidate scalars as lists and read codes straight off one
    # flat list rendering, so the loop never touches NumPy or chains
    cl = arena.codes.tolist()
    f_cells = cells[fired]
    f_chain = cell_chain[fired].tolist()
    f_base = arena.base[cell_chain[fired]].tolist()
    f_n = arena.length[cell_chain[fired]].tolist()
    f_cell = f_cells.tolist()
    f_rid = arena.ids[f_cells].tolist()
    f_p = base_p[fired].tolist()
    f_m = base_m[fired].tolist()
    starts: List[Tuple[int, int, RunStart]] = []
    for ci, b, n, gcell, rid, bp, bm in zip(f_chain, f_base, f_n, f_cell,
                                            f_rid, f_p, f_m):
        i = gcell - b
        if bp:
            g1 = cl[b + (i - 1) % n]       # code behind the anchor
            g2 = cl[b + (i - 2) % n]
            if g2 == g1:
                starts.append((ci, rid, RunStart(1, "ii", _CODE_TO_DIR[cl[gcell]])))
            elif g2 >= 0 and ((g2 ^ g1) & 1) and cl[b + (i - 3) % n] == g1:
                starts.append((ci, rid, RunStart(1, "i", _CODE_TO_DIR[cl[gcell]])))
        if bm:
            g1 = cl[gcell]                 # code "behind" toward +1
            g2 = cl[b + (i + 1) % n]
            axis = _CODE_TO_DIR[cl[b + (i - 1) % n] ^ 2]
            if g2 == g1:
                starts.append((ci, rid, RunStart(-1, "ii", axis)))
            elif g2 >= 0 and ((g2 ^ g1) & 1) and cl[b + (i + 2) % n] == g1:
                starts.append((ci, rid, RunStart(-1, "i", axis)))
    return starts


class FleetKernel:
    """Advance a fleet of chains round-for-round in shared arrays.

    Parameters
    ----------
    chains:
        Fleet members — :class:`ClosedChain` instances (adopted and
        mutated in place) or position sequences.
    params:
        Algorithm constants shared by the fleet.
    check_invariants:
        Per-chain model invariants after every round (slow; the
        property suite runs with it on).
    keep_reports:
        Build per-chain :class:`RoundReport` lists.  Off for pure
        throughput sweeps — the fleet then skips all per-chain report
        bookkeeping.
    validate_initial:
        Enforce the paper's initial-configuration assumptions.
    """

    def __init__(self, chains: Sequence[Union[ClosedChain, Sequence[Vec]]],
                 params: Parameters = DEFAULT_PARAMETERS,
                 check_invariants: bool = False,
                 keep_reports: bool = True,
                 validate_initial: bool = True):
        objs: List[ClosedChain] = []
        for c in chains:
            if not isinstance(c, ClosedChain):
                c = ClosedChain(c, require_disjoint_neighbors=validate_initial)
            elif validate_initial:
                c.validate(initial=True)
            objs.append(c)
        self.params = params
        self.arena = ChainArena(objs)
        self.registry = RunRegistry()
        self.registry.keep_stopped = False   # never read; skip view builds
        self.round_index = 0
        self._check = check_invariants
        self._keep = keep_reports
        n_chains = len(objs)
        self._n0 = [c.n for c in objs]
        self.reports: List[List[RoundReport]] = [[] for _ in range(n_chains)]
        self.results: List[Optional[GatheringResult]] = [None] * n_chains
        #: chains whose Python-side id list/index awaits _sync_ids
        self._ids_dirty: set = set()

    # ------------------------------------------------------------------
    def run(self, max_rounds: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> List[GatheringResult]:
        """Gather the whole fleet; per-chain results in input order.

        Each chain retires exactly when its own
        ``Simulator(engine="kernel").run()`` would stop: the 2×2
        termination box observed at the start of a round, or its
        per-chain round budget (``max_rounds`` when given, the
        parameters' linear stall budget otherwise).  ``progress`` is
        called as ``progress(completed, total)`` whenever chains
        retire.
        """
        arena = self.arena
        total = len(arena.chains)
        if total == 0:
            return []
        if max_rounds is not None:
            budgets = np.full(total, max_rounds, dtype=np.int64)
        else:
            budgets = np.array([self.params.round_budget(n)
                                for n in self._n0], dtype=np.int64)
        t0 = time.perf_counter()
        done = 0
        while True:
            live = arena.live_indices()
            if len(live) == 0:
                break
            live_ids, gathered = arena.gathered_mask()
            retire = gathered | (self.round_index >= budgets[live_ids])
            if retire.any():
                for ci, g in zip(live_ids[retire].tolist(),
                                 gathered[retire].tolist()):
                    self._retire(int(ci), bool(g), t0)
                    done += 1
                if progress is not None:
                    progress(done, total)
                if retire.all():
                    continue
            self._step_round()
            self.round_index += 1
        return list(self.results)

    # ------------------------------------------------------------------
    def _retire(self, ci: int, gathered: bool, t0: float) -> None:
        """Remove a finished chain from the fleet and record its result."""
        self._sync_ids(ci)
        registry = self.registry
        slots = registry.active_slots()
        if len(slots):
            mine = slots[registry.chain_col[slots] == ci]
            if len(mine):
                registry.drop_slots(mine)
        self.arena.retire(ci)
        chain = self.arena.chains[ci]
        self.results[ci] = GatheringResult(
            gathered=gathered,
            rounds=self.round_index,
            initial_n=self._n0[ci],
            final_n=chain.n,
            final_positions=chain.positions,
            params=self.params,
            reports=self.reports[ci],
            trace=None,
            stalled=not gathered,
            wall_time=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    def _step_round(self) -> None:
        """One FSYNC round for every live chain (kernel-engine order)."""
        arena, registry, params = self.arena, self.registry, self.params
        round_index = self.round_index
        keep = self._keep
        base = arena.base
        chains = arena.chains
        live = arena.live_indices()
        live_list = live.tolist()
        n_before = dict(zip(live_list, arena.length[live].tolist()))
        if self._check:
            for ci in list(self._ids_dirty):
                self._sync_ids(ci)
            before = {ci: (chains[ci].ids_array().copy(),
                           chains[ci].positions_array().copy())
                      for ci in live_list}

        # (chain, stop-reason code) tallies for the round reports
        terminated: List[Tuple[int, int]] = []

        # 1-2. merge plan: fleet-wide RLE detection and planning (the
        # kernel engine's n >= 4 gate applies per chain) --------------------
        eligible = np.zeros(len(chains), dtype=bool)
        eligible[live] = arena.length[live] >= 4
        cand = _fleet_merge_candidates(arena, eligible,
                                       params.effective_k_max) \
            if eligible.any() else None
        plan: Optional[FleetMergePlan] = None
        part_flat: Optional[np.ndarray] = None
        if cand is not None:
            plan = _fleet_plan_merges(arena, *cand)
            part_flat = plan.part_flat

        # 3, 5-6. run decisions, fused with their registry application ------
        dec = decide_and_apply_fleet(arena, registry, params, part_flat,
                                     round_index)
        terminated.extend(dec.terminated)

        # 4. run starts (every L-th round; reads only the snapshot codes) ---
        starts: List[Tuple[int, int, RunStart]] = []
        if round_index % params.start_interval == 0:
            scanned = _fleet_run_starts(arena)
            if part_flat is None:
                starts = scanned
            else:
                index_flat = arena.index
                starts = [(ci, rid, rs) for ci, rid, rs in scanned
                          if not part_flat[base[ci]
                                           + index_flat[base[ci] + rid]]]

        # 6'. simultaneous movement: merge hops + accepted runner hops ------
        if plan is not None and len(plan.hop_gidx):
            move_g = np.concatenate(
                [plan.hop_gidx, np.asarray(dec.move_gidx, dtype=np.int64)])
            move_v = np.concatenate(
                [plan.hop_vec,
                 np.asarray(dec.move_deltas, dtype=np.int64).reshape(-1, 2)])
            move_c = np.concatenate(
                [plan.hop_chain, np.asarray(dec.move_chain, dtype=np.int64)])
        else:
            move_g = np.asarray(dec.move_gidx, dtype=np.int64)
            move_v = np.asarray(dec.move_deltas, dtype=np.int64).reshape(-1, 2)
            move_c = np.asarray(dec.move_chain, dtype=np.int64)
        zero_cells = arena.apply_moves(move_g, move_v, move_c)

        # 7-8. contraction + run/target removal, fleet-wide -----------------
        merges_by_chain: Dict[int, List[MergeRecord]] = {}
        if len(zero_cells):
            self._contract_fleet(zero_cells, move_g, move_c,
                                 merges_by_chain, terminated)

        # 9. move surviving runs one robot along their direction ------------
        moved, crowded = registry.advance_fleet(
            base, arena.length, arena.ids, arena.index,
            collect_moved=self._check)
        # contraction can push two same-direction runs onto one robot; a
        # robot cannot tell them apart, so the younger run dissolves.
        if crowded:
            terminated.extend(self._dissolve_duplicates(round_index))

        # 10. create the new runs decided in step 4 -------------------------
        started: Dict[int, int] = {}
        if starts:
            self._apply_starts(starts, round_index, started)

        # 11. reports and invariants ----------------------------------------
        if keep:
            self._build_reports(live_list, n_before, plan, merges_by_chain,
                                move_c, terminated, dec.conflicts, started,
                                round_index)
        if self._check:
            self._check_invariants(live_list, before, moved)

    # ------------------------------------------------------------------
    def _sync_ids(self, ci: int) -> None:
        """Rebuild a chain's Python-side id list/index from the arena.

        The fleet contraction defers this O(n) per-chain work (the flat
        tables are already exact); it is required only where per-chain
        Python state is actually read — retirement, invariant checking
        and the wrap-around contraction fallback.
        """
        if ci not in self._ids_dirty:
            return
        chain = self.arena.chains[ci]
        b = int(self.arena.base[ci])
        n = int(self.arena.length[ci])
        chain._ids = self.arena.ids[b:b + n].tolist()
        chain._rebuild_index()
        self._ids_dirty.discard(ci)

    # ------------------------------------------------------------------
    def _contract_fleet(self, zero_cells: np.ndarray, move_g: np.ndarray,
                        move_c: np.ndarray,
                        merges_by_chain: Dict[int, List[MergeRecord]],
                        terminated: List[Tuple[int, int]]) -> None:
        """Kernel steps 7-8 fleet-wide: merge coincident neighbours and
        terminate the runs that lost their carrier or target.

        ``zero_cells`` are the round's coincident neighbour pairs (one
        zero edge each, ascending).  Blocks of co-located robots fold
        in Python per merge *event* (bounded by robots removed — the
        reference scan order and survivor rule exactly); everything
        structural — dropping merged robots, compacting each segment
        prefix, deleting the zero edge codes, refreshing the id →
        index table — is one batch of array passes over the
        contracting chains only.  A chain whose *wrap* edge went zero
        (robot n-1 meets robot 0) resolves after its interior blocks:
        once consecutive survivors are distinct, the reference wrap
        loop performs at most one merge, done here with a few array
        assignments per wrap chain.
        """
        arena = self.arena
        registry = self.registry
        base = arena.base
        length = arena.length
        chains = arena.chains
        pos = arena.pos
        ids_flat = arena.ids
        keep_recs = self._keep
        round_index = self.round_index

        zch = np.searchsorted(base, zero_cells, side="right") - 1
        wrap = (zero_cells - base[zch]) == length[zch] - 1
        if wrap.any():
            # the wrap pair resolves last (reference scan order); its
            # chain's interior zeros still take the batch path below
            wrap_cis = np.unique(zch[wrap])
            zf = zero_cells[~wrap]
            zcf = zch[~wrap]
        else:
            wrap_cis = None
            zf, zcf = zero_cells, zch

        # moved-robot membership in id space (survivor rule input)
        moved_flat = np.zeros(arena.span, dtype=bool)
        if len(move_g):
            moved_flat[base[move_c] + ids_flat[move_g]] = True

        removed_keys: List[int] = []
        contracted: List[int] = []

        if len(zf):
            # --- survivor fold, one Python step per merge event --------
            # every per-event scalar is pre-gathered into plain lists so
            # the (bounded-by-robots-removed) loop never touches NumPy
            surv_cells: List[int] = []
            surv_vals: List[int] = []
            zlist = zf.tolist()
            zchl = zcf.tolist()
            bases_l = base[zcf].tolist()
            top_ids = ids_flat[zf].tolist()
            nxt_ids = ids_flat[zf + 1].tolist()
            top_mv = moved_flat[base[zcf] + ids_flat[zf]].tolist()
            nxt_mv = moved_flat[base[zcf] + ids_flat[zf + 1]].tolist()
            if keep_recs:
                px = pos[zf, 0].tolist()
                py = pos[zf, 1].tolist()
            m = len(zlist)
            i = 0
            while i < m:
                j = i + 1
                while j < m and zlist[j] == zlist[j - 1] + 1 \
                        and zchl[j] == zchl[i]:
                    j += 1
                ci = zchl[i]
                bb = bases_l[i]
                e0 = zlist[i]
                s = top_ids[i]
                s_mv = top_mv[i]
                first_id = s
                if keep_recs:
                    recs = merges_by_chain.setdefault(ci, [])
                    p = (px[i], py[i])
                for ev in range(i, j):
                    rid = nxt_ids[ev]
                    r_mv = nxt_mv[ev]
                    keep_first = s_mv if s_mv != r_mv else s < rid
                    if keep_first:
                        removed = rid
                    else:
                        removed = s
                        s = rid
                        s_mv = r_mv
                    if keep_recs:
                        recs.append(MergeRecord(s, removed, p))
                    removed_keys.append(bb + removed)
                if s != first_id:
                    surv_cells.append(e0)
                    surv_vals.append(s)
                i = j

            if surv_cells:
                ids_flat[surv_cells] = surv_vals

            # --- batch segment compaction over the contracting chains --
            zero_flag = np.zeros(arena.span, dtype=bool)
            zero_flag[zf] = True
            cis = np.unique(zcf)
            lens_old = length[cis]
            total = int(lens_old.sum())
            rep = np.repeat(np.arange(len(cis), dtype=np.int64), lens_old)
            within = np.arange(total, dtype=np.int64) - \
                np.repeat(np.cumsum(lens_old) - lens_old, lens_old)
            cell = base[cis][rep] + within
            seg_first = within == 0
            # a robot merges away exactly when the edge before it is zero
            drop = zero_flag[cell - 1]
            drop[seg_first] = False
            shift = np.cumsum(drop) - drop
            shift -= np.repeat(shift[seg_first], lens_old)
            kr = np.flatnonzero(~drop)
            dst = base[cis][rep[kr]] + within[kr] - shift[kr]
            pos[dst] = pos[cell[kr]]
            ids_flat[dst] = ids_flat[cell[kr]]
            # the fused edge keeps the following edge's code: deleting
            # the -1 entries is exactly the reference np.delete carry
            ke = np.flatnonzero(~zero_flag[cell])
            eshift = np.cumsum(zero_flag[cell]) - zero_flag[cell]
            eshift -= np.repeat(eshift[seg_first], lens_old)
            arena.codes[base[cis][rep[ke]] + within[ke] - eshift[ke]] = \
                arena.codes[cell[ke]]
            # id -> index table: removed ids out, survivors re-ranked
            arena.index[np.asarray(removed_keys, dtype=np.int64)] = -1
            arena.index[base[cis][rep[kr]] + ids_flat[dst]] = \
                within[kr] - shift[kr]
            length[cis] = lens_old - np.bincount(
                zcf, minlength=len(chains))[cis]
            # per-chain Python state: views re-point now, the O(n) id
            # list/dict rebuild defers to _sync_ids
            for ci, nl in zip(cis.tolist(), length[cis].tolist()):
                c = chains[ci]
                b = int(base[ci])
                c._arr = pos[b:b + nl]
                buf = arena.codes[b:b + nl]
                c._codes_buf = buf
                c._codes_cache = buf
                c._codes_view_cache = None
                c._codes_list_cache = None
                c._pos_cache = None
                c._invalid_edges = 0
                self._ids_dirty.add(ci)
            arena._topo_dirty = True
            contracted.extend(cis.tolist())

        # --- wrap-around pairs: after the interior collapse no two
        # consecutive survivors coincide, so the reference wrap loop
        # performs at most one merge — the tail survivor against the
        # head survivor — resolved here with a handful of array ops
        # per wrap chain instead of a full rescan ------------------------
        if wrap_cis is not None:
            codes = arena.codes
            for ci in wrap_cis.tolist():
                b = int(base[ci])
                nl = int(length[ci])
                if nl <= 1:
                    continue
                t_cell = b + nl - 1
                t_id = int(ids_flat[t_cell])
                h_id = int(ids_flat[b])
                a_m = moved_flat[b + t_id]
                b_m = moved_flat[b + h_id]
                keep_first = a_m if a_m != b_m else t_id < h_id
                p = (int(pos[t_cell, 0]), int(pos[t_cell, 1]))
                if keep_first:
                    removed = h_id
                    # drop the head entry: the segment shifts left and
                    # the new wrap edge inherits the old lead edge
                    pos[b:t_cell] = pos[b + 1:t_cell + 1].copy()
                    ids_flat[b:t_cell] = ids_flat[b + 1:t_cell + 1].copy()
                    lead = int(codes[b])
                    codes[b:t_cell - 1] = codes[b + 1:t_cell].copy()
                    codes[t_cell - 1] = lead
                    idx_seg = arena.index[b:b + int(arena.n0[ci])]
                    idx_seg[:] = -1
                    idx_seg[ids_flat[b:t_cell]] = \
                        np.arange(nl - 1, dtype=np.int64)
                    if keep_recs:
                        merges_by_chain.setdefault(ci, []).append(
                            MergeRecord(t_id, h_id, p))
                else:
                    removed = t_id
                    # drop the tail entry: the zero wrap edge vanishes
                    # and everything else stays in place
                    arena.index[b + t_id] = -1
                    if keep_recs:
                        merges_by_chain.setdefault(ci, []).append(
                            MergeRecord(h_id, t_id, p))
                removed_keys.append(b + removed)
                length[ci] = nl - 1
                c = chains[ci]
                c._arr = pos[b:b + nl - 1]
                buf = codes[b:b + nl - 1]
                c._codes_buf = buf
                c._codes_cache = buf
                c._codes_view_cache = None
                c._codes_list_cache = None
                c._pos_cache = None
                c._invalid_edges = 0
                self._ids_dirty.add(ci)
                contracted.append(ci)
            arena._topo_dirty = True

        if not removed_keys:
            return

        # --- Table 1.3 runner loss: runs whose carrier merged away -----
        removed_arr = np.asarray(removed_keys, dtype=np.int64)
        slots = registry.active_slots()
        if len(slots):
            cc = registry.chain_col[slots]
            dead = np.flatnonzero(
                np.isin(base[cc] + registry.robot[slots], removed_arr))
            if len(dead):
                registry.stop_slots(
                    slots[dead],
                    np.full(len(dead), _STOP_RUNNER_REMOVED, np.int64),
                    round_index)
                for ci in cc[dead].tolist():
                    terminated.append((ci, _STOP_RUNNER_REMOVED))

        # --- Table 1.4/1.5: passing/travel targets merged away ---------
        slots = registry.active_slots()
        if len(slots):
            cc = registry.chain_col[slots]
            rows = np.flatnonzero(np.isin(cc, np.asarray(contracted)))
            if len(rows):
                targets = registry.target[slots[rows]]
                has_t = targets >= 0
                gone = has_t.copy()
                gone[has_t] = arena.index[
                    base[cc[rows[has_t]]] + targets[has_t]] < 0
                hit = rows[np.flatnonzero(gone)]
                if len(hit):
                    hs = slots[hit]
                    reasons = np.where(
                        registry.mode_code[hs] == MODE_PASSING,
                        _STOP_PASSING_TARGET, _STOP_TRAVEL_TARGET)
                    registry.stop_slots(hs, reasons, round_index)
                    for ci, code in zip(cc[hit].tolist(), reasons.tolist()):
                        terminated.append((ci, int(code)))

    # ------------------------------------------------------------------
    def _dissolve_duplicates(self, round_index: int
                             ) -> List[Tuple[int, int]]:
        """Duplicate-direction sweep over the fleet registry.

        Mirrors the kernel engine's crowded-run loop with robots keyed
        fleet-uniquely (``base + robot_id``); groups never span chains,
        so the per-chain dissolution order matches exactly.
        """
        registry = self.registry
        arena = self.arena
        slots = registry.active_slots()
        cc = registry.chain_col[slots]
        keys = arena.base[cc] + registry.robot[slots]
        by_robot: Dict[int, List[int]] = {}
        for s, k in zip(slots.tolist(), keys.tolist()):
            by_robot.setdefault(k, []).append(s)
        crowded = sorted(s for group in by_robot.values()
                         if len(group) > 1 for s in group)
        key_of = dict(zip(slots.tolist(), keys.tolist()))
        dirn = registry.dirn
        stopped: set = set()
        out: List[Tuple[int, int]] = []
        for s in crowded:
            if s in stopped:
                continue
            d = dirn[s]
            twins = [x for x in by_robot[key_of[s]]
                     if x not in stopped and dirn[x] == d]
            if len(twins) > 1:
                youngest = max(twins)
                registry.stop_slot(youngest, _STOP_DUPLICATE, round_index)
                stopped.add(youngest)
                out.append((int(registry.chain_col[youngest]),
                            _STOP_DUPLICATE))
        return out

    # ------------------------------------------------------------------
    def _apply_starts(self, starts: List[Tuple[int, int, RunStart]],
                      round_index: int, started: Dict[int, int]) -> None:
        """Kernel step 10 fleet-wide: capacity-checked run creation.

        The per-robot capacity rule (at most two runs, never two with
        one direction) is enforced against fleet-unique robot keys from
        one gather of the live registry rows, updated as runs are
        created — matching the reference registry's dynamic check.
        """
        registry = self.registry
        arena = self.arena
        base = arena.base
        index_flat = arena.index
        slots = registry.active_slots()
        existing: Dict[int, List[int]] = {}
        if len(slots):
            cc = registry.chain_col[slots]
            keys = base[cc] + registry.robot[slots]
            dirs = registry.dirn[slots]
            for k, d in zip(keys.tolist(), dirs.tolist()):
                existing.setdefault(k, []).append(d)
        cand_ci = np.fromiter((s[0] for s in starts), np.int64, len(starts))
        cand_rid = np.fromiter((s[1] for s in starts), np.int64, len(starts))
        keys_l = (base[cand_ci] + cand_rid).tolist()
        # robots merged away this round fail the index lookup
        valid = (index_flat[base[cand_ci] + cand_rid] >= 0).tolist()
        rows: List[Tuple[int, int, int, int, int, int]] = []
        for (ci, rid, rs), key, ok in zip(starts, keys_l, valid):
            if not ok:
                continue
            dirs_on = existing.get(key)
            if dirs_on is not None and (len(dirs_on) >= 2
                                        or rs.direction in dirs_on):
                continue
            rows.append((ci, rid, rs.direction,
                         MODE_INIT_CORNER if rs.kind == "ii" else MODE_NORMAL,
                         rs.axis[0], rs.axis[1]))
            existing.setdefault(key, []).append(rs.direction)
            started[ci] = started.get(ci, 0) + 1
        registry.start_fleet_bulk(rows, round_index)

    # ------------------------------------------------------------------
    def _build_reports(self, live_list: List[int], n_before: Dict[int, int],
                       plan: Optional[FleetMergePlan],
                       merges_by_chain: Dict[int, List[MergeRecord]],
                       move_c: np.ndarray,
                       terminated: List[Tuple[int, int]],
                       conflicts: Dict[int, int],
                       started: Dict[int, int], round_index: int) -> None:
        """Assemble per-chain RoundReports identical to the kernel's."""
        registry = self.registry
        n_chains = len(self.arena.chains)
        hops = np.bincount(move_c, minlength=n_chains) if len(move_c) \
            else np.zeros(n_chains, dtype=np.int64)
        slots = registry.active_slots()
        active = np.bincount(registry.chain_col[slots],
                             minlength=n_chains) if len(slots) \
            else np.zeros(n_chains, dtype=np.int64)
        term_by_chain: Dict[int, Dict[StopReason, int]] = {}
        for ci, code in terminated:
            d = term_by_chain.setdefault(ci, {})
            reason = StopReason(code)
            d[reason] = d.get(reason, 0) + 1
        length = self.arena.length
        for ci in live_list:
            self.reports[ci].append(RoundReport(
                round_index=round_index,
                n_before=n_before[ci],
                n_after=int(length[ci]),
                hops=int(hops[ci]),
                merge_patterns=int(plan.exec_count[ci])
                if plan is not None else 0,
                merges=merges_by_chain.get(ci, []),
                runs_started=started.get(ci, 0),
                runs_terminated=term_by_chain.get(ci, {}),
                active_runs=int(active[ci]),
                merge_conflicts=plan.conflicts.get(ci, 0)
                if plan is not None else 0,
                runner_hop_conflicts=conflicts.get(ci, 0)))

    # ------------------------------------------------------------------
    def _check_invariants(self, live_list: List[int], before: Dict,
                          moved) -> None:
        """Per-chain model invariants over the fleet state."""
        registry = self.registry
        arena = self.arena
        for ci in list(self._ids_dirty):
            self._sync_ids(ci)
        slots = registry.active_slots()
        cc = registry.chain_col[slots] if len(slots) else slots
        for ci in live_list:
            chain = arena.chains[ci]
            ids_b, pos_b = before[ci]
            invariants.check_connectivity(chain)
            invariants.check_monotone_count(len(ids_b), chain.n)
            invariants.check_hop_lengths_arrays(
                ids_b, pos_b, chain.ids_array(), chain.positions_array())
            if len(slots):
                mine = registry.robot[slots[cc == ci]]
                if len(mine):
                    idx = chain.index_array()
                    if (idx[mine] < 0).any():
                        raise InvariantViolation(
                            f"fleet chain {ci}: run rides removed robot")
                    _, counts = np.unique(mine, return_counts=True)
                    if (counts > 2).any():
                        raise InvariantViolation(
                            f"fleet chain {ci}: robot carries more than "
                            f"two runs")
        if moved is not None:
            mc, old, new, dirs = moved
            for ci in np.unique(mc).tolist():
                if not arena.live[ci]:
                    continue
                rows = mc == ci
                invariants.check_run_speed(
                    arena.chains[ci],
                    list(zip(old[rows].tolist(), new[rows].tolist(),
                             dirs[rows].tolist())))


def gather_fleet(chains: Sequence[Union[ClosedChain, Sequence[Vec]]],
                 params: Parameters = DEFAULT_PARAMETERS,
                 check_invariants: bool = False,
                 keep_reports: bool = True,
                 max_rounds: Optional[int] = None,
                 validate_initial: bool = True,
                 progress: Optional[Callable[[int, int], None]] = None
                 ) -> List[GatheringResult]:
    """Gather a fleet in one shared-array pass (convenience API)."""
    fleet = FleetKernel(chains, params=params,
                        check_invariants=check_invariants,
                        keep_reports=keep_reports,
                        validate_initial=validate_initial)
    return fleet.run(max_rounds=max_rounds, progress=progress)
