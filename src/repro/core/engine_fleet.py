"""The fleet kernel: the unified round pipeline in shared arrays.

The one array-native execution substrate (DESIGN.md §2.9/§2.10):
:class:`FleetKernel` advances a batch of chains round-for-round
inside one process — all per-robot state in one
:class:`~repro.core.arena.ChainArena`, all per-run state in one
chain-tagged :class:`~repro.core.runs.RunRegistry`, every pipeline
stage (merge detection and planning, run decisions, movement,
contraction, termination bookkeeping, run advancement and starts)
executing fleet-wide.  A fleet of 256 small chains presents the
decision stage with thousands of runs per round, which keeps it on
the NumPy path a per-chain loop could never reach; a *single-segment*
arena is the ``"kernel"`` engine (:mod:`repro.core.engine_kernel` is
a thin adapter), with adaptive scalar tiers for the stages a lone
small chain cannot amortise.

Per-chain results are **bit-identical** to running each chain through
``Simulator(engine="kernel")``: same rounds, same final positions,
same per-round :class:`~repro.core.events.RoundReport` content
(property-tested in ``tests/test_fleet_kernel.py``; the engine itself
conforms to the reference in ``tests/test_conformance.py``).  The
rare sub-cases run fleet-wide too: merge planning lifts over global
cells, ``INIT_CORNER`` corner-cuts, the run-start corner refinement
and the contraction survivor rule are all elementwise/segmented array
passes, and only the endpoint-grammar candidates drop to Python —
bounded by actual occurrences, not by fleet size.

Scheduling: FSYNC only (the fleet exists for batch throughput; SSYNC
ablations go through the reference pipeline's scheduler hook).
"""

from __future__ import annotations

import time
from typing import (Callable, Dict, List, NamedTuple, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from repro.grid.lattice import Vec
from repro.core.admission import Starved
from repro.core.arena import ChainArena, append_cell
from repro.core.chain import CODE_TO_DIR, ClosedChain, MergeRecord
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.decisions_vectorized import (
    NUMPY_MIN_RUNS,
    FleetDecisions,
    decide_and_apply_fleet,
    decide_and_apply_scalar,
)
from repro.core.engine_vectorized import find_merge_patterns_np
from repro.core.events import RoundReport
from repro.core.merges import plan_merges_arrays, segment_min_lookup
from repro.core.results import ChainOutcome, GatheringResult
from repro.core.runs import (
    MODE_INIT_CORNER,
    MODE_NORMAL,
    MODE_PASSING,
    RunRegistry,
    StopReason,
)
from repro.core import invariants
from repro.errors import ChainError, InvariantViolation

_STOP_RUNNER_REMOVED = StopReason.RUNNER_REMOVED.value
_STOP_PASSING_TARGET = StopReason.PASSING_TARGET_REMOVED.value
_STOP_TRAVEL_TARGET = StopReason.TRAVEL_TARGET_REMOVED.value
_STOP_DUPLICATE = StopReason.DUPLICATE_DIRECTION.value

_CODE_TO_DIR = CODE_TO_DIR

#: Direction-code -> unit-vector table for the fleet planner.
_DIR_TABLE = np.array(CODE_TO_DIR, dtype=np.int64)

_EMPTY_CELLS = np.empty(0, dtype=np.int64)


class SlotTicket(NamedTuple):
    """One parent-placed slab admission (shared-memory shard tier).

    The parent parses a burst once, writes positions and edge codes
    straight into the shard's slab region, and hands the worker only
    this descriptor — the worker adopts the slot *in place*
    (:meth:`ChainArena.adopt_slots`), so admission crosses the process
    boundary without re-serialising a single robot.  ``mid`` carries
    the chain's pre-decided mid-run fault trigger (the parent owns the
    fault plan; intake faults never reach the worker).
    """

    ext: int                               #: external stream index
    base: int                              #: slab cell offset
    n: int                                 #: chain length (== slot size)
    zc: int                                #: zero-edge count at admission
    mid: Optional[Tuple[str, int]] = None  #: (kind, local round) or None


class SlimResult(NamedTuple):
    """A retired chain's scalar outcome row (shared-memory handoff).

    What a shard worker publishes instead of a full
    :class:`GatheringResult`: the final positions already sit in the
    slab at ``[base, base + final_n)`` — the parent materialises the
    result from there, so the handoff moves eight integers per chain.
    """

    gathered: bool
    rounds: int
    initial_n: int
    final_n: int
    base: int


def parse_burst(payload_list: List[object], validate: bool):
    """Parse one intake burst into arrays (the batched-admission seam).

    Factored out of :meth:`FleetKernel._admit_batch` so the
    shared-memory parent (DESIGN.md §2.16) runs the *identical* parse,
    validation and edge-encode before writing chains into the slab —
    admission order, rejection set and edge codes cannot diverge
    between the in-process and sharded tiers.

    Returns ``(payloads, arrs, code, starts, offs, ns, zcs, bad)``:
    ``arrs`` aligns with ``payloads`` (``None`` where the batch parse
    rejected the entry — those re-run through the per-chain
    constructor for its exact error); the remaining arrays describe
    the *good* subsequence segment-wise — concatenated edge ``code``
    with per-segment ``starts``/``offs`` bounds, lengths ``ns``,
    zero-edge counts ``zcs`` and the per-segment reject flag ``bad``
    (all ``None`` when nothing batch-parsed).
    """
    payloads: List[object] = []
    arrs: List[Optional[np.ndarray]] = []
    # fast path: a burst of plain point lists (the streaming tier's
    # normal diet) parses as ONE C-level array build over the
    # concatenated points; anything else — or a burst the combined
    # parse rejects — drops to the per-item parse below
    flat: Optional[List] = []
    counts: List[int] = []
    for payload in payload_list:
        if flat is not None and type(payload) is list and payload:
            flat.extend(payload)
            counts.append(len(payload))
        else:
            flat = None
    if flat is not None:
        try:
            combined = np.array(flat, dtype=np.int64)
        except (ValueError, TypeError):
            combined = None
        if combined is not None and combined.ndim == 2 \
                and combined.shape[1] == 2:
            payloads = list(payload_list)
            hi = 0
            for c in counts:
                lo = hi
                hi += c
                arrs.append(combined[lo:hi])
        else:
            flat = None
    if flat is None:
        for payload in payload_list:
            a = None
            if not isinstance(payload, ClosedChain):
                try:
                    if not isinstance(payload, np.ndarray):
                        payload = list(payload)
                    a = np.array(payload,
                                 dtype=np.int64).reshape(-1, 2)
                except (ValueError, TypeError):
                    a = None
                if a is not None and len(a) == 0:
                    a = None               # "empty chain": per-chain error
            payloads.append(payload)
            arrs.append(a)
    good = [i for i, a in enumerate(arrs) if a is not None]
    code = starts = offs = ns = zcs = bad = None
    if good:
        # the whole burst validates and edge-encodes as one
        # segmented array (same codes as encode_edges: -1 zero
        # edge, -2 broken), so per-chain work only remains for
        # rejected entries
        ns = np.fromiter((arrs[i].shape[0] for i in good), np.int64,
                         count=len(good))
        offs = np.cumsum(ns)
        starts = offs - ns
        pts = np.concatenate([arrs[i] for i in good]) \
            if len(good) > 1 else arrs[good[0]]
        succ = np.arange(1, len(pts) + 1, dtype=np.int64)
        succ[offs - 1] = starts            # cyclic wrap per segment
        e = pts[succ] - pts
        dx, dy = e[:, 0], e[:, 1]
        code = np.where(dy == 0, 1 - dx, 2 - dy)
        man = np.abs(dx) + np.abs(dy)
        code[man != 1] = -2
        code[man == 0] = -1
        zcs = np.add.reduceat((code == -1).astype(np.int64), starts)
        bad = np.add.reduceat((code == -2).astype(np.int64),
                              starts) > 0
        if validate:
            bad = bad | (zcs > 0) | (ns < 4) | (ns % 2 != 0)
    return payloads, arrs, code, starts, offs, ns, zcs, bad


def _sorted_unique(a: np.ndarray) -> np.ndarray:
    """Distinct values of an already-sorted array (boundary mask).

    The contraction's chain lists arrive sorted (zero cells ascend),
    so deduplication is one comparison — ``np.unique`` would re-sort
    and hash for nothing on the hot merge rounds.
    """
    if len(a) < 2:
        return a
    keep = np.empty(len(a), dtype=bool)
    keep[0] = True
    np.not_equal(a[1:], a[:-1], out=keep[1:])
    return a[keep]


def _fleet_merge_candidates(arena: ChainArena, eligible: np.ndarray,
                            k_max: int):
    """Merge-pattern candidates of every eligible chain, one RLE pass.

    Fleet rendering of the vectorised detector's run-length scan
    (:func:`repro.core.engine_vectorized._merge_patterns_rle`): run
    boundaries fall out of one ``codes[cell] != codes[prev]``
    comparison over the arena topology and the per-run spike/U-shape
    conditions are elementwise masks over the fleet-wide run arrays —
    no Python per chain, no pattern objects.  Returns ``(chain,
    first_black_local, k, direction_code)`` arrays (spikes then longs;
    the planner's decision content is order-independent), or ``None``
    when nothing fired.
    """
    cells, cell_chain, prev_pos, next_pos = arena.topology()
    if len(cells) == 0:
        return None
    cv = arena.codes[cells]
    starts_pos = np.flatnonzero(cv != cv[prev_pos])
    if len(starts_pos) == 0:
        return None
    run_chain = cell_chain[starts_pos]
    keep = eligible[run_chain]
    starts_pos = starts_pos[keep]
    if len(starts_pos) == 0:
        return None
    run_chain = run_chain[keep]
    run_codes = cv[starts_pos]
    local = cells[starts_pos] - arena.base[run_chain]
    n_of = arena.length[run_chain]

    # per-chain segmentation of the fleet-wide run list
    m = len(starts_pos)
    idx = np.arange(m, dtype=np.int64)
    first = np.empty(m, dtype=bool)
    first[0] = True
    np.not_equal(run_chain[1:], run_chain[:-1], out=first[1:])
    seg_first = np.flatnonzero(first)
    seg_last = np.empty(len(seg_first), dtype=np.int64)
    seg_last[:-1] = seg_first[1:] - 1
    seg_last[-1] = m - 1
    seg_id = np.cumsum(first) - 1
    prev_run = idx - 1
    prev_run[seg_first] = seg_last
    next_run = idx + 1
    next_run[seg_last] = seg_first
    runs_in_chain = (seg_last - seg_first + 1)[seg_id]

    prev_codes = run_codes[prev_run]
    next_codes = run_codes[next_run]
    k = (local[next_run] - local) % n_of + 1

    valid_prev = prev_codes >= 0
    valid = run_codes >= 0
    spike = valid_prev & valid & (run_codes == (prev_codes + 2) % 4)
    longm = (runs_in_chain >= 3) & valid_prev & valid \
        & (next_codes == (prev_codes + 2) % 4) \
        & (((run_codes ^ prev_codes) & 1) == 1) \
        & (k <= k_max) & (k + 2 <= n_of)

    sp = np.flatnonzero(spike)
    lg = np.flatnonzero(longm)
    if len(sp) == 0 and len(lg) == 0:
        return None
    pch = np.concatenate([run_chain[sp], run_chain[lg]])
    fb = np.concatenate([local[sp], local[lg]])
    kk = np.concatenate([np.ones(len(sp), dtype=np.int64), k[lg]])
    dcode = np.concatenate([run_codes[sp], next_codes[lg]])
    return pch, fb, kk, dcode


class FleetMergePlan:
    """One round's merge plan for the whole fleet (array form).

    Decision content per chain is identical to
    :func:`repro.core.merges.plan_merges_arrays` — short-pattern
    priority, Fig. 3 overlap resolution — computed fleet-wide over
    global arena cells.
    """

    __slots__ = ("part_flat", "hop_gidx", "hop_vec", "hop_chain",
                 "exec_count", "conflicts")

    def __init__(self, part_flat, hop_gidx, hop_vec, hop_chain, exec_count,
                 conflicts):
        #: participant mask by global arena cell
        self.part_flat = part_flat
        #: hopping blacks (global cells) and their (m, 2) hop vectors
        self.hop_gidx = hop_gidx
        self.hop_vec = hop_vec
        #: owning chain per hop
        self.hop_chain = hop_chain
        #: executing-pattern count per chain (round-report field)
        self.exec_count = exec_count
        #: chain -> frozen-robot count (impossible-overlap defensive path)
        self.conflicts = conflicts


def _fleet_plan_merges(arena: ChainArena, pch: np.ndarray, fb: np.ndarray,
                       kk: np.ndarray, dcode: np.ndarray) -> FleetMergePlan:
    """Fleet-wide merge planning over global cells.

    Lifts :func:`repro.core.merges._plan_arrays_np` to the arena:
    black expansion, the per-black minimum pattern length (the shared
    sort+reduceat fold, :func:`repro.core.merges.segment_min_lookup`),
    white-of-shorter-black cancellation and the Fig. 3a/3b hop
    resolution all run once for every pattern of every chain.  Segment
    bases keep chains disjoint, so the per-chain results match the
    per-chain planner exactly.
    """
    base = arena.base
    n = arena.length[pch]
    b = base[pch]
    m = len(pch)
    rep = np.repeat(np.arange(m, dtype=np.int64), kk)
    offs = np.arange(len(rep), dtype=np.int64) \
        - np.repeat(np.cumsum(kk) - kk, kk)
    black_g = b[rep] + (fb[rep] + offs) % n[rep]

    w0 = b + (fb - 1) % n
    w1 = b + (fb + kk) % n
    mk0, mk1 = segment_min_lookup(black_g, kk[rep], w0, w1)
    keep = ~((mk0 < kk) | (mk1 < kk))

    part_flat = arena.scratch.take("merge_part", arena.span, bool,
                                   fill=False)
    exec_count = np.bincount(pch[keep], minlength=len(arena.chains))
    if not keep.any():
        e = np.empty(0, dtype=np.int64)
        return FleetMergePlan(part_flat, e, e.reshape(0, 2), e,
                              exec_count, {})
    keep_rep = keep[rep]
    bidx = black_g[keep_rep]
    part_flat[bidx] = True
    part_flat[w0[keep]] = True
    part_flat[w1[keep]] = True

    # deduplicate (black cell, hop direction) pairs, then resolve each
    # robot by its distinct hop-direction count (Fig. 3a/3b); sorted
    # boundary masking beats np.unique's hash pass on these sizes
    key = _sorted_unique(np.sort(bidx * 4 + dcode[rep][keep_rep]))
    idx_u = key >> 2
    code_u = key & 3
    first = np.flatnonzero(np.r_[True, idx_u[1:] != idx_u[:-1]])
    counts = np.diff(np.append(first, len(idx_u)))

    conflicts: Dict[int, int] = {}
    single = first[counts == 1]
    hop_g = [idx_u[single]]
    hop_v = [_DIR_TABLE[code_u[single]]]
    double = first[counts == 2]
    if len(double):
        ca, cb = code_u[double], code_u[double + 1]
        perp = ((ca ^ cb) & 1) == 1
        hop_g.append(idx_u[double[perp]])
        hop_v.append(_DIR_TABLE[ca[perp]] + _DIR_TABLE[cb[perp]])
        for cell in idx_u[double[~perp]].tolist():   # impossible; freeze
            ci = int(arena.owner[cell])
            conflicts[ci] = conflicts.get(ci, 0) + 1
    for cell in idx_u[first[counts > 2]].tolist():
        ci = int(arena.owner[cell])
        conflicts[ci] = conflicts.get(ci, 0) + 1
    hop_gidx = np.concatenate(hop_g)
    hop_chain = arena.owner[hop_gidx]
    return FleetMergePlan(part_flat, hop_gidx, np.concatenate(hop_v),
                          hop_chain, exec_count, conflicts)


#: One round's run-start candidates in array form: ``(cells, chain,
#: robot_id, direction, mode_code, axis_code)``, reference-ordered.
FleetStarts = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray,
                    np.ndarray, np.ndarray]


def _fleet_run_starts(arena: ChainArena,
                      eligible: Optional[np.ndarray] = None
                      ) -> Optional[FleetStarts]:
    """Every eligible chain's Fig. 5 run-start decisions, one fleet pass.

    Fleet rendering of :func:`repro.core.engine_vectorized.scan_run_starts`:
    the rolled-code comparisons become gathers through the arena
    topology, and the candidate refinement — the Fig. 5 (i)/(ii)
    corner grammar on the three codes behind each fired anchor — is a
    masked comparison over further topology gathers, evaluated only
    where the cheap base condition fired.  No per-candidate Python.
    ``eligible`` masks chains by id (mid-run admission staggers the
    start-interval phase across the fleet; ``None`` scans everyone).
    Returns ``(cells, chain, robot_id, direction, mode_code,
    axis_code)`` arrays in reference order — ascending chain,
    ascending index, direction +1 before -1 — with the robot captured
    at snapshot time (indices shift under the later contraction), or
    ``None`` when no start fires.
    """
    cells, cell_chain, prev_pos, next_pos = arena.topology()
    if len(cells) == 0:
        return None
    codes = arena.codes
    c0 = codes[cells]
    cm1 = c0[prev_pos]
    cm2 = cm1[prev_pos]
    cp1 = c0[next_pos]

    v0 = c0 >= 0
    vm1 = cm1 >= 0
    perp = ((c0 ^ cm1) & 1) == 1
    base_p = v0 & (cp1 == c0) & vm1 & perp
    base_m = vm1 & (cm2 == cm1) & v0 & perp
    if not (base_p.any() or base_m.any()):
        return None

    # refinement: Fig. 5(ii) needs two equal codes right behind the
    # anchor, Fig. 5(i) a perpendicular jog then the resumed axis
    cm3 = cm2[prev_pos]
    cp2 = cp1[next_pos]
    ii_p = base_p & (cm2 == cm1)
    i_p = base_p & ~ii_p & (cm2 >= 0) & (((cm2 ^ cm1) & 1) == 1) \
        & (cm3 == cm1)
    ii_m = base_m & (cp1 == c0)
    i_m = base_m & ~ii_m & (cp1 >= 0) & (((cp1 ^ c0) & 1) == 1) \
        & (cp2 == c0)

    fire_p = ii_p | i_p
    fire_m = ii_m | i_m
    if eligible is not None:
        ok = eligible[cell_chain]
        fire_p &= ok
        fire_m &= ok
    pi = np.flatnonzero(fire_p)
    mi = np.flatnonzero(fire_m)
    if len(pi) == 0 and len(mi) == 0:
        return None
    # reference order: ascending anchor, +1 before -1 at one anchor
    order = np.argsort(np.concatenate([2 * pi, 2 * mi + 1]), kind="stable")
    tpos = np.concatenate([pi, mi])[order]
    dirs = np.concatenate([np.ones(len(pi), dtype=np.int64),
                           np.full(len(mi), -1, dtype=np.int64)])[order]
    modes = np.concatenate([
        np.where(ii_p[pi], MODE_INIT_CORNER, MODE_NORMAL),
        np.where(ii_m[mi], MODE_INIT_CORNER, MODE_NORMAL)])[order]
    axc = np.concatenate([c0[pi], cm1[mi] ^ 2])[order]
    gcells = cells[tpos]
    return gcells, cell_chain[tpos], arena.ids[gcells], dirs, modes, axc


class FleetKernel:
    """Advance a fleet of chains round-for-round in shared arrays.

    Parameters
    ----------
    chains:
        Fleet members — :class:`ClosedChain` instances (adopted and
        mutated in place) or position sequences.
    params:
        Algorithm constants shared by the fleet.
    check_invariants:
        Per-chain model invariants after every round (slow; the
        property suite runs with it on).
    keep_reports:
        Build per-chain :class:`RoundReport` lists.  Off for pure
        throughput sweeps — the fleet then skips all per-chain report
        bookkeeping.
    validate_initial:
        Enforce the paper's initial-configuration assumptions.
    numpy_min_runs:
        Scalar/NumPy crossover of the decision stage for a
        *single-segment* arena (the fleet-of-one that backs
        ``Simulator(engine="kernel")``): below this many active runs
        the tight scalar fold of
        :func:`~repro.core.decisions_vectorized.decide_and_apply_scalar`
        beats the array dispatch overhead.  ``None`` uses the shared
        :data:`~repro.core.decisions_vectorized.NUMPY_MIN_RUNS`
        default; multi-chain fleets always run the NumPy path (their
        run counts amortise it by construction).  Behaviourally
        identical either way (tests pin both paths).
    """

    def __init__(self, chains: Sequence[Union[ClosedChain, Sequence[Vec]]],
                 params: Parameters = DEFAULT_PARAMETERS,
                 check_invariants: bool = False,
                 keep_reports: bool = True,
                 validate_initial: bool = True,
                 numpy_min_runs: Optional[int] = None,
                 capacity: int = 0):
        objs: List[ClosedChain] = []
        for c in chains:
            if not isinstance(c, ClosedChain):
                c = ClosedChain(c, require_disjoint_neighbors=validate_initial)
            elif validate_initial:
                c.validate(initial=True)
            objs.append(c)
        self.params = params
        self.arena = ChainArena(objs, capacity=capacity)
        self.registry = RunRegistry()
        self.registry.keep_stopped = False   # never read; skip view builds
        self.round_index = 0
        self.numpy_min_runs = numpy_min_runs
        self._single = len(objs) == 1
        self._check = check_invariants
        self._keep = keep_reports
        self._validate = validate_initial
        n_chains = len(objs)
        self._n0 = [c.n for c in objs]
        #: global round each chain entered the fleet (0 for the initial
        #: members).  A chain's *local* round — what its own simulator
        #: would call ``round_index`` — is ``round_index - birth[ci]``;
        #: the start-interval phase, the round budget and the report
        #: numbering all run on local rounds, which is what makes
        #: mid-run admission bit-identical to a fresh single run.
        self.birth = np.zeros(n_chains, dtype=np.int64)
        #: per-chain round budgets from the parameters' stall bound; a
        #: ``max_rounds`` cap is applied at check time by the run that
        #: carries it, never written here (so one capped run cannot
        #: leak its cap into later admissions or runs)
        self._budgets = np.array([params.round_budget(n) for n in self._n0],
                                 dtype=np.int64)
        # amortised-doubling backing for the two admission-appended
        # columns (same pattern as the arena's per-chain tables)
        self._birth_buf = self.birth
        self._budget_buf = self._budgets
        self.reports: List[List[RoundReport]] = [[] for _ in range(n_chains)]
        self.results: List[Optional[GatheringResult]] = [None] * n_chains
        #: internal chain row -> external stream position.  Rows are
        #: recycled after retirement (the per-chain tables stay sized
        #: to peak occupancy — million-chain streams must not decay as
        #: the tables grow), so the stream index a result is yielded
        #: under lives here; for a fixed fleet the mapping is identity.
        self._ext_of: List[int] = list(range(n_chains))
        self._submitted = n_chains
        #: streaming telemetry (admissions, lifecycle churn, injected
        #: faults; peak occupancy lives on the arena)
        self.stream_stats: Dict[str, int] = {
            "admitted": 0, "compactions": 0, "grows": 0,
            "fault_crashed": 0, "fault_perturbed": 0,
            "quarantined": 0, "mid_crashed": 0, "mid_restarted": 0}
        #: per-size round-budget memo (admission hot path: a uniform
        #: stream re-derives the same handful of budgets all run)
        self._budget_memo: Dict[int, int] = {}
        #: pending mid-run fault triggers: chain row -> (kind, local
        #: round).  Registered at admission from the fault plan, fired
        #: at round boundaries, persisted in snapshots (a fired fault
        #: must not re-fire after resume).
        self._mid_faults: Dict[int, Tuple[str, int]] = {}
        #: external-index override for sharded pool chunks: when set,
        #: admissions consume global stream indices from this list
        #: instead of the local counter (supervision tier, §2.13)
        self._ext_list: Optional[List[int]] = None
        self._ext_pos = 0
        #: active WAL writer and the round record under construction
        #: (durability tier, DESIGN.md §2.12; None outside WAL streams)
        self._wal = None
        self._wal_rec: Optional[Dict[str, list]] = None
        #: chains whose Python-side id list/index awaits _sync_ids —
        #: value None forces a full rebuild; a dict carries the round's
        #: splice plan (removed positions / survivor overwrites) so the
        #: sync can edit the live caches in place
        self._ids_dirty: Dict[int, Optional[dict]] = {}
        #: shared-memory handoff mode (§2.16): retire yields
        #: :class:`SlimResult` rows — final positions stay in the slab
        #: for the parent to read — instead of materialised results
        self.slim_results = False

    # ------------------------------------------------------------------
    def _as_chain(self, c: Union[ClosedChain, Sequence[Vec]]) -> ClosedChain:
        """Normalise one fleet input (constructor and admission path)."""
        if not isinstance(c, ClosedChain):
            return ClosedChain(c, require_disjoint_neighbors=self._validate)
        if self._validate:
            c.validate(initial=True)
        return c

    # ------------------------------------------------------------------
    def _peek_ext(self) -> int:
        """The next external stream index (without consuming it)."""
        if self._ext_list is not None:
            return int(self._ext_list[self._ext_pos])
        return self._submitted

    def _next_ext(self) -> int:
        """Consume and return the next external stream index."""
        ext = self._peek_ext()
        if self._ext_list is not None:
            self._ext_pos += 1
        self._submitted += 1
        return ext

    # ------------------------------------------------------------------
    def admit(self, chain: ClosedChain, slots_hint: Optional[int] = None,
              _ext: Optional[int] = None) -> int:
        """Admit a chain into a reclaimed arena slot (streaming tier).

        Best-fit over the free holes; when fragmentation blocks a fit
        that the total free space allows, the arena compacts and the
        admission retries; only a genuine capacity shortfall grows the
        buffers (``slots_hint`` provisions a uniform stream's whole
        working set — slot budget × this chain's size — in one step).
        The chain starts at local round 0: birth round, round budget
        and report numbering are per chain.  Returns the chain id.
        """
        n = chain.n
        arena = self.arena
        ci = arena.admit(chain)
        if ci < 0 and arena.free_cells >= n:
            arena.compact()
            self.stream_stats["compactions"] += 1
            ci = arena.admit(chain)
        if ci < 0:
            want = arena.live_cells + n
            if slots_hint is not None:
                want = max(want, slots_hint * n)
            # span + n guarantees the grown tail hole alone fits the
            # chain even when the existing free space is fragmented
            arena.grow(max(want, 2 * arena.span, arena.span + n))
            self.stream_stats["grows"] += 1
            ci = arena.admit(chain)
        self._single = False
        ext = self._next_ext() if _ext is None else _ext
        self._register_row(ci, n, ext)
        return ci

    def _register_row(self, ci: int, n: int, ext: int) -> None:
        """Fleet-side row bookkeeping for one admission (any intake path)."""
        budget = self._budget_memo.get(n)
        if budget is None:
            budget = self.params.round_budget(n)
            self._budget_memo[n] = budget
        if ci < len(self._n0):             # recycled row: reset in place
            self._n0[ci] = n
            self.birth[ci] = self.round_index
            self._budgets[ci] = budget
            self.reports[ci] = []
            self.results[ci] = None
            self._ext_of[ci] = ext
        else:
            self._n0.append(n)
            count = ci + 1
            self._birth_buf = append_cell(self._birth_buf, count,
                                          self.round_index)
            self._budget_buf = append_cell(self._budget_buf, count,
                                           budget)
            self.birth = self._birth_buf[:count]
            self._budgets = self._budget_buf[:count]
            self.reports.append([])
            self.results.append(None)
            self._ext_of.append(ext)
        self.stream_stats["admitted"] += 1

    def _register_rows(self, cis: List[int], ns: List[int],
                       exts: List[int]) -> None:
        """Batched :meth:`_register_row` for one reserved run."""
        n0 = self._n0
        reports = self.reports
        results = self.results
        ext_of = self._ext_of
        memo = self._budget_memo
        rec: List[int] = []
        buds: List[int] = []
        for ci, n, ext in zip(cis, ns, exts):
            if ci < len(n0):               # recycled row: reset in place
                n0[ci] = n
                reports[ci] = []
                results[ci] = None
                ext_of[ci] = ext
                b = memo.get(n)
                if b is None:
                    b = self.params.round_budget(n)
                    memo[n] = b
                rec.append(ci)
                buds.append(b)
            else:
                self._register_row(ci, n, ext)
        if rec:
            idx = np.asarray(rec, dtype=np.int64)
            self.birth[idx] = self.round_index
            self._budgets[idx] = buds
            self.stream_stats["admitted"] += len(rec)

    # ------------------------------------------------------------------
    def _admit_batch(self, pulled: List[Tuple[int, object]],
                     slots_hint: Optional[int], quarantine: bool
                     ) -> Tuple[List[int], List[Tuple[int, Exception]]]:
        """Admit one intake burst: batched parse, validate and attach.

        ``pulled`` is the burst's ``(stream index, payload)`` list in
        stream order.  Raw point sequences — the streaming tier's
        common case — parse, validate and edge-encode in one
        vectorised pass over the concatenated burst and land in the
        arena through :meth:`ChainArena.reserve` +
        :meth:`ChainArena.attach_batch` splices; ``ClosedChain``
        payloads and entries the batch pass rejects fall back to the
        per-chain path, whose constructor raises the exact per-chain
        error for quarantine.  The admission order, hole choices,
        compaction/grow points and error messages are identical to
        admitting each entry through :meth:`admit`.  Returns
        ``(admitted chain ids, quarantined (index, error) pairs)``.

        Shared-memory shards (§2.16) feed :class:`SlotTicket`
        descriptors instead of payloads: the parent already parsed,
        validated and wrote the burst into this worker's slab region,
        so the whole burst adopts in place — no parse, no validation,
        no cell writes.
        """
        arena = self.arena
        if pulled and type(pulled[0][1]) is SlotTicket:
            return self._adopt_batch(pulled), []
        payloads, arrs, code, starts, offs, ns, zcs, bad = parse_burst(
            [payload for _ext, payload in pulled], self._validate)
        fresh: List[int] = []
        qpairs: List[Tuple[int, Exception]] = []
        pend_ci: List[int] = []
        pend_pos: List[np.ndarray] = []
        pend_codes: List[np.ndarray] = []
        pend_zc: List[int] = []

        def flush() -> None:
            # attach everything reserved so far; must run before any
            # operation that walks the live chain objects
            if pend_ci:
                arena.topo_admit_batch(pend_ci)
                arena.attach_batch(pend_ci, pend_pos, pend_codes, pend_zc)
                del pend_ci[:], pend_pos[:], pend_codes[:], pend_zc[:]

        run: List[Tuple[int, int, np.ndarray]] = []   # (ext, seg j, arr)

        def do_run() -> None:
            # reserve + register a run of batch-validated entries;
            # when a hole is missing mid-run, attach what fits, then
            # compact or grow (the same escalation admit() uses) and
            # retry the remainder
            k = 0
            while k < len(run):
                tail = run[k:]
                ns_run = [int(ns[j]) for _e, j, _a in tail]
                got = arena.reserve_batch(ns_run)
                for (ext, j, a), ci in zip(tail, got):
                    pend_ci.append(ci)
                    pend_pos.append(a)
                    pend_codes.append(code[starts[j]:offs[j]])
                    pend_zc.append(int(zcs[j]))
                    fresh.append(ci)
                self._register_rows(got, ns_run[:len(got)],
                                    [e for e, _j, _a in
                                     tail[:len(got)]])
                k += len(got)
                if k < len(run):
                    n = ns_run[len(got)]
                    flush()
                    if arena.free_cells >= n:
                        arena.compact()
                        self.stream_stats["compactions"] += 1
                    else:
                        want = arena.live_cells + n
                        if slots_hint is not None:
                            want = max(want, slots_hint * n)
                        arena.grow(max(want, 2 * arena.span,
                                       arena.span + n))
                        self.stream_stats["grows"] += 1
            del run[:]

        gpos = 0
        for i, (ext, _) in enumerate(pulled):
            a = arrs[i]
            if a is not None:
                j = gpos
                gpos += 1
                if not bad[j]:
                    run.append((ext, j, a))
                    continue
                payload = a                # rejected: re-run per chain
            else:
                payload = payloads[i]
            do_run()
            flush()
            try:
                ci = self.admit(self._as_chain(payload),
                                slots_hint=slots_hint, _ext=ext)
            except (ChainError, ValueError, TypeError) as exc:
                if not quarantine:
                    raise
                qpairs.append((ext, exc))
                continue
            fresh.append(ci)
        do_run()
        flush()
        self._single = False
        return fresh, qpairs

    # ------------------------------------------------------------------
    def _adopt_batch(self, pulled: List[Tuple[int, "SlotTicket"]]
                     ) -> List[int]:
        """Adopt one burst of parent-placed slab slots (§2.16).

        The cell data is already resident at each ticket's
        ``[base, base + n)``; the arena carves the dictated ranges out
        of its free list (the parent's allocator mirror made the same
        carves, so the two free lists track the same hole set) and the
        fleet rows register under the tickets' external indices.
        Compaction and growth are structurally unreachable on this
        path — the parent owns placement.
        """
        tickets = [t for _i, t in pulled]
        ns = [t.n for t in tickets]
        cis = self.arena.adopt_slots([t.base for t in tickets], ns,
                                     [t.zc for t in tickets])
        self._register_rows(cis, ns, [t.ext for t in tickets])
        for ci, t in zip(cis, tickets):
            if t.mid is not None:
                self._mid_faults[ci] = (str(t.mid[0]), int(t.mid[1]))
        self._single = False
        return cis

    # ------------------------------------------------------------------
    def run(self, max_rounds: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> List[GatheringResult]:
        """Gather the whole fleet; per-chain results in input order.

        Each chain retires exactly when its own
        ``Simulator(engine="kernel").run()`` would stop: the 2×2
        termination box observed at the start of a round, or its
        per-chain round budget (``max_rounds`` when given, the
        parameters' linear stall budget otherwise).  ``progress`` is
        called as ``progress(completed, total)`` whenever chains
        retire.
        """
        total = len(self.arena.chains)
        if total == 0:
            return []
        cb = None
        if progress is not None:
            def cb(done: int, _total: int) -> None:
                progress(done, total)
        for ci, res in self.run_stream((), max_rounds=max_rounds,
                                       progress=cb):
            self.results[ci] = res
        return list(self.results)

    # ------------------------------------------------------------------
    def run_stream(self, chains: Union[Sequence, object] = (),
                   slots: Optional[int] = None,
                   max_rounds: Optional[int] = None,
                   progress: Optional[Callable[[int, int], None]] = None,
                   release: bool = False,
                   wal=None,
                   snapshot_every: int = 512,
                   faults=None,
                   on_error: str = "raise",
                   ext_indices: Optional[Sequence[int]] = None,
                   _resume: Optional[tuple] = None):
        """Stream chains through the arena; yield results as chains finish.

        The scheduler core of the streaming tier (DESIGN.md §2.11): an
        admission queue fed by ``chains`` (any iterable — consumed
        lazily) is drained between rounds — whenever occupancy drops
        below the ``slots`` budget (``None``: admit everything
        immediately), the next chains are admitted into reclaimed
        arena slots, tagged with their birth round, and their first
        runs start in the next round's bulk start.  Chains already in
        the arena (constructor members) run ahead of the stream.

        Yields ``(chain_id, result)`` pairs the moment each chain
        retires; chain ids count up in admission order, so they are
        stream positions.  Per-chain results are bit-identical to
        ``gather_batch`` / ``Simulator(engine="kernel")`` on the same
        inputs.  ``release`` drops the kernel's own reference to each
        yielded chain and its reports (bounded-memory sweeps);
        ``progress`` is called as ``progress(done, total)`` with
        ``total == -1`` while the stream end is unknown.

        Durability (§2.12): ``wal`` — a :class:`repro.io.wal.WalWriter`
        — logs every round's effects and every admission/retire/yield,
        and writes a full state snapshot every ``snapshot_every``
        rounds, making the stream resumable after a hard kill via
        :meth:`FleetKernel.resume`.  ``faults`` — a
        :class:`repro.core.faults.FaultPlan` — degrades the stream
        deterministically at intake (entries dropped or perturbed by
        their stream index) and mid-run (seeded robot crash/restart at
        chain-local round boundaries).  ``_resume`` is the resume
        protocol's internal handoff (progress counters and the
        already-yielded skip set); use :meth:`resume`, never pass it
        directly.

        Supervision (§2.13): ``on_error="quarantine"`` turns per-chain
        failures — a poisoned input that fails chain validation at
        admission, or an :class:`InvariantViolation` pinned to one
        chain mid-round — into yielded
        :class:`~repro.core.results.ChainOutcome` error records
        instead of stream-aborting exceptions; mid-run fault crashes
        are always yielded that way.  ``ext_indices`` maps this
        kernel's admissions onto caller-chosen global stream indices
        (the sharded pool path — each worker's kernel sees only its
        chunk but logs, yields and fault-decides under global indices).
        """
        if slots is not None and slots < 1:
            raise ValueError("slots must be >= 1")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if on_error not in ("raise", "quarantine"):
            raise ValueError("on_error must be 'raise' or 'quarantine'")
        quarantine = on_error == "quarantine"
        if ext_indices is not None and _resume is None:
            self._ext_list = [int(x) for x in ext_indices]
            self._ext_pos = 0
        arena = self.arena
        it = iter(chains)
        # admission-source protocol (§2.15): a live source can answer
        # "nothing right now" (Starved) without ending the stream —
        # plain iterables keep the exact next()/StopIteration path
        take = getattr(it, "take", None)
        if take is not None and not callable(take):
            take = None
        self._wal = wal
        skip: set = set()
        consumed = 0
        exhausted = False
        done = 0
        if _resume is not None:
            exhausted, done, consumed, skip = _resume
        elif wal is not None:
            from repro.io.serialization import params_to_doc
            wal.append("stream_start",
                       params=params_to_doc(self.params),
                       slots=slots, max_rounds=max_rounds,
                       snapshot_every=snapshot_every, release=release,
                       keep_reports=self._keep,
                       check_invariants=self._check,
                       validate_initial=self._validate,
                       numpy_min_runs=self.numpy_min_runs,
                       on_error=on_error,
                       faults=faults.to_doc() if faults is not None
                       else None)
        t0 = time.perf_counter()

        def snap() -> None:
            # full checkpoint at the between-round boundary: every
            # retire-eligible chain has retired and the arena either
            # sits at its slot budget or the stream is exhausted, so
            # resume re-enters the scheduling pass as a provable no-op
            wal.write_snapshot(self, {
                "consumed": consumed, "done": done, "exhausted": exhausted,
                "slots": slots, "max_rounds": max_rounds,
                "release": release, "snapshot_every": snapshot_every,
                "on_error": on_error})

        def emit(pairs):
            # idempotent yield protocol: one record per retire batch,
            # appended *after* the consumer has resumed past the whole
            # batch, so a logged yield implies the consumer fully
            # processed every listed result.  A crash between delivery
            # and record re-delivers that batch on resume (the
            # consumer side deduplicates by stream index, and
            # determinism makes re-deliveries bit-identical); a
            # recorded-but-undelivered result cannot exist.  Results
            # in the skip set were delivered before the crash — they
            # re-log (a later crash must still skip them) but are not
            # re-delivered.
            nonlocal done
            delivered: List[int] = []
            for ext, res in pairs:
                done += 1
                if ext in skip:
                    skip.discard(ext)
                else:
                    yield ext, res
                delivered.append(ext)
            if wal is not None and delivered:
                wal.append("yield", i=delivered)

        def quar(idx, exc):
            # poisoned stream entry: the input never became a live
            # chain, so quarantine consumes its stream index (gap,
            # never a shift) and yields a structured error outcome
            self.stream_stats["quarantined"] += 1
            if wal is not None:
                wal.append("quarantine", i=idx,
                           r=self.round_index, stage="admit",
                           error=type(exc).__name__)
            return emit([(idx, ChainOutcome(
                index=idx, error=type(exc).__name__,
                message=str(exc), stage="admit",
                quarantined=True))])

        if wal is not None:
            snap()                         # baseline (or resume re-base)
        last_snap_round = self.round_index
        while True:
            # --- between-round scheduling --------------------------------
            # one retire pass over the stepped fleet, then a top-up /
            # re-check loop over *fresh admissions only* (an admitted
            # chain that is already gathered — or has a zero budget —
            # retires at local round 0 without ever stepping, exactly
            # as its own simulator would)
            retired = False
            live = arena.live_indices()
            if len(live):
                live_ids, gathered = arena.gathered_mask()
                local = self.round_index - self.birth[live_ids]
                # a max_rounds cap applies for this run only — the
                # stored budgets stay the parameters' stall bounds
                retire = gathered | (local >= (self._budgets[live_ids]
                                               if max_rounds is None
                                               else max_rounds))
                if retire.any():
                    retired = True
                    yield from emit(self._retire_batch(
                        live_ids[retire], gathered[retire], t0,
                        release=release))
            if self._mid_faults:
                pairs = self._apply_mid_faults()
                if pairs:
                    retired = True
                    yield from emit(pairs)
            starved = False
            while True:
                fresh: List[int] = []
                while not exhausted and not starved \
                        and (slots is None or arena.n_live < slots):
                    # pull one intake burst, then admit it through one
                    # batched parse/validate/attach pass; quarantined
                    # and dropped entries free their budget for the
                    # outer loop's next burst
                    pulled: List[Tuple[int, object]] = []
                    while not exhausted and not starved and (
                            slots is None
                            or arena.n_live + len(pulled) < slots):
                        try:
                            if take is None:
                                nxt = next(it)
                            else:
                                # an open-but-empty source must not
                                # stall live chains: pull without
                                # blocking while anything can step or
                                # is already pulled, park only when
                                # the arena is fully drained
                                nxt = take(block=(arena.n_live == 0
                                                  and not pulled))
                        except Starved:
                            starved = True
                            break
                        except StopIteration:
                            exhausted = True
                            break
                        consumed += 1
                        # the stream index is consumed at pull time so
                        # every entry of the burst decides faults under
                        # its own index (dropped and quarantined
                        # entries keep theirs: gaps, never shifts);
                        # inline _next_ext — this runs once per entry
                        if self._ext_list is None:
                            idx = self._submitted
                            self._submitted += 1
                        else:
                            idx = self._next_ext()
                        if faults is not None:
                            kind = faults.decide(idx)
                            if kind == "crash":
                                self.stream_stats["fault_crashed"] += 1
                                if wal is not None:
                                    wal.append("fault", i=idx,
                                               kind="crash")
                                continue
                            if kind == "perturb":
                                try:
                                    c = self._as_chain(nxt)
                                except (ChainError, ValueError,
                                        TypeError) as exc:
                                    if not quarantine:
                                        raise
                                    yield from quar(idx, exc)
                                    continue
                                nxt = faults.mutate(idx, c.positions)
                                self.stream_stats["fault_perturbed"] += 1
                                if wal is not None:
                                    wal.append("fault", i=idx,
                                               kind="perturb")
                        pulled.append((idx, nxt))
                    if not pulled:
                        continue
                    batch_fresh, qpairs = self._admit_batch(
                        pulled, slots, quarantine)
                    if faults is not None:
                        for ci in batch_fresh:
                            mid = faults.decide_mid(self._ext_of[ci])
                            if mid is not None:
                                self._mid_faults[ci] = mid
                    fresh.extend(batch_fresh)
                    for idx, exc in qpairs:
                        yield from quar(idx, exc)
                if wal is not None and fresh:
                    # one record per intake burst, not per chain
                    wal.append("admit", i=[self._ext_of[ci] for ci in fresh],
                               row=fresh, n=[self._n0[ci] for ci in fresh],
                               cursor=consumed)
                if not fresh:
                    break
                cis = np.asarray(fresh, dtype=np.int64)
                _, gathered = arena.gathered_mask(cis)
                # fresh admissions sit at local round 0; only a
                # non-positive budget can retire them unstepped
                if max_rounds is None:
                    retire = gathered | (self._budgets[cis] <= 0)
                else:
                    retire = gathered | np.full(len(cis), max_rounds <= 0)
                if not retire.any():
                    break
                retired = True
                yield from emit(self._retire_batch(cis[retire],
                                                   gathered[retire], t0,
                                                   release=release))
            if retired and progress is not None:
                progress(done, self._submitted if exhausted else -1)
            if wal is not None \
                    and self.round_index - last_snap_round >= snapshot_every:
                snap()
                last_snap_round = self.round_index
            if arena.n_live == 0:
                if exhausted:
                    break
                # an admission source is open but starved and nothing
                # is live: loop back into the (now blocking) pull
                # instead of ending the stream — unreachable for plain
                # iterables, whose pull loop only stops on exhaustion
                continue
            self._maybe_compact_registry()
            try:
                self._step_round()
            except InvariantViolation as exc:
                # the violation is detected after the round's effects
                # are applied and logged; when it can be pinned to one
                # chain, quarantine mode retires that chain as an error
                # outcome and the rest of the fleet streams on
                ci = getattr(exc, "chain_index", None)
                if not quarantine or ci is None or not arena.live[ci]:
                    raise
                self._mid_faults.pop(ci, None)
                pair = self._quarantine_chain(ci, type(exc).__name__,
                                              str(exc), "round")
                self.round_index += 1
                yield from emit([pair])
                continue
            self.round_index += 1
        if wal is not None:
            wal.append("stream_end", r=self.round_index, done=done)
        self._wal = None

    # ------------------------------------------------------------------
    @classmethod
    def restore_stream(cls, wal_dir: str,
                       chains: Union[Sequence, object] = (),
                       progress: Optional[Callable[[int, int], None]] = None,
                       ext_indices: Optional[Sequence[int]] = None
                       ) -> Tuple["FleetKernel", object]:
        """Rebuild a crashed stream from its WAL directory.

        Restores the newest snapshot, fast-forwards the (freshly
        re-created) ``chains`` iterator to the recorded admission
        cursor, truncates any torn log tail and returns ``(kernel,
        generator)`` — the generator continues the stream through the
        one engine code path, so the continuation is bit-identical to
        the uninterrupted run; results delivered before the crash are
        re-executed but not re-yielded (yield records after the
        snapshot form the skip set).
        """
        from repro.core.faults import FaultPlan
        from repro.io.wal import WalReader, load_fleet_snapshot
        from repro.errors import WalError

        reader = WalReader(wal_dir)
        start = reader.stream_start()
        snap = reader.last_snapshot()
        if snap is None:
            raise WalError(f"{wal_dir}: no usable snapshot to resume from")
        kernel, stream = load_fleet_snapshot(reader.snapshot_path(snap))
        skip = reader.yields_after(snap["lsn"])
        consumed = int(stream["consumed"])
        it = iter(chains)
        for k in range(consumed):
            try:
                next(it)
            except StopIteration:
                raise WalError(
                    f"{wal_dir}: chain stream ended after {k} entries but "
                    f"the log recorded {consumed} consumed — resume needs "
                    f"the same stream the crashed run was fed") from None
        writer = reader.continue_writing()
        writer.append("resume", snapshot_lsn=snap["lsn"],
                      r=kernel.round_index)
        fd = start.get("faults")
        faults = FaultPlan.from_doc(fd) if fd else None
        if ext_indices is not None:
            kernel._ext_list = [int(x) for x in ext_indices]
            kernel._ext_pos = consumed
        mr = stream["max_rounds"]
        gen = kernel.run_stream(
            it, slots=stream["slots"],
            max_rounds=None if mr is None else int(mr),
            progress=progress, release=bool(stream["release"]),
            wal=writer, snapshot_every=int(stream["snapshot_every"]),
            faults=faults, on_error=str(stream.get("on_error", "raise")),
            _resume=(bool(stream["exhausted"]), int(stream["done"]),
                     consumed, skip))
        return kernel, gen

    @classmethod
    def resume(cls, wal_dir: str, chains: Union[Sequence, object] = (),
               progress: Optional[Callable[[int, int], None]] = None):
        """Continue an interrupted WAL stream; yields the remaining
        ``(stream_index, result)`` pairs exactly as the uninterrupted
        ``run_stream`` would have from the crash point onward.
        """
        return cls.restore_stream(wal_dir, chains, progress=progress)[1]

    # ------------------------------------------------------------------
    def _maybe_compact_registry(self) -> None:
        """Reclaim dead registry rows once admission churn dominates.

        Run rows are append-only within a round; a long stream would
        grow the matrix with every run ever started.  Between rounds —
        when no stage holds row numbers — the live rows re-pack to the
        prefix (relative age preserved, so behaviour is unchanged),
        keeping registry memory bounded by the live fleet.
        """
        reg = self.registry
        if reg.keep_stopped or reg.stopped:
            return                         # engine surface holds views
        if reg._count >= 1024 and len(reg._active) * 4 <= reg._count:
            reg.compact_rows()

    # ------------------------------------------------------------------
    def _retire_batch(self, cis: np.ndarray, gathered: np.ndarray,
                      t0: float, release: bool = False
                      ) -> List[Tuple[int, GatheringResult]]:
        """Retire finished chains: one registry drop, one arena pass.

        All finishing chains' registry rows leave in a single masked
        ``drop_slots`` and their arena slots return to the free list in
        one :meth:`ChainArena.retire_batch` sweep — the per-chain work
        left is exactly the result materialisation.  ``release`` drops
        the kernel's references to the retired chain and its report
        list (the stream consumer owns the yielded result).
        """
        arena = self.arena
        registry = self.registry
        cis = np.asarray(cis, dtype=np.int64)
        if self._mid_faults:
            for ci in cis.tolist():
                self._mid_faults.pop(ci, None)
        slots = registry.active_slots()
        if len(slots):
            drop = slots[np.isin(registry.chain_col[slots], cis)]
            if len(drop):
                registry.drop_slots(drop)
        wall = time.perf_counter() - t0
        out: List[Tuple[int, GatheringResult]] = []
        if self.slim_results:
            # shared-memory handoff: the final positions already sit in
            # the slab at [base, base + final_n) — skip the per-chain
            # cache settlement and tuple-list build entirely and let
            # the parent materialise the result from the shared cells
            for ci, g in zip(cis.tolist(), np.asarray(gathered).tolist()):
                self._ids_dirty.pop(ci, None)
                out.append((self._ext_of[ci], SlimResult(
                    gathered=bool(g),
                    rounds=self.round_index - int(self.birth[ci]),
                    initial_n=self._n0[ci],
                    final_n=int(arena.length[ci]),
                    base=int(arena.base[ci]))))
                if release:
                    self.reports[ci] = []
                    arena.chains[ci] = None  # type: ignore[call-overload]
            if self._wal is not None:
                self._wal.append("retire", r=self.round_index,
                                 c=cis.tolist(),
                                 i=[self._ext_of[ci]
                                    for ci in cis.tolist()],
                                 g=np.asarray(gathered, np.int64).tolist())
            arena.retire_batch(cis)
            return out
        for ci, g in zip(cis.tolist(), np.asarray(gathered).tolist()):
            self._sync_ids(ci)
            chain = arena.chains[ci]
            # the fleet-wide movement scatter leaves chain-level caches
            # to settle here, once per chain lifetime, not per round
            chain._pos_cache = None
            chain._codes_view_cache = None
            chain._codes_list_cache = None
            chain._invalid_edges = -1
            result = GatheringResult(
                gathered=bool(g),
                rounds=self.round_index - int(self.birth[ci]),
                initial_n=self._n0[ci],
                final_n=chain.n,
                final_positions=chain.positions,
                params=self.params,
                reports=self.reports[ci],
                trace=None,
                stalled=not g,
                wall_time=wall,
            )
            out.append((self._ext_of[ci], result))
            if release:
                self.reports[ci] = []
                arena.chains[ci] = None    # type: ignore[call-overload]
        if self._wal is not None:
            self._wal.append("retire", r=self.round_index,
                             c=cis.tolist(),
                             i=[self._ext_of[ci] for ci in cis.tolist()],
                             g=np.asarray(gathered, np.int64).tolist())
        arena.retire_batch(cis)
        return out

    # ------------------------------------------------------------------
    def _drop_runs(self, ci: int) -> None:
        """Drop every registry run riding chain ``ci`` (one masked pass)."""
        registry = self.registry
        slots = registry.active_slots()
        if len(slots):
            drop = slots[registry.chain_col[slots] == ci]
            if len(drop):
                registry.drop_slots(drop)

    def _quarantine_chain(self, ci: int, error: str, message: str,
                          stage: str) -> Tuple[int, ChainOutcome]:
        """Force-retire a live chain as a structured error outcome.

        The supervision tier's eviction path (§2.13): the chain's runs
        leave the registry, its arena slot returns to the free list and
        a ``quarantine`` record pins the eviction in the WAL — all
        deterministic, so resume and audit regenerate the exact same
        eviction.  Returns the ``(stream_index, outcome)`` pair for the
        idempotent yield protocol.
        """
        arena = self.arena
        self._drop_runs(ci)
        self._ids_dirty.pop(ci, None)
        ext = self._ext_of[ci]
        self.stream_stats["quarantined"] += 1
        if self._wal is not None:
            self._wal.append("quarantine", i=ext, r=self.round_index,
                             c=ci, stage=stage, error=error)
        self.reports[ci] = []
        arena.chains[ci] = None            # type: ignore[call-overload]
        arena.retire_batch(np.asarray([ci], dtype=np.int64))
        return ext, ChainOutcome(index=ext, error=error, message=message,
                                 stage=stage, quarantined=True)

    def _apply_mid_faults(self) -> List[Tuple[int, ChainOutcome]]:
        """Fire due mid-run robot faults at the between-round boundary.

        A chain whose local round has reached its seeded trigger either
        *crashes* (the whole chain of robots dies: quarantined as an
        error outcome) or *restarts* (volatile run state wiped, birth
        re-based so the gathering restarts from the current
        configuration).  Both are logged, so resume and audit replay
        them; entries for chains that retired normally first are
        dropped.
        """
        arena = self.arena
        out: List[Tuple[int, ChainOutcome]] = []
        for ci, (kind, trig) in sorted(self._mid_faults.items()):
            if not arena.live[ci]:
                del self._mid_faults[ci]
                continue
            local = self.round_index - int(self.birth[ci])
            if local < trig:
                continue
            del self._mid_faults[ci]
            if kind == "mid_restart":
                self._drop_runs(ci)
                self.birth[ci] = self.round_index
                self.stream_stats["mid_restarted"] += 1
                if self._wal is not None:
                    self._wal.append("fault", i=self._ext_of[ci],
                                     kind="mid_restart",
                                     r=self.round_index, c=ci)
                continue
            self.stream_stats["mid_crashed"] += 1
            out.append(self._quarantine_chain(
                ci, "FaultCrash",
                f"injected mid-run crash at local round {trig}", "fault"))
        return out

    # ------------------------------------------------------------------
    def _step_round(self) -> None:
        """One FSYNC round for every live chain (kernel-engine order)."""
        arena, registry, params = self.arena, self.registry, self.params
        round_index = self.round_index
        keep = self._keep
        if self._wal is not None:
            # one delta record per round, filled in by the pipeline
            # stages: mv = [chain, robot, dx, dy]*, rm = [chain,
            # removed_id]*, st = [chain, robot, dir, mode]*, tm =
            # [chain, stop_code]* — the audit form of the round's
            # effects (resume re-executes; it does not apply these).
            # All four ship as pack_ints blobs, not JSON int lists:
            # per-integer encoding dominated the WAL's overhead.
            self._wal_rec = {"mv": (), "rm": [], "st": (), "tm": ()}
        base = arena.base
        chains = arena.chains
        if self._single:
            # the single-segment tiers (per-chain detector, scalar
            # decisions, movement scatter) read the chain's Python-side
            # views; settle the deferred id bookkeeping first (no-op on
            # contraction-free rounds)
            self._sync_ids(0)
        live = arena.live_indices()
        live_list = live.tolist()
        n_before = dict(zip(live_list, arena.length[live].tolist()))
        if self._check:
            for ci in list(self._ids_dirty):
                self._sync_ids(ci)
            before = {ci: (chains[ci].ids_array().copy(),
                           chains[ci].positions_array().copy())
                      for ci in live_list}

        # (chain, stop-reason code) tallies for the round reports
        terminated: List[Tuple[int, int]] = []

        # 1-2. merge plan: fleet-wide RLE detection and planning (the
        # kernel engine's n >= 4 gate applies per chain).  A
        # single-segment arena routes through the per-chain detector
        # and planner (shared with the vectorised engine) — same plan,
        # a fraction of the gather indirection
        plan: Optional[FleetMergePlan] = None
        part_flat: Optional[np.ndarray] = None
        if self._single:
            if arena.length[0] >= 4:
                plan = self._merge_plan_single(params.effective_k_max)
        else:
            eligible = np.zeros(len(chains), dtype=bool)
            eligible[live] = arena.length[live] >= 4
            cand = _fleet_merge_candidates(arena, eligible,
                                           params.effective_k_max) \
                if eligible.any() else None
            if cand is not None:
                plan = _fleet_plan_merges(arena, *cand)
        if plan is not None:
            part_flat = plan.part_flat

        # 3, 5-6. run decisions, fused with their registry application ------
        dec = self._decide(part_flat, round_index)
        terminated.extend(dec.terminated)

        # 4. run starts (every L-th *local* round; mid-run admission
        # staggers the phase per chain, so the scan carries a chain
        # eligibility mask whenever the fleet is out of phase) ----------
        starts: Optional[FleetStarts] = None
        if self._single:
            do_starts = round_index % params.start_interval == 0
            start_mask = None
        else:
            ph = (round_index - self.birth[live]) % params.start_interval == 0
            do_starts = bool(ph.any())
            start_mask = None
            if do_starts and not ph.all():
                start_mask = np.zeros(len(chains), dtype=bool)
                start_mask[live[ph]] = True
        if do_starts:
            starts = _fleet_run_starts(arena, start_mask)
            if starts is not None and part_flat is not None:
                # merge participants never start runs (Table 1.3); the
                # candidate cells are snapshot cells, so the mask
                # applies by direct global-cell lookup
                keep_start = ~part_flat[starts[0]]
                if not keep_start.all():
                    starts = tuple(s[keep_start] for s in starts)

        # 6'. simultaneous movement: merge hops + accepted runner hops.
        # Single-segment arenas scatter through the chain's adaptive
        # incremental-code path (scalar below ~32 movers); multi-chain
        # fleets take the arena-wide scatter
        pidx = plan.hop_gidx if plan is not None else _EMPTY_CELLS
        didx = dec.move_gidx
        if not len(pidx):
            move_g, move_v = didx, dec.move_deltas
            move_c = dec.move_chain
        elif not len(didx):
            move_g, move_v, move_c = pidx, plan.hop_vec, plan.hop_chain
        else:
            move_g = np.concatenate(
                [pidx, np.asarray(didx, dtype=np.int64)])
            move_v = np.concatenate(
                [plan.hop_vec,
                 np.asarray(dec.move_deltas, dtype=np.int64).reshape(-1, 2)])
            move_c = np.concatenate(
                [plan.hop_chain, np.asarray(dec.move_chain, dtype=np.int64)])
        if self._wal_rec is not None and len(move_g):
            # captured before the scatter: ids are only rewritten by
            # the later contraction, and a single segment's chain
            # indices are its global cells, so arena.ids[move_g] is
            # the mover's robot id on both paths
            mg = np.asarray(move_g, dtype=np.int64)
            self._wal_rec["mv"] = np.column_stack(
                [np.asarray(move_c, dtype=np.int64), arena.ids[mg],
                 np.asarray(move_v, dtype=np.int64).reshape(-1, 2)]
            ).ravel()
        if self._single:
            chain0 = chains[0]
            if len(move_g):
                chain0.apply_moves_indexed(move_g, move_v)
                # the dense tier defers its re-encode; settle it into
                # the arena's code slice before any fleet-wide read
                chain0.edge_codes()
                zero_cells = np.flatnonzero(chain0._codes_cache == -1) \
                    if chain0._invalid_edges else _EMPTY_CELLS
            else:
                zero_cells = _EMPTY_CELLS
        else:
            move_g = np.asarray(move_g, dtype=np.int64)
            move_v = np.asarray(move_v, dtype=np.int64).reshape(-1, 2)
            move_c = np.asarray(move_c, dtype=np.int64)
            zero_cells = arena.apply_moves(move_g, move_v, move_c)

        # 7-8. contraction + run/target removal, fleet-wide -----------------
        merges_by_chain: Dict[int, List[MergeRecord]] = {}
        if len(zero_cells):
            self._contract_fleet(zero_cells, move_g, move_c,
                                 merges_by_chain, terminated)

        # 9. move surviving runs one robot along their direction ------------
        # adaptive like the decision stage: on contraction-free rounds
        # of a single-segment arena with few runs, the chain views are
        # still fresh and a scalar sweep beats the array dispatch
        moved = None
        threshold = NUMPY_MIN_RUNS if self.numpy_min_runs is None \
            else self.numpy_min_runs
        if self._single and not self._check and not len(zero_cells) \
                and len(registry._active) < threshold:
            chain0 = chains[0]
            crowded = registry.advance_active(chain0.ids_view(),
                                              chain0.index_map())
        else:
            moved, crowded = registry.advance_fleet(
                base, arena.length, arena.ids, arena.index,
                collect_moved=self._check, scratch=arena.scratch)
        # contraction can push two same-direction runs onto one robot; a
        # robot cannot tell them apart, so the younger run dissolves.
        if crowded:
            terminated.extend(self._dissolve_duplicates(round_index))

        # 10. create the new runs decided in step 4 -------------------------
        started: Dict[int, int] = {}
        if starts is not None:
            self._apply_starts(starts, round_index, started)

        # 11. reports -------------------------------------------------------
        if keep:
            self._build_reports(live_list, n_before, plan, merges_by_chain,
                                move_c, terminated, dec.conflicts, started,
                                round_index)

        # 12. round delta record (durability tier) --------------------------
        # appended *before* the invariant pass: the round's effects are
        # already applied, so the log must carry them even when a check
        # below fails and the offending chain is quarantined (§2.13) —
        # a torn audit trail would make the violation unreproducible
        if self._wal_rec is not None:
            from repro.io.wal import pack_ints
            rec = self._wal_rec
            self._wal_rec = None
            self._wal.append(
                "round", r=round_index,
                mv=pack_ints(rec["mv"]), rm=pack_ints(rec["rm"]),
                st=pack_ints(rec["st"]),
                tm=pack_ints([x for t in terminated for x in t]))

        # 13. invariants ----------------------------------------------------
        if self._check:
            self._check_invariants(live_list, before, moved)

    # ------------------------------------------------------------------
    def _merge_plan_single(self, k_max: int) -> Optional[FleetMergePlan]:
        """Merge stage of a single-segment arena via the per-chain path.

        Runs the vectorised engine's detector and the shared
        :func:`~repro.core.merges.plan_merges_arrays` planner over the
        one chain (identical plans to the fleet-wide scan, pinned by
        the conformance suite) and lifts the result into fleet terms —
        a single segment's chain indices are its global cells, so the
        lift is a handful of wrappers, not a copy.
        """
        chain = self.arena.chains[0]
        patterns = find_merge_patterns_np(chain.positions_view(), k_max,
                                          codes=chain.edge_codes(),
                                          codes_list=chain.edge_codes_list())
        if not patterns:
            return None
        kplan = plan_merges_arrays(patterns, chain.n)
        hop_gidx = np.asarray(kplan.hop_idx, dtype=np.int64)
        hop_vec = np.asarray(kplan.hop_vec,
                             dtype=np.int64).reshape(-1, 2)
        exec_count = np.array([len(kplan.patterns)], dtype=np.int64)
        conflicts = {0: kplan.conflicts} if kplan.conflicts else {}
        return FleetMergePlan(kplan.part_mask, hop_gidx, hop_vec,
                              np.zeros(len(hop_gidx), dtype=np.int64),
                              exec_count, conflicts)

    # ------------------------------------------------------------------
    def _decide(self, part_flat: Optional[np.ndarray],
                round_index: int) -> FleetDecisions:
        """Decision stage, adaptive on single-segment arenas.

        A fleet of one small chain (the kernel engine's substrate) has
        too few runs to amortise the NumPy dispatch; below the
        crossover it runs the scalar fold and lifts the outcome into
        fleet terms (a single segment's chain indices *are* its global
        cells).  Every multi-chain fleet takes the NumPy path.
        """
        registry = self.registry
        n_runs = len(registry._active)
        threshold = NUMPY_MIN_RUNS if self.numpy_min_runs is None \
            else self.numpy_min_runs
        if not (self._single and 0 < n_runs < threshold):
            return decide_and_apply_fleet(self.arena, registry, self.params,
                                          part_flat, round_index)
        # chain views are coherent: _step_round synced the segment
        adec = decide_and_apply_scalar(self.arena.chains[0], registry,
                                       self.params, part_flat, round_index)
        terminated = [(0, code) for code, count in adec.terminated.items()
                      for _ in range(count)]
        conflicts = {0: adec.runner_hop_conflicts} \
            if adec.runner_hop_conflicts else {}
        return FleetDecisions(terminated, adec.move_idx, adec.move_deltas,
                              [0] * len(adec.move_idx), conflicts)

    # ------------------------------------------------------------------
    def _sync_ids(self, ci: int) -> None:
        """Re-point a chain's Python-side state at its (shrunk) segment.

        The fleet contraction defers all O(n) per-chain bookkeeping —
        the id list/index rebuild *and* the view/cache re-pointing
        (the flat tables are already exact); it is required only where
        per-chain Python state is actually read: every round of a
        single-segment arena, retirement, and invariant checking.
        ``_invalid_edges`` settles to 0 because sync points sit at
        round starts, where the previous round's contraction has
        cleared every zero edge.

        When the contraction recorded a *splice plan* (single-segment
        arenas do — one round's worth of removed positions and
        survivor overwrites), the live tuple/code/id caches are edited
        in place: a handful of C-level ``del``/assignments instead of
        three O(n) list rebuilds per merge round, which is what keeps
        the merge-dense single-chain path at the old spliced-chain
        speed.
        """
        info = self._ids_dirty.pop(ci, False)
        if info is False:
            return
        arena = self.arena
        chain = arena.chains[ci]
        b = int(arena.base[ci])
        n = int(arena.length[ci])
        chain._arr = arena.pos[b:b + n]
        buf = arena.codes[b:b + n]
        chain._codes_buf = buf
        chain._codes_cache = buf
        chain._codes_view_cache = None
        chain._invalid_edges = 0
        if info is not None:
            drop_pos = info["drop_pos"]
            cl = chain._codes_list_cache
            if cl is not None:
                for e in reversed(info["drop_edges"]):
                    del cl[e]
            pc = chain._pos_cache
            if pc is not None:
                for p in reversed(drop_pos):
                    del pc[p]
            ids = chain._ids
            for p, rid in zip(info["over_pos"], info["over_ids"]):
                ids[p] = rid
            for p in reversed(drop_pos):
                del ids[p]
        else:
            chain._codes_list_cache = None
            chain._pos_cache = None
            chain._ids = arena.ids[b:b + n].tolist()
        chain._rebuild_index()

    # ------------------------------------------------------------------
    def _contract_fleet(self, zero_cells: np.ndarray, move_g: np.ndarray,
                        move_c: np.ndarray,
                        merges_by_chain: Dict[int, List[MergeRecord]],
                        terminated: List[Tuple[int, int]]) -> None:
        """Kernel steps 7-8 fleet-wide: merge coincident neighbours and
        terminate the runs that lost their carrier or target.

        ``zero_cells`` are the round's coincident neighbour pairs (one
        zero edge each, ascending).  Blocks of co-located robots fold
        as one segmented-minimum pass over the merge events: the
        reference survivor rule ("the mover survives; tie → lower id")
        is a total order on block members, so the block survivor is
        the key-minimum and every event's removed robot falls out of a
        segmented inclusive prefix minimum — no per-event Python.
        Everything structural — dropping merged robots, compacting
        each segment prefix, deleting the zero edge codes, refreshing
        the id → index table — is one batch of array passes over the
        contracting chains only.  A chain whose *wrap* edge went zero
        (robot n-1 meets robot 0) resolves after its interior blocks:
        once consecutive survivors are distinct, the reference wrap
        loop performs at most one merge, done here with a few array
        assignments per wrap chain.
        """
        arena = self.arena
        registry = self.registry
        base = arena.base
        length = arena.length
        chains = arena.chains
        pos = arena.pos
        ids_flat = arena.ids
        keep_recs = self._keep
        round_index = self.round_index

        zch = arena.owner[zero_cells]
        wrap = (zero_cells - base[zch]) == length[zch] - 1
        if wrap.any():
            # the wrap pair resolves last (reference scan order); its
            # chain's interior zeros still take the batch path below
            wrap_cis = _sorted_unique(zch[wrap])
            zf = zero_cells[~wrap]
            zcf = zch[~wrap]
        else:
            wrap_cis = None
            zf, zcf = zero_cells, zch

        # moved-robot membership in id space (survivor rule input)
        moved_flat = arena.scratch.take("contract_moved", arena.span, bool,
                                        fill=False)
        if len(move_g):
            moved_flat[base[move_c] + ids_flat[move_g]] = True

        wrap_removed: List[int] = []
        removed_interior = _EMPTY_CELLS
        contracted: List[int] = []

        if len(zf):
            # --- survivor rule, one segmented-minimum pass -------------
            # events partition into blocks of consecutive zero edges
            # (runs of co-located robots); the pairwise fold "mover
            # wins, tie -> lower id" is a total order with key
            # (not-moved, id), so the survivor of any prefix is its
            # key-minimum.  An offset-staircase cumulative minimum
            # resets at block boundaries (earlier blocks sit on
            # strictly larger offsets), yielding every event's running
            # survivor — and its removed robot as the pairwise loser —
            # without per-event Python.
            m = len(zf)
            blk_first = np.empty(m, dtype=bool)
            blk_first[0] = True
            np.logical_or(zf[1:] != zf[:-1] + 1, zcf[1:] != zcf[:-1],
                          out=blk_first[1:])
            blk_id = np.cumsum(blk_first) - 1
            first_idx = np.flatnonzero(blk_first)
            span = arena.span
            ev_base = base[zcf]
            top_cells = zf[first_idx]
            top_ids = ids_flat[top_cells]
            nxt_ids = ids_flat[zf + 1]
            top_key = np.where(moved_flat[ev_base[first_idx] + top_ids],
                               0, span) + top_ids
            nxt_key = np.where(moved_flat[ev_base + nxt_ids],
                               0, span) + nxt_ids
            nblk = len(first_idx)
            off = (nblk - blk_id) * (2 * span + 2)
            run_min = np.minimum.accumulate(nxt_key + off) - off
            pm = np.minimum(run_min, top_key[blk_id])   # running survivor
            prev_pm = np.empty(m, dtype=np.int64)
            prev_pm[1:] = pm[:-1]
            prev_pm[first_idx] = top_key
            removed_ids = np.maximum(prev_pm, nxt_key) % span
            removed_interior = ev_base + removed_ids
            if self._wal_rec is not None:
                self._wal_rec["rm"] = np.column_stack(
                    [zcf, removed_ids]).ravel().tolist()
            last_idx = np.empty(nblk, dtype=np.int64)
            last_idx[:-1] = first_idx[1:] - 1
            last_idx[-1] = m - 1
            ids_flat[top_cells] = pm[last_idx] % span   # block survivors

            if keep_recs:
                # merge records materialise from the computed arrays
                # (per-event survivor, loser, shared block position)
                zchl = zcf.tolist()
                surv_l = (pm % span).tolist()
                rem_l = removed_ids.tolist()
                pxl = pos[zf, 0].tolist()
                pyl = pos[zf, 1].tolist()
                for ci, s, r, x, y in zip(zchl, surv_l, rem_l, pxl, pyl):
                    merges_by_chain.setdefault(ci, []).append(
                        MergeRecord(s, r, (x, y)))

            # --- batch segment compaction over the contracting chains --
            zero_flag = arena.scratch.take("contract_zero", arena.span, bool,
                                           fill=False)
            zero_flag[zf] = True
            cis = _sorted_unique(zcf)
            lens_old = length[cis]
            total = int(lens_old.sum())
            rep = np.repeat(np.arange(len(cis), dtype=np.int64), lens_old)
            within = np.arange(total, dtype=np.int64) - \
                np.repeat(np.cumsum(lens_old) - lens_old, lens_old)
            cell = base[cis][rep] + within
            seg_first = within == 0
            # a robot merges away exactly when the edge before it is zero
            drop = zero_flag[cell - 1]
            drop[seg_first] = False
            shift = np.cumsum(drop) - drop
            shift -= np.repeat(shift[seg_first], lens_old)
            kr = np.flatnonzero(~drop)
            dst = base[cis][rep[kr]] + within[kr] - shift[kr]
            pos[dst] = pos[cell[kr]]
            ids_flat[dst] = ids_flat[cell[kr]]
            # the fused edge keeps the following edge's code: deleting
            # the -1 entries is exactly the reference np.delete carry
            ke = np.flatnonzero(~zero_flag[cell])
            eshift = np.cumsum(zero_flag[cell]) - zero_flag[cell]
            eshift -= np.repeat(eshift[seg_first], lens_old)
            arena.codes[base[cis][rep[ke]] + within[ke] - eshift[ke]] = \
                arena.codes[cell[ke]]
            # id -> index table: removed ids out, survivors re-ranked
            arena.index[removed_interior] = -1
            arena.index[base[cis][rep[kr]] + ids_flat[dst]] = \
                within[kr] - shift[kr]
            length[cis] = lens_old - np.bincount(
                zcf, minlength=len(chains))[cis]
            # per-chain Python state (view re-pointing, id list/dict
            # rebuild) defers wholesale to _sync_ids.  A single-segment
            # arena — synced every round, so never already dirty —
            # records the round's splice plan instead: _sync_ids then
            # edits the live caches in place rather than rebuilding
            cis_list = cis.tolist()
            if self._single and 0 not in self._ids_dirty:
                b0 = int(base[0])
                self._ids_dirty[0] = {
                    "drop_edges": (zf - b0).tolist(),
                    "drop_pos": (zf - b0 + 1).tolist(),
                    "over_pos": (top_cells - b0).tolist(),
                    "over_ids": (pm[last_idx] % span).tolist(),
                }
            else:
                for c in cis_list:
                    self._ids_dirty[c] = None
            contracted.extend(cis_list)

        # --- wrap-around pairs: after the interior collapse no two
        # consecutive survivors coincide, so the reference wrap loop
        # performs at most one merge — the tail survivor against the
        # head survivor — resolved here with a handful of array ops
        # per wrap chain instead of a full rescan ------------------------
        if wrap_cis is not None:
            codes = arena.codes
            for ci in wrap_cis.tolist():
                b = int(base[ci])
                nl = int(length[ci])
                if nl <= 1:
                    continue
                t_cell = b + nl - 1
                t_id = int(ids_flat[t_cell])
                h_id = int(ids_flat[b])
                a_m = moved_flat[b + t_id]
                b_m = moved_flat[b + h_id]
                keep_first = a_m if a_m != b_m else t_id < h_id
                p = (int(pos[t_cell, 0]), int(pos[t_cell, 1]))
                if keep_first:
                    removed = h_id
                    # drop the head entry: the segment shifts left and
                    # the new wrap edge inherits the old lead edge
                    pos[b:t_cell] = pos[b + 1:t_cell + 1].copy()
                    ids_flat[b:t_cell] = ids_flat[b + 1:t_cell + 1].copy()
                    lead = int(codes[b])
                    codes[b:t_cell - 1] = codes[b + 1:t_cell].copy()
                    codes[t_cell - 1] = lead
                    idx_seg = arena.index[b:b + int(arena.n0[ci])]
                    idx_seg[:] = -1
                    idx_seg[ids_flat[b:t_cell]] = \
                        np.arange(nl - 1, dtype=np.int64)
                    if keep_recs:
                        merges_by_chain.setdefault(ci, []).append(
                            MergeRecord(t_id, h_id, p))
                else:
                    removed = t_id
                    # drop the tail entry: the zero wrap edge vanishes
                    # and everything else stays in place
                    arena.index[b + t_id] = -1
                    if keep_recs:
                        merges_by_chain.setdefault(ci, []).append(
                            MergeRecord(h_id, t_id, p))
                if self._wal_rec is not None:
                    self._wal_rec["rm"].extend((ci, removed))
                wrap_removed.append(b + removed)
                length[ci] = nl - 1
                self._ids_dirty[ci] = None   # wrap shuffles; full rebuild
                contracted.append(ci)

        if contracted:
            # one suffix splice covers every contracted chain, now
            # that each length is final (interior and wrap alike)
            arena.topo_contract(np.asarray(contracted, dtype=np.int64))

        if not len(removed_interior) and not wrap_removed:
            return

        # --- Table 1.3 runner loss: runs whose carrier merged away -----
        removed_arr = np.concatenate(
            [removed_interior,
             np.asarray(wrap_removed, dtype=np.int64)]) \
            if wrap_removed else removed_interior
        slots = registry.active_slots()
        if len(slots):
            cc = registry.chain_col[slots]
            dead = np.flatnonzero(
                np.isin(base[cc] + registry.robot[slots], removed_arr))
            if len(dead):
                registry.stop_slots(
                    slots[dead],
                    np.full(len(dead), _STOP_RUNNER_REMOVED, np.int64),
                    round_index)
                for ci in cc[dead].tolist():
                    terminated.append((ci, _STOP_RUNNER_REMOVED))

        # --- Table 1.4/1.5: passing/travel targets merged away ---------
        slots = registry.active_slots()
        if len(slots):
            cc = registry.chain_col[slots]
            rows = np.flatnonzero(np.isin(cc, np.asarray(contracted)))
            if len(rows):
                targets = registry.target[slots[rows]]
                has_t = targets >= 0
                gone = has_t.copy()
                gone[has_t] = arena.index[
                    base[cc[rows[has_t]]] + targets[has_t]] < 0
                hit = rows[np.flatnonzero(gone)]
                if len(hit):
                    hs = slots[hit]
                    reasons = np.where(
                        registry.mode_code[hs] == MODE_PASSING,
                        _STOP_PASSING_TARGET, _STOP_TRAVEL_TARGET)
                    registry.stop_slots(hs, reasons, round_index)
                    for ci, code in zip(cc[hit].tolist(), reasons.tolist()):
                        terminated.append((ci, int(code)))

    # ------------------------------------------------------------------
    def _dissolve_duplicates(self, round_index: int
                             ) -> List[Tuple[int, int]]:
        """Duplicate-direction sweep over the fleet registry.

        Mirrors the kernel engine's crowded-run loop with robots keyed
        fleet-uniquely (``base + robot_id``); groups never span chains,
        so the per-chain dissolution order matches exactly.
        """
        registry = self.registry
        arena = self.arena
        slots = registry.active_slots()
        cc = registry.chain_col[slots]
        keys = arena.base[cc] + registry.robot[slots]
        by_robot: Dict[int, List[int]] = {}
        for s, k in zip(slots.tolist(), keys.tolist()):
            by_robot.setdefault(k, []).append(s)
        crowded = sorted(s for group in by_robot.values()
                         if len(group) > 1 for s in group)
        key_of = dict(zip(slots.tolist(), keys.tolist()))
        dirn = registry.dirn
        stopped: set = set()
        out: List[Tuple[int, int]] = []
        for s in crowded:
            if s in stopped:
                continue
            d = dirn[s]
            twins = [x for x in by_robot[key_of[s]]
                     if x not in stopped and dirn[x] == d]
            if len(twins) > 1:
                youngest = max(twins)
                registry.stop_slot(youngest, _STOP_DUPLICATE, round_index)
                stopped.add(youngest)
                out.append((int(registry.chain_col[youngest]),
                            _STOP_DUPLICATE))
        return out

    # ------------------------------------------------------------------
    def _apply_starts(self, starts: FleetStarts, round_index: int,
                      started: Dict[int, int]) -> None:
        """Kernel step 10 fleet-wide: capacity-checked run creation.

        The per-robot capacity rule (at most two runs, never two with
        one direction) vectorises: the scan yields at most one
        candidate per direction per robot, so the reference registry's
        dynamic check reduces to "no same-direction run yet, and fewer
        than two existing runs" — one scatter of the live registry
        rows, no per-candidate Python.
        """
        registry = self.registry
        arena = self.arena
        base = arena.base
        _, ci, rid, dirs, modes, axc = starts
        keys = base[ci] + rid
        # robots merged away this round fail the index lookup
        accept = arena.index[keys] >= 0
        slots = registry.active_slots()
        if len(slots):
            ekeys = base[registry.chain_col[slots]] + registry.robot[slots]
            counts = arena.scratch.take("start_counts", arena.span,
                                        np.int64, fill=0)
            np.add.at(counts, ekeys, 1)
            fwd_on = arena.scratch.take("start_fwd", arena.span, bool,
                                        fill=False)
            bwd_on = arena.scratch.take("start_bwd", arena.span, bool,
                                        fill=False)
            ed = registry.dirn[slots]
            fwd_on[ekeys[ed == 1]] = True
            bwd_on[ekeys[ed != 1]] = True
            accept &= counts[keys] <= 1
            accept &= ~np.where(dirs == 1, fwd_on[keys], bwd_on[keys])
        hit = np.flatnonzero(accept)
        if len(hit) == 0:
            return
        rows = np.empty((len(hit), 6), dtype=np.int64)
        rows[:, 0] = ci[hit]
        rows[:, 1] = rid[hit]
        rows[:, 2] = dirs[hit]
        rows[:, 3] = modes[hit]
        rows[:, 4:6] = _DIR_TABLE[axc[hit]]
        if self._wal_rec is not None:
            self._wal_rec["st"] = rows[:, :4].ravel()
        registry.start_fleet_bulk(rows, round_index)
        per = np.bincount(ci[hit])
        for c in np.flatnonzero(per).tolist():
            started[c] = int(per[c])

    # ------------------------------------------------------------------
    def _build_reports(self, live_list: List[int], n_before: Dict[int, int],
                       plan: Optional[FleetMergePlan],
                       merges_by_chain: Dict[int, List[MergeRecord]],
                       move_c: np.ndarray,
                       terminated: List[Tuple[int, int]],
                       conflicts: Dict[int, int],
                       started: Dict[int, int], round_index: int) -> None:
        """Assemble per-chain RoundReports identical to the kernel's."""
        registry = self.registry
        n_chains = len(self.arena.chains)
        if n_chains == 1:                  # fleet-of-one: no bincounts
            hops = (len(move_c),)
            active = (len(registry._active),)
        else:
            hops = np.bincount(move_c, minlength=n_chains) if len(move_c) \
                else np.zeros(n_chains, dtype=np.int64)
            slots = registry.active_slots()
            active = np.bincount(registry.chain_col[slots],
                                 minlength=n_chains) if len(slots) \
                else np.zeros(n_chains, dtype=np.int64)
        term_by_chain: Dict[int, Dict[StopReason, int]] = {}
        for ci, code in terminated:
            d = term_by_chain.setdefault(ci, {})
            reason = StopReason(code)
            d[reason] = d.get(reason, 0) + 1
        length = self.arena.length
        birth = self.birth
        for ci in live_list:
            self.reports[ci].append(RoundReport(
                round_index=round_index - int(birth[ci]),
                n_before=n_before[ci],
                n_after=int(length[ci]),
                hops=int(hops[ci]),
                merge_patterns=int(plan.exec_count[ci])
                if plan is not None else 0,
                merges=merges_by_chain.get(ci, []),
                runs_started=started.get(ci, 0),
                runs_terminated=term_by_chain.get(ci, {}),
                active_runs=int(active[ci]),
                merge_conflicts=plan.conflicts.get(ci, 0)
                if plan is not None else 0,
                runner_hop_conflicts=conflicts.get(ci, 0)))

    # ------------------------------------------------------------------
    def _check_invariants(self, live_list: List[int], before: Dict,
                          moved) -> None:
        """Per-chain model invariants over the fleet state."""
        registry = self.registry
        arena = self.arena
        # the delta-maintained topology must equal a from-scratch
        # rebuild every round (DESIGN.md §2.14) — the cross-check that
        # catches a bad splice the same round it happens
        arena.verify_topology()
        for ci in list(self._ids_dirty):
            self._sync_ids(ci)
        if not self._single:
            # the fleet-wide movement scatter leaves the per-chain
            # tuple caches stale (they settle at sync/retire); the
            # connectivity check reads them, so drop them here
            for ci in live_list:
                arena.chains[ci]._pos_cache = None
        slots = registry.active_slots()
        cc = registry.chain_col[slots] if len(slots) else slots
        for ci in live_list:
            chain = arena.chains[ci]
            ids_b, pos_b = before[ci]
            try:
                invariants.check_connectivity(chain)
                invariants.check_monotone_count(len(ids_b), chain.n)
                invariants.check_hop_lengths_arrays(
                    ids_b, pos_b, chain.ids_array(),
                    chain.positions_array())
                if len(slots):
                    mine = registry.robot[slots[cc == ci]]
                    if len(mine):
                        idx = chain.index_array()
                        if (idx[mine] < 0).any():
                            raise InvariantViolation(
                                f"fleet chain {ci}: run rides removed "
                                f"robot")
                        # sorted-boundary triple check (a value repeated
                        # 3x sits 2 apart in sorted order) — same dedup
                        # idiom as the contraction sweeps, no np.unique
                        # hash pass
                        srt = np.sort(mine)
                        if len(srt) > 2 and (srt[2:] == srt[:-2]).any():
                            raise InvariantViolation(
                                f"fleet chain {ci}: robot carries more "
                                f"than two runs")
            except InvariantViolation as exc:
                # pin the violation to its chain so quarantine mode can
                # evict exactly the offender (§2.13)
                exc.chain_index = ci
                raise
        if moved is not None:
            mc, old, new, dirs = moved
            for ci in _sorted_unique(np.sort(mc)).tolist():
                if not arena.live[ci]:
                    continue
                rows = mc == ci
                try:
                    invariants.check_run_speed(
                        arena.chains[ci],
                        list(zip(old[rows].tolist(), new[rows].tolist(),
                                 dirs[rows].tolist())))
                except InvariantViolation as exc:
                    exc.chain_index = ci
                    raise


def gather_fleet(chains: Sequence[Union[ClosedChain, Sequence[Vec]]],
                 params: Parameters = DEFAULT_PARAMETERS,
                 check_invariants: bool = False,
                 keep_reports: bool = True,
                 max_rounds: Optional[int] = None,
                 validate_initial: bool = True,
                 progress: Optional[Callable[[int, int], None]] = None
                 ) -> List[GatheringResult]:
    """Gather a fleet in one shared-array pass (convenience API)."""
    fleet = FleetKernel(chains, params=params,
                        check_invariants=check_invariants,
                        keep_reports=keep_reports,
                        validate_initial=validate_initial)
    return fleet.run(max_rounds=max_rounds, progress=progress)
