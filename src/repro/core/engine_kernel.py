"""The kernel engine: the whole FSYNC round pipeline on arrays.

Third engine variant (after ``"reference"`` and ``"vectorized"``,
DESIGN.md §2.9).  Where the vectorised engine replaced the two
per-snapshot scans and kept the reference pipeline, the kernel engine
executes every stage of :meth:`repro.core.engine.Engine.step` in bulk:

* merge planning over chain indices (:func:`plan_merges_arrays` —
  black expansion, short-pattern priority and Fig. 3 overlap
  resolution as array passes);
* the per-run decision stage fused with its state application
  (:mod:`repro.core.decisions_vectorized` — no per-robot Python in the
  common case, reference-grammar/ per-window fallback on flagged rare
  rows only);
* movement as one indexed scatter (:meth:`ClosedChain.apply_moves_indexed`),
  terminations as masked bulk stops over the registry's
  struct-of-arrays state, and the run advancement as a single gathered
  assignment (:meth:`RunRegistry.advance_slots`).

The rounds it produces are bit-identical to the reference engine —
property-tested trace-for-trace and report-for-report in
``tests/test_kernel_engine.py``.

Scheduler compatibility: a subclass overriding
:meth:`~repro.core.engine.Engine._select_moves` (the SSYNC hook) is
detected at construction and routed through the legacy ``Dict[int,
Vec]`` movement path, so activation policies keep working at the cost
of the dict round-trip.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.grid.lattice import Vec
from repro.core.chain import ClosedChain
from repro.core.config import Parameters
from repro.core.decisions_vectorized import NUMPY_MIN_RUNS, decide_and_apply
from repro.core.engine import Engine
from repro.core.engine_vectorized import find_merge_patterns_np, scan_run_starts
from repro.core.events import RoundReport, Trace
from repro.core.merges import KernelMergePlan, plan_merges_arrays
from repro.core.patterns import RunStart
from repro.core.runs import (
    MODE_PASSING,
    RunMode,
    StopReason,
)
from repro.core import invariants

_STOP_RUNNER_REMOVED = StopReason.RUNNER_REMOVED.value
_STOP_PASSING_TARGET = StopReason.PASSING_TARGET_REMOVED.value
_STOP_TRAVEL_TARGET = StopReason.TRAVEL_TARGET_REMOVED.value
_STOP_DUPLICATE = StopReason.DUPLICATE_DIRECTION.value

def _numpy_min(override: Optional[int]) -> int:
    """The engine's scalar/NumPy crossover (shared with the decisions)."""
    return NUMPY_MIN_RUNS if override is None else override


class _LazyMovedIds:
    """Moved-robot id set, materialised on first membership probe.

    Contraction consults the moved set only when a coincident pair
    exists, so merge-free rounds never pay for building it.
    """

    __slots__ = ("_chain", "_move_idx", "_set")

    def __init__(self, chain: ClosedChain, move_idx):
        self._chain = chain
        self._move_idx = move_idx
        self._set = None

    def _materialise(self) -> set:
        s = self._set
        if s is None:
            idx = self._move_idx
            if isinstance(idx, np.ndarray):
                s = set(self._chain.ids_array()[idx].tolist())
            else:
                ids = self._chain.ids_view()
                s = {ids[i] for i in idx}
            self._set = s
        return s

    def __contains__(self, robot_id: int) -> bool:
        return robot_id in self._materialise()

    def __bool__(self) -> bool:
        return len(self._move_idx) > 0


class KernelEngine(Engine):
    """Array-native FSYNC engine (behaviourally identical to reference).

    Parameters match :class:`~repro.core.engine.Engine`; the merge
    detector and run-start scanner are fixed to the vectorised
    implementations.  ``numpy_min_runs`` overrides the decision stage's
    adaptive scalar/NumPy threshold (tests pin it to force one path).
    """

    def __init__(self, chain: ClosedChain, params: Parameters,
                 check_invariants: bool = True,
                 trace: Optional[Trace] = None,
                 numpy_min_runs: Optional[int] = None):
        super().__init__(chain, params,
                         merge_detector=find_merge_patterns_np,
                         start_scanner=scan_run_starts,
                         check_invariants=check_invariants,
                         trace=trace)
        self.numpy_min_runs = numpy_min_runs
        self._legacy_select = \
            type(self)._select_moves is not Engine._select_moves
        # (patterns, plan) of the previous round, carried over only when
        # that round changed nothing (no hop applied, no contraction):
        # the snapshot codes are then identical and the detector — a
        # pure function of them — would reproduce the same output
        self._static_merge: Optional[Tuple[List, Optional[KernelMergePlan]]] \
            = None

    # ------------------------------------------------------------------
    def step(self) -> RoundReport:
        """Execute one full FSYNC round and return its report."""
        chain, params, registry = self.chain, self.params, self.registry
        round_index = self.round_index
        n0 = chain.n
        if self.trace is not None:
            self.trace.record_snapshot(self.snapshot())
        if self._check:
            ids_before = chain.ids_array().copy()
            pos_before = chain.positions_array().copy()

        # 1-2. merge plan ---------------------------------------------------
        mplan: Optional[KernelMergePlan] = None
        patterns: List = []
        if n0 >= 4:
            if self._static_merge is not None:
                patterns, mplan = self._static_merge
            else:
                patterns = self._detector(chain.positions_view(),
                                          params.effective_k_max,
                                          codes=chain.edge_codes(),
                                          codes_list=chain.edge_codes_list())
                if patterns:
                    mplan = plan_merges_arrays(patterns, n0)
        part_mask = mplan.part_mask if mplan is not None else None

        # 3, 5-6. run decisions, fused with their registry application ------
        dec = decide_and_apply(chain, registry, params, part_mask,
                               round_index, self.numpy_min_runs)
        terminated: Dict[int, int] = dict(dec.terminated)

        # 4. run starts (every L-th round; reads only the snapshot codes) ---
        starts: List[Tuple[int, RunStart]] = []
        if round_index % params.start_interval == 0:
            ids = chain.ids_view()
            if part_mask is None:
                starts = [(ids[i], rs) for i, rs in self._start_scanner(chain)]
            else:
                starts = [(ids[i], rs)
                          for i, rs in self._start_scanner(chain)
                          if not part_mask[i]]

        # 6'. simultaneous movement: merge hops + accepted runner hops ------
        # (lists from the scalar paths, arrays from the NumPy paths)
        pidx = mplan.hop_idx if mplan is not None else ()
        didx = dec.move_idx
        if not len(pidx):
            move_idx, move_del = didx, dec.move_deltas
        elif not len(didx):
            move_idx, move_del = pidx, mplan.hop_vec
        elif isinstance(pidx, list) and isinstance(didx, list):
            move_idx = pidx + didx
            move_del = mplan.hop_vec + dec.move_deltas
        else:
            move_idx = np.concatenate([
                np.asarray(pidx, dtype=np.int64),
                np.asarray(didx, dtype=np.int64)])
            move_del = np.concatenate([
                np.asarray(mplan.hop_vec, dtype=np.int64).reshape(-1, 2),
                np.asarray(dec.move_deltas, dtype=np.int64).reshape(-1, 2)])

        # moved ids resolve lazily: contraction only consults them when
        # a coincident pair actually exists (merge rounds)
        moved_ids = _LazyMovedIds(chain, move_idx) if len(move_idx) else set()
        if self._legacy_select:
            # scheduler-hook compatibility: round-trip through the
            # reference Dict[int, Vec] movement path
            if isinstance(move_idx, np.ndarray):
                move_idx = move_idx.tolist()
                move_del = move_del.tolist()
            ids_list = chain.ids_view()
            moves: Dict[int, Vec] = {
                ids_list[i]: (int(dx), int(dy))
                for i, (dx, dy) in zip(move_idx, move_del)}
            moves = self._select_moves(moves)
            chain.apply_moves(moves)
            moved_ids = set(moves)
            hop_total = len(moves)
        else:
            chain.apply_moves_indexed(move_idx, move_del)
            hop_total = len(move_idx)

        # 7. contraction (merging co-located chain neighbours) --------------
        records = chain.contract_coincident(moved_ids)
        if records:
            # a run can only lose its carrier or target through this
            # round's contraction, so both sweeps are no-ops without one
            removed = np.fromiter((r.removed_id for r in records),
                                  np.int64, len(records))
            slots = registry.active_slots()
            if len(slots):
                dead = np.flatnonzero(
                    np.isin(registry.robot[slots], removed))
                if len(dead):
                    registry.stop_slots(
                        slots[dead],
                        np.full(len(dead), _STOP_RUNNER_REMOVED, np.int64),
                        round_index)
                    terminated[_STOP_RUNNER_REMOVED] = \
                        terminated.get(_STOP_RUNNER_REMOVED, 0) + len(dead)

            # 8. target-removal terminations (Table 1.4/1.5) ----------------
            slots = registry.active_slots()
            if len(slots):
                targets = registry.target[slots]
                has_t = targets >= 0
                gone = has_t.copy()
                gone[has_t] = chain.index_array()[targets[has_t]] < 0
                rows = np.flatnonzero(gone)
                if len(rows):
                    reasons = np.where(
                        registry.mode_code[slots[rows]] == MODE_PASSING,
                        _STOP_PASSING_TARGET, _STOP_TRAVEL_TARGET)
                    registry.stop_slots(slots[rows], reasons, round_index)
                    for code in reasons.tolist():
                        terminated[code] = terminated.get(code, 0) + 1

        # 9. move surviving runs one robot along their direction ------------
        # adaptive like the decision stage: the gathered-assignment
        # advance only amortises its array dispatch over enough runs
        moved_list = None
        moved_pairs = None
        if len(registry) < _numpy_min(self.numpy_min_runs):
            moved_list, crowded = registry.advance_active(
                chain.ids_view(), chain.index_map(),
                collect_moved=self._check)
        else:
            moved_pairs = registry.advance_slots(chain.ids_array(),
                                                 chain.index_array(),
                                                 collect_moved=self._check)
            crowded = registry.has_crowding()
        # contraction can push two same-direction runs onto one robot; a
        # robot cannot tell them apart, so the younger run dissolves.
        if crowded:
            terminated_dups = self._dissolve_duplicates(round_index)
            if terminated_dups:
                terminated[_STOP_DUPLICATE] = \
                    terminated.get(_STOP_DUPLICATE, 0) + terminated_dups

        # 10. create the new runs decided in step 4 -------------------------
        runs_started = 0
        for rid, rs in starts:
            if not chain.has_id(rid):
                continue
            mode = RunMode.INIT_CORNER if rs.kind == "ii" else RunMode.NORMAL
            created = registry.start(rid, rs.direction, rs.axis,
                                     round_index, mode=mode)
            if created is not None:
                runs_started += 1

        # 11. invariants and bookkeeping ------------------------------------
        self._static_merge = (patterns, mplan) \
            if hop_total == 0 and not records and n0 >= 4 else None
        report = RoundReport(
            round_index=round_index, n_before=n0, n_after=chain.n,
            hops=hop_total,
            merge_patterns=len(mplan.patterns) if mplan is not None else 0,
            merges=records, runs_started=runs_started,
            runs_terminated={StopReason(code): count
                             for code, count in terminated.items()},
            active_runs=len(registry),
            merge_conflicts=mplan.conflicts if mplan is not None else 0,
            runner_hop_conflicts=dec.runner_hop_conflicts)
        if self._check:
            invariants.check_connectivity(chain)
            invariants.check_monotone_count(n0, chain.n)
            invariants.check_hop_lengths_arrays(
                ids_before, pos_before,
                chain.ids_array(), chain.positions_array())
            invariants.check_runs_alive(chain, registry)
            if moved_pairs is not None:
                old, new, dirs = moved_pairs
                moved_list = list(zip(old.tolist(), new.tolist(),
                                      dirs.tolist()))
            if moved_list is not None:
                invariants.check_run_speed(chain, moved_list)
        if self.trace is not None:
            self.trace.record_report(report)
        self.round_index += 1
        return report

    # ------------------------------------------------------------------
    def _dissolve_duplicates(self, round_index: int) -> int:
        """Reference duplicate-direction sweep over the array state.

        Mirrors the engine's crowded-run loop exactly: visit crowded
        runs in ascending id order and dissolve the youngest
        same-direction twin of each still-active one.
        """
        registry = self.registry
        slots = registry.active_slots()
        carriers = registry.robot[slots]
        by_robot: Dict[int, List[int]] = {}
        for slot, robot in zip(slots.tolist(), carriers.tolist()):
            by_robot.setdefault(robot, []).append(slot)
        crowded = sorted(s for group in by_robot.values()
                         if len(group) > 1 for s in group)
        dirn = registry.dirn
        stopped: set = set()
        count = 0
        for s in crowded:
            if s in stopped:
                continue
            d = dirn[s]
            twins = [x for x in by_robot[int(registry.robot[s])]
                     if x not in stopped and dirn[x] == d]
            if len(twins) > 1:
                youngest = max(twins)
                registry.stop_slot(youngest, _STOP_DUPLICATE, round_index)
                stopped.add(youngest)
                count += 1
        return count
