"""The kernel engine: a fleet-of-one on the shared fleet substrate.

Third engine variant (after ``"reference"`` and ``"vectorized"``,
DESIGN.md §2.9).  Since the fleet tier (DESIGN.md §2.10) exists, the
whole array-native round pipeline lives in one place —
:class:`~repro.core.engine_fleet.FleetKernel` — and the single-chain
kernel engine is simply that pipeline driven over a single-segment
:class:`~repro.core.arena.ChainArena`: merge detection and planning,
the fused decision stage, the movement scatter, the segmented
contraction pass and the bulk run advancement/starts all execute the
fleet code paths with one chain in the arena.  The bespoke per-chain
round loop this module used to carry is gone; what the unification
buys concretely:

* one vectorised pipeline to maintain and test instead of two
  (``merge/move/advance`` stages existed once per tier before);
* the fleet's fully vectorised rare-case handling — ``INIT_CORNER``
  op (c) hops, run-start corner refinement, the contraction survivor
  rule — replaces the per-window / per-event Python fallbacks the
  single-chain loop still contained;
* the decision stage stays adaptive: a single-segment arena below
  :data:`~repro.core.decisions_vectorized.NUMPY_MIN_RUNS` active runs
  drops to the tight scalar fold
  (:func:`~repro.core.decisions_vectorized.decide_and_apply_scalar`),
  so small chains keep their low per-round latency.

The rounds produced are bit-identical to the reference engine —
property-tested trace-for-trace and report-for-report in
``tests/test_conformance.py``.

Scheduler compatibility: a subclass overriding
:meth:`~repro.core.engine.Engine._select_moves` (the SSYNC hook) is
detected at construction and routed through the reference round
pipeline with the vectorised scanners (the ``"vectorized"`` engine's
configuration — behaviourally identical rounds), so activation
policies keep working at the cost of the per-robot loop.
"""

from __future__ import annotations

from typing import Optional

from repro.core.chain import ClosedChain
from repro.core.config import Parameters
from repro.core.engine import Engine
from repro.core.engine_fleet import FleetKernel
from repro.core.engine_vectorized import find_merge_patterns_np, scan_run_starts
from repro.core.events import RoundReport, Trace


class KernelEngine(Engine):
    """Array-native FSYNC engine (behaviourally identical to reference).

    Parameters match :class:`~repro.core.engine.Engine`; the round
    pipeline is the fleet kernel's, over a single-segment arena.
    ``numpy_min_runs`` overrides the decision stage's adaptive
    scalar/NumPy threshold (tests pin it to force one path).
    """

    def __init__(self, chain: ClosedChain, params: Parameters,
                 check_invariants: bool = True,
                 trace: Optional[Trace] = None,
                 numpy_min_runs: Optional[int] = None):
        super().__init__(chain, params,
                         merge_detector=find_merge_patterns_np,
                         start_scanner=scan_run_starts,
                         check_invariants=check_invariants,
                         trace=trace)
        if type(self)._select_moves is not Engine._select_moves:
            # scheduler-hook compatibility: partial-activation
            # subclasses run the reference pipeline (vectorised
            # scanners), which funnels every move through the hook
            self._fleet: Optional[FleetKernel] = None
            return
        self._fleet = FleetKernel(
            [chain], params=params, check_invariants=check_invariants,
            keep_reports=True, validate_initial=False,
            numpy_min_runs=numpy_min_runs)
        # engine semantics: terminated-run views stay observable
        self._fleet.registry.keep_stopped = True
        self.registry = self._fleet.registry

    # ------------------------------------------------------------------
    @property
    def numpy_min_runs(self) -> Optional[int]:
        """Scalar/NumPy crossover override of the decision stage."""
        return self._fleet.numpy_min_runs if self._fleet is not None else None

    @numpy_min_runs.setter
    def numpy_min_runs(self, value: Optional[int]) -> None:
        if self._fleet is not None:
            self._fleet.numpy_min_runs = value

    # ------------------------------------------------------------------
    def step(self) -> RoundReport:
        """Execute one full FSYNC round and return its report."""
        fleet = self._fleet
        if fleet is None:                  # SSYNC-hook subclass
            return Engine.step(self)
        if self.trace is not None:
            self.trace.record_snapshot(self.snapshot())
        fleet.round_index = self.round_index
        fleet._step_round()
        # the fleet defers the chain's Python-side id bookkeeping;
        # settle it every round so observers (simulator, traces,
        # tests) read coherent ids/index between steps
        fleet._sync_ids(0)
        report = fleet.reports[0][-1]
        if self.trace is not None:
            self.trace.record_report(report)
        self.round_index += 1
        return report
