"""NumPy-vectorised round-pipeline stages.

The per-round hot loops of the reference engine are the merge-pattern
scan (every edge, every round) and the run-start scan (every robot,
every ``start_interval``-th round).  This module provides vectorised
drop-ins for both — behavioural equivalence to the reference
recognisers in :mod:`repro.core.patterns` is property-tested — wired
into the ``"vectorized"`` engine by :class:`repro.core.simulator.Simulator`:

* :func:`find_merge_patterns_np` — merge patterns from the run-length
  encoding of the chain's edge-code sequence (paper Fig. 2);
* :func:`scan_run_starts` — all robots' Fig. 5 run-start decisions in
  one pass over the cached edge codes (run starts depend only on the
  six edges around the anchor, so the whole chain resolves with a
  handful of rolled comparisons).

Both consume the edge-code cache maintained by
:class:`~repro.core.chain.ClosedChain` (one encoding pass per FSYNC
snapshot, shared by detector and scanner — DESIGN.md §2.8).  Following
the optimisation guidance bundled with this project (profile, then
vectorise the measured bottleneck), everything else reuses the
reference pipeline via the pluggable hooks in
:class:`repro.core.engine.Engine`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.lattice import Vec
from repro.core.chain import CODE_TO_DIR, ClosedChain, encode_edges  # noqa: F401  (re-export)
from repro.core.patterns import MergePattern, RunStart

_CODE_TO_DIR: Tuple[Vec, ...] = CODE_TO_DIR


#: Below this size the run-length scan runs in plain Python over the
#: code list: per-call NumPy dispatch overhead (~1-2 µs per array op,
#: ~25 ops) exceeds a tight integer loop until chains get this long.
#: Both paths are behaviourally identical (shared property tests).
_NUMPY_MIN_N = 1024


def _merge_patterns_rle(code: np.ndarray, n: int, k_max: int,
                        code_list: Optional[List[int]] = None) -> List[MergePattern]:
    """Merge patterns from the run-length encoding of the code array.

    Boundary finding is one vectorised comparison; the per-run checks
    run in Python because the number of runs is small.  ``code_list``
    may pass the chain's cached list rendering for the scalar reads.
    """
    interior = np.flatnonzero(code[1:] != code[:-1])
    starts = [i + 1 for i in interior.tolist()]
    if code[0] != code[-1]:
        starts.insert(0, 0)
    if not starts:
        return []
    m = len(starts)
    if code_list is not None:
        run_codes = [code_list[s] for s in starts]
    else:
        run_codes = code[starts].tolist()
    # one pass over the run boundaries, collecting into two lists so the
    # output order stays "all k = 1 spikes, then all k >= 2 shapes"
    # (plan_merges priority is order-sensitive)
    spikes: List[MergePattern] = []
    longs: List[MergePattern] = []
    flanked = m >= 3                          # a closed chain cannot be one run
    for r in range(m):
        rc = run_codes[r]
        pc = run_codes[r - 1]
        if pc < 0:
            continue
        po = pc ^ 2
        # k = 1 spikes: a run boundary whose codes are exact opposites
        if rc == po and rc >= 0:
            spikes.append(MergePattern(first_black=starts[r], k=1,
                                       direction=_CODE_TO_DIR[rc]))
        if not flanked or rc < 0:
            continue
        # k >= 2: a straight run flanked by opposite perpendicular codes
        nc = run_codes[(r + 1) % m]
        if nc != po or not ((rc ^ pc) & 1):
            continue
        nxt_start = starts[r + 1] if r + 1 < m else starts[0] + n
        k = nxt_start - starts[r] + 1
        if k <= k_max and k + 2 <= n:
            longs.append(MergePattern(first_black=starts[r], k=k,
                                      direction=_CODE_TO_DIR[nc]))
    if not longs:
        return spikes
    return spikes + longs


def find_merge_patterns_np(positions: Sequence[Vec], k_max: int,
                           codes: Optional[np.ndarray] = None,
                           codes_list: Optional[List[int]] = None) -> List[MergePattern]:
    """Vectorised equivalent of :func:`repro.core.patterns.find_merge_patterns`.

    ``codes`` may pass the chain's cached edge-code array
    (:meth:`ClosedChain.edge_codes`) to skip re-encoding; otherwise the
    codes are computed from ``positions``.

    Everything is found on the run-length encoding of the cyclic code
    sequence: a spike (k = 1) is a run boundary whose codes are exact
    opposites, and a longer U-shape is a maximal straight run flanked
    by opposite perpendicular codes.  The scan itself is adaptive: on
    short chains it runs as a tight Python loop over the code list, on
    long chains as NumPy array operations — same results either way
    (DESIGN.md §2.8).
    """
    n = len(positions)
    if n < 4:
        return []
    code = encode_edges(positions) if codes is None else codes
    if n < _NUMPY_MIN_N:
        return _merge_patterns_rle(code, n, k_max, codes_list)

    prev = np.roll(code, 1)
    starts = np.flatnonzero(code != prev)
    if len(starts) == 0:
        return []
    run_codes = code[starts]
    prev_codes = np.roll(run_codes, 1)
    valid = run_codes >= 0
    valid_prev = prev_codes >= 0

    patterns: List[MergePattern] = []

    # --- k = 1 spikes: lead edge followed immediately by its opposite ------
    spike = valid & valid_prev & (run_codes == (prev_codes + 2) % 4)
    for r in np.flatnonzero(spike):
        i = int(starts[r])
        patterns.append(MergePattern(first_black=i, k=1,
                                     direction=_CODE_TO_DIR[code[i]]))

    # --- k >= 2: straight run flanked by opposite perpendicular codes ------
    if len(starts) < 3:
        return patterns                       # a closed chain cannot be one run
    lengths = np.diff(np.append(starts, starts[0] + n))
    next_codes = np.roll(run_codes, -1)

    ok = valid & valid_prev & (next_codes >= 0)
    # flanks opposite: closing edge is the exact opposite of the lead edge
    ok &= next_codes == (prev_codes + 2) % 4
    # middle perpendicular to the flanks (parity of the code gives the axis)
    ok &= ((run_codes ^ prev_codes) & 1) == 1
    ok &= (lengths + 1 <= k_max) & (lengths + 3 <= n)

    for r in np.flatnonzero(ok):
        patterns.append(MergePattern(first_black=int(starts[r]),
                                     k=int(lengths[r]) + 1,
                                     direction=_CODE_TO_DIR[next_codes[r]]))
    return patterns


#: Simulator/engine hook: this detector accepts the chain's cached codes.
find_merge_patterns_np.wants_edge_codes = True


def scan_run_starts(chain: ClosedChain) -> List[Tuple[int, RunStart]]:
    """All robots' run-start decisions in one pass (paper Fig. 5).

    Vectorised equivalent of calling
    :func:`repro.core.patterns.run_start_decisions` on every robot's
    window: returns ``(chain_index, RunStart)`` pairs in the reference
    order (ascending index, chain direction ``+1`` before ``-1``).

    With ``c`` the cyclic edge-code array, the window edges around
    anchor ``i`` translate to rolled copies of ``c`` — e.g. for
    ``sigma = +1`` the lead edge is ``c[i]``, the edge behind the anchor
    is the opposite of ``c[i-1]`` — and the Fig. 5 shape conditions
    become elementwise comparisons:

    * axis-unit: the code is valid (``>= 0``);
    * equality of window edges: equality of codes (both reversed or both
      forward, so the opposites cancel);
    * perpendicularity: the code parities differ (parity selects the axis).
    """
    c = chain.edge_codes()
    n = len(c)
    if n == 0:
        return []
    cm1 = np.roll(c, 1)
    cm2 = np.roll(c, 2)
    cp1 = np.roll(c, -1)

    v0 = c >= 0
    vm1 = cm1 >= 0
    perp = ((c ^ cm1) & 1) == 1            # edges i and i-1 on different axes

    # sigma = +1 candidates: anchor, m1, m2 aligned forward, a
    # perpendicular axis-unit edge behind.  sigma = -1 candidates: the
    # mirrored alignment backward.  The (rare) candidates are refined in
    # Python below — the i/ii distinction needs two more edges, which is
    # cheaper per candidate than two more whole-array rolls.
    base_p = v0 & (cp1 == c) & vm1 & perp
    base_m = vm1 & (cm2 == cm1) & v0 & perp

    fired = np.flatnonzero(base_p | base_m)
    if len(fired) == 0:
        return []
    cl = chain.edge_codes_list()
    starts: List[Tuple[int, RunStart]] = []
    for i in fired.tolist():
        if base_p[i]:
            g1 = cl[i - 1]                 # code behind the anchor
            g2 = cl[i - 2]
            if g2 == g1:
                starts.append((i, RunStart(1, "ii", _CODE_TO_DIR[cl[i]])))
            elif g2 >= 0 and ((g2 ^ g1) & 1) and cl[i - 3] == g1:
                starts.append((i, RunStart(1, "i", _CODE_TO_DIR[cl[i]])))
        if base_m[i]:
            g1 = cl[i]                     # code "behind" toward +1
            g2 = cl[(i + 1) % n]
            axis = _CODE_TO_DIR[cl[i - 1] ^ 2]
            if g2 == g1:
                starts.append((i, RunStart(-1, "ii", axis)))
            elif g2 >= 0 and ((g2 ^ g1) & 1) and cl[(i + 2) % n] == g1:
                starts.append((i, RunStart(-1, "i", axis)))
    return starts
