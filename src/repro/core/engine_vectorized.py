"""NumPy-vectorised merge detection.

Merge-pattern scanning is the per-round hot loop (it touches every edge
of the chain every round, while runs are sparse).  This module provides
a detector that is behaviourally identical to
:func:`repro.core.patterns.find_merge_patterns` — the equivalence is
property-tested — but performs the scan with array operations:

1. encode each edge as a direction code 0..3;
2. spikes (k = 1) are a single vectorised comparison against the rolled
   code array;
3. longer U-shapes are found on the run-length encoding of the code
   sequence: a maximal straight run flanked by opposite perpendicular
   codes is a pattern.

Following the optimisation guidance bundled with this project
(profile, then vectorise the measured bottleneck), this is the only
NumPy-specialised code path; everything else reuses the reference
pipeline via the pluggable detector in :class:`repro.core.engine.Engine`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.grid.lattice import Vec
from repro.core.patterns import MergePattern

_CODE_TO_DIR: tuple = ((1, 0), (0, 1), (-1, 0), (0, -1))


def encode_edges(positions: Sequence[Vec]) -> np.ndarray:
    """Direction code (0=E, 1=N, 2=W, 3=S, -1=other) of every cyclic edge."""
    p = np.asarray(positions, dtype=np.int64)
    e = np.roll(p, -1, axis=0) - p
    dx, dy = e[:, 0], e[:, 1]
    code = np.full(len(p), -1, dtype=np.int64)
    code[(dx == 1) & (dy == 0)] = 0
    code[(dx == 0) & (dy == 1)] = 1
    code[(dx == -1) & (dy == 0)] = 2
    code[(dx == 0) & (dy == -1)] = 3
    return code


def find_merge_patterns_np(positions: Sequence[Vec], k_max: int) -> List[MergePattern]:
    """Vectorised equivalent of :func:`find_merge_patterns`."""
    n = len(positions)
    if n < 4:
        return []
    code = encode_edges(positions)
    prev = np.roll(code, 1)

    patterns: List[MergePattern] = []

    # --- k = 1 spikes: lead edge followed immediately by its opposite ------
    spike = (code >= 0) & (prev >= 0) & (code == (prev + 2) % 4)
    for i in np.flatnonzero(spike):
        patterns.append(MergePattern(first_black=int(i), k=1,
                                     direction=_CODE_TO_DIR[code[i]]))

    # --- k >= 2: run-length encode the cyclic code sequence ----------------
    change = code != prev
    starts = np.flatnonzero(change)
    if len(starts) < 3:
        return patterns                       # a closed chain cannot be one run
    lengths = np.diff(np.append(starts, starts[0] + n))
    run_codes = code[starts]
    prev_codes = np.roll(run_codes, 1)
    next_codes = np.roll(run_codes, -1)

    valid = (run_codes >= 0) & (prev_codes >= 0) & (next_codes >= 0)
    # flanks opposite: closing edge is the exact opposite of the lead edge
    flanks_opposite = next_codes == (prev_codes + 2) % 4
    # middle perpendicular to the flanks (parity of the code gives the axis)
    perpendicular = ((run_codes ^ prev_codes) & 1) == 1
    fits = (lengths >= 1) & (lengths + 1 <= k_max) & (lengths + 3 <= n)
    mask = valid & flanks_opposite & perpendicular & fits

    for r in np.flatnonzero(mask):
        d = _CODE_TO_DIR[next_codes[r]]
        patterns.append(MergePattern(first_black=int(starts[r]),
                                     k=int(lengths[r]) + 1, direction=d))
    return patterns
