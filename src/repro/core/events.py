"""Round reports and traces.

The simulator emits one :class:`RoundReport` per round; a
:class:`Trace` optionally records full snapshots for replay, rendering
and the invariant/lemma experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.grid.lattice import Vec
from repro.core.chain import MergeRecord
from repro.core.runs import RunMode, StopReason


@dataclass(frozen=True)
class RunSnapshot:
    """State of one run at a snapshot instant."""

    run_id: int
    robot_id: int
    direction: int
    mode: str
    born_round: int


@dataclass(frozen=True)
class Snapshot:
    """Complete observable state at the start of a round."""

    round_index: int
    positions: Tuple[Vec, ...]
    ids: Tuple[int, ...]
    runs: Tuple[RunSnapshot, ...] = ()


@dataclass(slots=True)
class RoundReport:
    """What happened during one FSYNC round."""

    round_index: int
    n_before: int
    n_after: int
    hops: int = 0
    merge_patterns: int = 0
    merges: List[MergeRecord] = field(default_factory=list)
    runs_started: int = 0
    runs_terminated: Dict[StopReason, int] = field(default_factory=dict)
    active_runs: int = 0
    merge_conflicts: int = 0
    runner_hop_conflicts: int = 0

    @property
    def robots_removed(self) -> int:
        """Chain shortening achieved this round (the progress measure)."""
        return self.n_before - self.n_after


class Trace:
    """Optional per-round snapshot recorder."""

    def __init__(self, keep_snapshots: bool = True):
        self.keep_snapshots = keep_snapshots
        self.snapshots: List[Snapshot] = []
        self.reports: List[RoundReport] = []

    def record_snapshot(self, snap: Snapshot) -> None:
        if self.keep_snapshots:
            self.snapshots.append(snap)

    def record_report(self, report: RoundReport) -> None:
        self.reports.append(report)

    @property
    def rounds(self) -> int:
        return len(self.reports)

    def merge_rounds(self) -> List[int]:
        """Rounds in which at least one merge happened."""
        return [r.round_index for r in self.reports if r.robots_removed > 0]

    def chain_lengths(self) -> List[int]:
        """Chain length after each round."""
        return [r.n_after for r in self.reports]
