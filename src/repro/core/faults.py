"""Deterministic fault injection for the streaming tier.

A :class:`FaultPlan` degrades a chain stream *reproducibly*: each
stream entry's fate (dropped, perturbed, or untouched) is a pure
function of the plan's seed and the entry's stream index, so the same
plan replayed over the same stream — including a crash/resume replay
through the WAL, which records the plan in its ``stream_start``
record — injects exactly the same faults.  The pattern follows the
disabled-device handling of observatory control software: degraded
inputs are first-class schedule entries, not exceptions, and the
scheduler's output over them must stay deterministic and auditable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

Vec = Tuple[int, int]


@dataclass(frozen=True)
class FaultPlan:
    """Seeded per-entry fault decisions for a chain stream.

    ``crash`` is the probability a stream entry is dropped outright —
    it still consumes its stream index, so the surviving entries keep
    their positions and the output gains a gap, never a shift.
    ``perturb`` is the probability an entry's chain is reshaped at
    admission by ``mutations`` validity-preserving mutations
    (:func:`repro.chains.perturb.perturb`).  Probabilities are
    disjoint slices of one uniform draw, so ``crash + perturb`` must
    stay ≤ 1.

    ``mid_crash``/``mid_restart`` inject *mid-run* robot faults: an
    affected chain is hit at a seeded chain-local round in
    ``[1, window]`` — crash retires it as a structured error outcome,
    restart wipes its volatile run state so the gathering restarts
    from the current configuration (see :meth:`decide_mid`).  Both are
    applied at round boundaries by the fleet kernel and recorded as
    ``fault`` WAL records, so resume and audit replay them exactly.
    """

    seed: int = 0
    crash: float = 0.0
    perturb: float = 0.0
    mutations: int = 4
    mid_crash: float = 0.0
    mid_restart: float = 0.0
    window: int = 32

    def __post_init__(self) -> None:
        if not 0.0 <= self.crash <= 1.0 or not 0.0 <= self.perturb <= 1.0 \
                or self.crash + self.perturb > 1.0:
            raise ValueError("crash/perturb must be probabilities with "
                             "crash + perturb <= 1")
        if self.mutations < 1:
            raise ValueError("mutations must be >= 1")
        if not 0.0 <= self.mid_crash <= 1.0 \
                or not 0.0 <= self.mid_restart <= 1.0 \
                or self.mid_crash + self.mid_restart > 1.0:
            raise ValueError("mid_crash/mid_restart must be probabilities "
                             "with mid_crash + mid_restart <= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    # ------------------------------------------------------------------
    def decide(self, index: int) -> Optional[str]:
        """The fate of stream entry ``index``: 'crash', 'perturb' or None.

        String-seeded ``random.Random`` — stable across processes and
        Python runs, unlike hash-based seeding.
        """
        u = random.Random(f"repro.fault:{self.seed}:{index}").random()
        if u < self.crash:
            return "crash"
        if u < self.crash + self.perturb:
            return "perturb"
        return None

    def decide_mid(self, index: int) -> Optional[Tuple[str, int]]:
        """The mid-run fate of stream entry ``index``.

        Returns ``None`` (unaffected) or ``(kind, round)`` where
        ``kind`` is ``'mid_crash'`` (the whole chain of robots dies
        mid-run and is retired as a crashed outcome) or
        ``'mid_restart'`` (the robots reboot: volatile run state is
        wiped and the chain restarts from its current configuration),
        and ``round`` is the chain-local round, in ``[1, window]``, at
        whose boundary the fault fires.  Pure function of seed and
        index — a resumed or re-executed stream replays the same fault
        at the same round.
        """
        if self.mid_crash <= 0.0 and self.mid_restart <= 0.0:
            return None
        rng = random.Random(f"repro.fault.mid:{self.seed}:{index}")
        u = rng.random()
        if u < self.mid_crash:
            return ("mid_crash", 1 + rng.randrange(self.window))
        if u < self.mid_crash + self.mid_restart:
            return ("mid_restart", 1 + rng.randrange(self.window))
        return None

    def mutate(self, index: int, positions: Sequence[Vec]) -> List[Vec]:
        """The perturbed chain for entry ``index`` (deterministic)."""
        from repro.chains.perturb import perturb as _perturb
        rng = random.Random(f"repro.fault.perturb:{self.seed}:{index}")
        return _perturb(list(positions), mutations=self.mutations, rng=rng)

    # ------------------------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        """JSON-ready form (recorded in the WAL's stream_start)."""
        return {"seed": self.seed, "crash": self.crash,
                "perturb": self.perturb, "mutations": self.mutations,
                "mid_crash": self.mid_crash,
                "mid_restart": self.mid_restart, "window": self.window}

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "FaultPlan":
        return cls(seed=int(doc["seed"]), crash=float(doc["crash"]),
                   perturb=float(doc["perturb"]),
                   mutations=int(doc["mutations"]),
                   mid_crash=float(doc.get("mid_crash", 0.0)),
                   mid_restart=float(doc.get("mid_restart", 0.0)),
                   window=int(doc.get("window", 32)))

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI spec like ``seed=7,crash=0.02,perturb=0.1``.

        Keys: ``seed`` (int), ``crash``/``perturb``/``mid_crash``/
        ``mid_restart`` (floats in [0, 1]), ``mutations``/``window``
        (ints).  Unknown keys raise ValueError.
        """
        kwargs: Dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            if key in ("seed", "mutations", "window"):
                kwargs[key] = int(value)
            elif key in ("crash", "perturb", "mid_crash", "mid_restart"):
                kwargs[key] = float(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return cls(**kwargs)
