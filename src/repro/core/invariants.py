"""Runtime invariant checking.

When enabled, the engine verifies after every round that the model's
invariants hold.  A violation raises
:class:`~repro.errors.InvariantViolation` — it always indicates an
implementation bug, never a property of the input, so tests run with
checking on.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import InvariantViolation
from repro.grid.lattice import Vec, chebyshev, manhattan
from repro.core.chain import ClosedChain
from repro.core.runs import RunRegistry


def check_connectivity(chain: ClosedChain) -> None:
    """Chain neighbours stay on the same or 4-adjacent points."""
    pos = chain.positions
    n = len(pos)
    for i in range(n):
        if manhattan(pos[i], pos[(i + 1) % n]) > 1:
            raise InvariantViolation(
                f"chain connectivity broken between index {i} {pos[i]} "
                f"and {(i + 1) % n} {pos[(i + 1) % n]}")


def check_hop_lengths(before: Dict[int, Vec], after: Dict[int, Vec]) -> None:
    """Each robot moves at most one cell (Chebyshev) per round."""
    for rid, p in after.items():
        q = before.get(rid)
        if q is not None and chebyshev(p, q) > 1:
            raise InvariantViolation(
                f"robot {rid} moved {q} -> {p} (more than one hop)")


def check_hop_lengths_arrays(before_ids: np.ndarray, before_pos: np.ndarray,
                             after_ids: np.ndarray, after_pos: np.ndarray
                             ) -> None:
    """Array form of :func:`check_hop_lengths` (one round's snapshots).

    ``before_ids``/``before_pos`` are the chain's id and position
    arrays captured before the round, ``after_*`` the live state after
    it.  The engines snapshot arrays instead of building id → position
    dicts every round (which made invariant checking quadratic over a
    gathering).  Ids only disappear within a round, so after-rows map
    into the before-arrays by inverting the before-id sequence.
    """
    if len(after_ids) == 0 or len(before_ids) == 0:
        return
    inv = np.full(int(before_ids.max()) + 1, -1, dtype=np.int64)
    inv[before_ids] = np.arange(len(before_ids), dtype=np.int64)
    rows = inv[after_ids]                  # ids never appear mid-round
    hop = np.abs(after_pos - before_pos[rows]).max(axis=1)
    if int(hop.max()) > 1:
        r = int(np.argmax(hop))
        rid = int(after_ids[r])
        q = tuple(before_pos[rows[r]].tolist())
        p = tuple(after_pos[r].tolist())
        raise InvariantViolation(
            f"robot {rid} moved {q} -> {p} (more than one hop)")


def check_monotone_count(n_before: int, n_after: int) -> None:
    """The number of robots never increases."""
    if n_after > n_before:
        raise InvariantViolation(
            f"robot count increased: {n_before} -> {n_after}")


def check_runs_alive(chain: ClosedChain, registry: RunRegistry) -> None:
    """Every live run sits on a live robot, at most two per robot."""
    per_robot: Dict[int, int] = {}
    for run in registry.active_runs():
        if not chain.has_id(run.robot_id):
            raise InvariantViolation(
                f"run {run.run_id} rides removed robot {run.robot_id}")
        per_robot[run.robot_id] = per_robot.get(run.robot_id, 0) + 1
    for rid, count in per_robot.items():
        if count > 2:
            raise InvariantViolation(
                f"robot {rid} carries {count} runs (constant memory bound is 2)")


def check_run_speed(chain: ClosedChain, moved: Sequence[tuple]) -> None:
    """Lemma 3.1: every surviving run advanced exactly one robot.

    ``moved`` holds ``(old_robot_id, new_robot_id, direction)`` triples
    collected while moving runs; the expected neighbour is re-derived
    from the chain here, independently of the value the mover assigned,
    so a wrong-index bug in the advance sweep cannot pass silently.
    """
    for old_id, new_id, direction in moved:
        expected = chain.neighbor_id(old_id, direction)
        if expected != new_id:
            raise InvariantViolation(
                f"run moved {old_id} -> {new_id}, expected neighbour {expected}")
