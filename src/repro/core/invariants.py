"""Runtime invariant checking.

When enabled, the engine verifies after every round that the model's
invariants hold.  A violation raises
:class:`~repro.errors.InvariantViolation` — it always indicates an
implementation bug, never a property of the input, so tests run with
checking on.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import InvariantViolation
from repro.grid.lattice import Vec, chebyshev, manhattan
from repro.core.chain import ClosedChain
from repro.core.runs import RunRegistry


def check_connectivity(chain: ClosedChain) -> None:
    """Chain neighbours stay on the same or 4-adjacent points."""
    pos = chain.positions
    n = len(pos)
    for i in range(n):
        if manhattan(pos[i], pos[(i + 1) % n]) > 1:
            raise InvariantViolation(
                f"chain connectivity broken between index {i} {pos[i]} "
                f"and {(i + 1) % n} {pos[(i + 1) % n]}")


def check_hop_lengths(before: Dict[int, Vec], after: Dict[int, Vec]) -> None:
    """Each robot moves at most one cell (Chebyshev) per round."""
    for rid, p in after.items():
        q = before.get(rid)
        if q is not None and chebyshev(p, q) > 1:
            raise InvariantViolation(
                f"robot {rid} moved {q} -> {p} (more than one hop)")


def check_monotone_count(n_before: int, n_after: int) -> None:
    """The number of robots never increases."""
    if n_after > n_before:
        raise InvariantViolation(
            f"robot count increased: {n_before} -> {n_after}")


def check_runs_alive(chain: ClosedChain, registry: RunRegistry) -> None:
    """Every live run sits on a live robot, at most two per robot."""
    per_robot: Dict[int, int] = {}
    for run in registry.active_runs():
        if not chain.has_id(run.robot_id):
            raise InvariantViolation(
                f"run {run.run_id} rides removed robot {run.robot_id}")
        per_robot[run.robot_id] = per_robot.get(run.robot_id, 0) + 1
    for rid, count in per_robot.items():
        if count > 2:
            raise InvariantViolation(
                f"robot {rid} carries {count} runs (constant memory bound is 2)")


def check_run_speed(moved_pairs: Sequence[tuple]) -> None:
    """Lemma 3.1: every surviving run advanced exactly one robot.

    ``moved_pairs`` holds ``(expected_next_id, actual_new_id)`` tuples
    collected by the engine while moving runs.
    """
    for expected, actual in moved_pairs:
        if expected != actual:
            raise InvariantViolation(
                f"run moved to robot {actual}, expected neighbour {expected}")
