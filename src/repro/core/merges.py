"""Merge planning: from patterns to simultaneous hops.

Implements §3.1 of the paper including the overlap cases of Fig. 3:

* a robot black in one pattern and white in another hops as black
  (Fig. 3a — the pure whites stand still and absorb the merges);
* a robot black in two patterns (necessarily with perpendicular hop
  directions) hops diagonally (Fig. 3b).

**Short-pattern priority [D].** The paper's overlap rules cover
patterns of equal length overlapping pairwise.  On degenerate
self-overlapping chains (a doubled flat chain with end spikes, found by
the exhaustive verifier in :mod:`repro.verification`) every white is
simultaneously a black of a *longer* pattern; under a naive
everyone-hops rule the whole configuration swap-oscillates with period
2 and never merges.  We therefore cancel a pattern when one of its
whites is a black of a strictly shorter pattern: shortest patterns are
never cancelled (so some pattern always executes), cancelled patterns
keep all their blacks stationary (full-pattern execution keeps the
chain connected), and for equal lengths the paper's Fig. 3a behaviour
is bit-for-bit unchanged.  See DESIGN.md §2.2.

Opposite hop directions for one robot are geometrically impossible for
U-patterns (a robot has only two incident edges); the planner asserts
this and, defensively, freezes such a robot while counting the event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.grid.lattice import Vec, add, are_perpendicular
from repro.core.patterns import MergePattern, find_merge_patterns


@dataclass
class MergePlan:
    """Result of merge planning for one round.

    ``hops`` maps robot ids to hop vectors; ``participants`` contains
    every robot (black or white) taking part in some *executing*
    pattern — their runs terminate by Table 1.3 and they neither
    reshape nor start runs this round.  ``cancelled`` counts patterns
    suppressed by the short-pattern priority rule.
    """

    hops: Dict[int, Vec] = field(default_factory=dict)
    participants: Set[int] = field(default_factory=set)
    patterns: List[MergePattern] = field(default_factory=list)
    conflicts: int = 0
    cancelled: int = 0

    @property
    def any(self) -> bool:
        """True when at least one merge pattern fires this round."""
        return bool(self.patterns)


def plan_merges(positions: Sequence[Vec], ids: Sequence[int], k_max: int,
                patterns: List[MergePattern] | None = None) -> MergePlan:
    """Combine all merge patterns into one simultaneous hop assignment.

    ``patterns`` may be supplied by an alternative detector (the
    vectorised engine); otherwise the reference detector runs.
    """
    n = len(positions)
    if patterns is None:
        patterns = find_merge_patterns(positions, k_max)
    if not patterns:
        return MergePlan()

    # short-pattern priority: cancel patterns whose white is a black of
    # a strictly shorter pattern (see module docstring)
    black_min_k: Dict[int, int] = {}
    for pat in patterns:
        fb, k = pat.first_black, pat.k
        for j in range(k):
            b = (fb + j) % n
            prev = black_min_k.get(b)
            if prev is None or k < prev:
                black_min_k[b] = k
    executing: List[MergePattern] = []
    cancelled = 0
    get_min_k = black_min_k.get
    for pat in patterns:
        fb, k = pat.first_black, pat.k
        if get_min_k((fb - 1) % n, k) < k or get_min_k((fb + k) % n, k) < k:
            cancelled += 1
        else:
            executing.append(pat)

    plan = MergePlan(patterns=executing, cancelled=cancelled)
    if not executing:
        return plan

    participants = plan.participants
    directions: Dict[int, Set[Vec]] = {}
    for pat in executing:
        fb, k = pat.first_black, pat.k
        participants.add(ids[(fb - 1) % n])
        participants.add(ids[(fb + k) % n])
        for j in range(k):
            b = (fb + j) % n
            dirs = directions.get(b)
            if dirs is None:
                directions[b] = {pat.direction}
            else:
                dirs.add(pat.direction)
            participants.add(ids[b])

    for idx, dirs in directions.items():
        if len(dirs) == 1:
            (d,) = dirs
            plan.hops[ids[idx]] = d
        elif len(dirs) == 2:
            a, b = sorted(dirs)
            if are_perpendicular(a, b):
                plan.hops[ids[idx]] = add(a, b)     # Fig. 3b diagonal hop
            else:
                plan.conflicts += 1                 # impossible; freeze robot
        else:
            plan.conflicts += 1
    return plan
