"""Merge planning: from patterns to simultaneous hops.

Implements §3.1 of the paper including the overlap cases of Fig. 3:

* a robot black in one pattern and white in another hops as black
  (Fig. 3a — the pure whites stand still and absorb the merges);
* a robot black in two patterns (necessarily with perpendicular hop
  directions) hops diagonally (Fig. 3b).

**Short-pattern priority [D].** The paper's overlap rules cover
patterns of equal length overlapping pairwise.  On degenerate
self-overlapping chains (a doubled flat chain with end spikes, found by
the exhaustive verifier in :mod:`repro.verification`) every white is
simultaneously a black of a *longer* pattern; under a naive
everyone-hops rule the whole configuration swap-oscillates with period
2 and never merges.  We therefore cancel a pattern when one of its
whites is a black of a strictly shorter pattern: shortest patterns are
never cancelled (so some pattern always executes), cancelled patterns
keep all their blacks stationary (full-pattern execution keeps the
chain connected), and for equal lengths the paper's Fig. 3a behaviour
is bit-for-bit unchanged.  See DESIGN.md §2.2.

Opposite hop directions for one robot are geometrically impossible for
U-patterns (a robot has only two incident edges); the planner asserts
this and, defensively, freezes such a robot while counting the event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.grid.lattice import Vec, add, are_perpendicular
from repro.core.chain import CODE_TO_DIR
from repro.core.patterns import MergePattern, find_merge_patterns

#: Unit hop vector -> direction code (same encoding as the chain's edge
#: codes; parity of the code gives the axis).
_VEC_TO_CODE: Dict[Vec, int] = {v: c for c, v in enumerate(CODE_TO_DIR)}

#: Direction-code -> unit-vector table for the vectorised planner.
_DIR_TABLE = np.array(CODE_TO_DIR, dtype=np.int64)


@dataclass
class MergePlan:
    """Result of merge planning for one round.

    ``hops`` maps robot ids to hop vectors; ``participants`` contains
    every robot (black or white) taking part in some *executing*
    pattern — their runs terminate by Table 1.3 and they neither
    reshape nor start runs this round.  ``cancelled`` counts patterns
    suppressed by the short-pattern priority rule.
    """

    hops: Dict[int, Vec] = field(default_factory=dict)
    participants: Set[int] = field(default_factory=set)
    patterns: List[MergePattern] = field(default_factory=list)
    conflicts: int = 0
    cancelled: int = 0

    @property
    def any(self) -> bool:
        """True when at least one merge pattern fires this round."""
        return bool(self.patterns)


def plan_merges(positions: Sequence[Vec], ids: Sequence[int], k_max: int,
                patterns: List[MergePattern] | None = None) -> MergePlan:
    """Combine all merge patterns into one simultaneous hop assignment.

    ``patterns`` may be supplied by an alternative detector (the
    vectorised engine); otherwise the reference detector runs.
    """
    n = len(positions)
    if patterns is None:
        patterns = find_merge_patterns(positions, k_max)
    if not patterns:
        return MergePlan()

    # short-pattern priority: cancel patterns whose white is a black of
    # a strictly shorter pattern (see module docstring)
    black_min_k: Dict[int, int] = {}
    for pat in patterns:
        fb, k = pat.first_black, pat.k
        for j in range(k):
            b = (fb + j) % n
            prev = black_min_k.get(b)
            if prev is None or k < prev:
                black_min_k[b] = k
    executing: List[MergePattern] = []
    cancelled = 0
    get_min_k = black_min_k.get
    for pat in patterns:
        fb, k = pat.first_black, pat.k
        if get_min_k((fb - 1) % n, k) < k or get_min_k((fb + k) % n, k) < k:
            cancelled += 1
        else:
            executing.append(pat)

    plan = MergePlan(patterns=executing, cancelled=cancelled)
    if not executing:
        return plan

    participants = plan.participants
    directions: Dict[int, Set[Vec]] = {}
    for pat in executing:
        fb, k = pat.first_black, pat.k
        participants.add(ids[(fb - 1) % n])
        participants.add(ids[(fb + k) % n])
        for j in range(k):
            b = (fb + j) % n
            dirs = directions.get(b)
            if dirs is None:
                directions[b] = {pat.direction}
            else:
                dirs.add(pat.direction)
            participants.add(ids[b])

    for idx, dirs in directions.items():
        if len(dirs) == 1:
            (d,) = dirs
            plan.hops[ids[idx]] = d
        elif len(dirs) == 2:
            a, b = sorted(dirs)
            if are_perpendicular(a, b):
                plan.hops[ids[idx]] = add(a, b)     # Fig. 3b diagonal hop
            else:
                plan.conflicts += 1                 # impossible; freeze robot
        else:
            plan.conflicts += 1
    return plan


@dataclass
class KernelMergePlan:
    """Array rendering of a round's merge plan (kernel engine).

    Same decision content as :class:`MergePlan` — property-tested
    equivalent — addressed by chain index instead of robot id:
    ``hop_idx``/``hop_vec`` are the hopping blacks and their hop
    vectors (NumPy arrays from the vectorised planner, plain lists
    from the small-case path — the engine's movement step handles
    both), ``part_mask`` flags every participant of an executing
    pattern.  ``patterns`` keeps the executing patterns in detector
    order (the reference plan's ``patterns`` list).
    """

    patterns: List[MergePattern]
    hop_idx: Sequence[int]
    hop_vec: Sequence[Vec]
    part_mask: np.ndarray
    conflicts: int = 0
    cancelled: int = 0

    def participant_ids(self, ids_array: np.ndarray) -> Set[int]:
        """The participants as a robot-id set (reference plan rendering)."""
        return set(ids_array[self.part_mask].tolist())


#: Below this many patterns the planner runs as a tight Python loop
#: over indices: per-call NumPy dispatch overhead (~25 array ops)
#: exceeds the loop until pattern sets get this large.  Both paths are
#: behaviourally identical (shared property tests, same contract as
#: the detector's ``_NUMPY_MIN_N``).
_NUMPY_MIN_PATTERNS = 32


def _plan_arrays_py(patterns: List[MergePattern], n: int) -> KernelMergePlan:
    """Small-case :func:`plan_merges_arrays`: reference logic on indices."""
    black_min_k: Dict[int, int] = {}
    for pat in patterns:
        fb, k = pat.first_black, pat.k
        for j in range(k):
            b = (fb + j) % n
            prev = black_min_k.get(b)
            if prev is None or k < prev:
                black_min_k[b] = k
    executing: List[MergePattern] = []
    cancelled = 0
    get_min_k = black_min_k.get
    for pat in patterns:
        fb, k = pat.first_black, pat.k
        if get_min_k((fb - 1) % n, k) < k or get_min_k((fb + k) % n, k) < k:
            cancelled += 1
        else:
            executing.append(pat)
    part_mask = np.zeros(n, dtype=bool)
    if not executing:
        return KernelMergePlan(executing, np.empty(0, np.int64),
                               np.empty((0, 2), np.int64), part_mask,
                               cancelled=cancelled)
    directions: Dict[int, Set[Vec]] = {}
    for pat in executing:
        fb, k = pat.first_black, pat.k
        part_mask[(fb - 1) % n] = True
        part_mask[(fb + k) % n] = True
        d = pat.direction
        for j in range(k):
            b = (fb + j) % n
            dirs = directions.get(b)
            if dirs is None:
                directions[b] = {d}
            else:
                dirs.add(d)
            part_mask[b] = True
    hop_idx: List[int] = []
    hop_vec: List[Vec] = []
    conflicts = 0
    for idx, dirs in directions.items():
        if len(dirs) == 1:
            (d,) = dirs
            hop_idx.append(idx)
            hop_vec.append(d)
        elif len(dirs) == 2:
            a, b = sorted(dirs)
            if are_perpendicular(a, b):
                hop_idx.append(idx)
                hop_vec.append(add(a, b))   # Fig. 3b diagonal hop
            else:
                conflicts += 1              # impossible; freeze robot
        else:
            conflicts += 1
    # hops stay Python lists on this path: the engine's small-move
    # branch consumes them without round-tripping through arrays
    return KernelMergePlan(executing, hop_idx, hop_vec, part_mask,
                           conflicts=conflicts, cancelled=cancelled)


def plan_merges_arrays(patterns: List[MergePattern], n: int) -> KernelMergePlan:
    """Vectorised :func:`plan_merges` over chain indices.

    Black-index expansion, the short-pattern priority rule and the
    Fig. 3 overlap resolution all run as array passes: blacks unroll
    via ``np.repeat``, the per-black minimum pattern length folds with
    the sort+reduceat pass of :func:`segment_min_lookup` (no atomic
    scatter), and robots black in two patterns resolve
    their (necessarily perpendicular) diagonal hop by grouping the
    deduplicated ``(index, direction)`` pairs.  Small pattern sets take
    an equivalent tight Python loop instead (``_NUMPY_MIN_PATTERNS``).
    Requires at least one pattern; the caller skips merge-free rounds
    entirely.
    """
    if len(patterns) < _NUMPY_MIN_PATTERNS:
        return _plan_arrays_py(patterns, n)
    return _plan_arrays_np(patterns, n)


def segment_min_lookup(keys: np.ndarray, values: np.ndarray,
                       *queries: np.ndarray) -> List[np.ndarray]:
    """Per-key minimum of ``values``, read back at each query array.

    The sort+reduceat formulation of the planner's per-black
    minimum-k fold (DESIGN.md §2.14), shared by the per-chain and
    fleet planners: sort the (key, value) pairs once, segment-reduce
    with ``np.minimum.reduceat`` at the run starts, then binary-search
    the query cells against the distinct keys.  Keys absent from
    ``keys`` read as INT64_MAX ("no pattern covers this cell").
    Bit-identical to the ``np.minimum.at`` scatter it replaces, with
    two O(m log m) passes instead of a buffered atomic scatter plus a
    key-space-sized scratch fill.
    """
    order = np.argsort(keys)               # min is order-independent
    ks = keys[order]
    first = np.empty(len(ks), dtype=bool)
    first[0] = True
    np.not_equal(ks[1:], ks[:-1], out=first[1:])
    seg = np.flatnonzero(first)
    uk = ks[seg]
    mins = np.minimum.reduceat(values[order], seg)
    q = np.concatenate(queries) if len(queries) > 1 else queries[0]
    j = np.searchsorted(uk, q)
    np.minimum(j, len(uk) - 1, out=j)
    res = np.where(uk[j] == q, mins[j], np.iinfo(np.int64).max)
    if len(queries) == 1:
        return [res]
    return np.split(res, np.cumsum([len(x) for x in queries])[:-1])


def _plan_arrays_np(patterns: List[MergePattern], n: int) -> KernelMergePlan:
    """The NumPy body of :func:`plan_merges_arrays` (any pattern count)."""
    m = len(patterns)
    fb = np.fromiter((p.first_black for p in patterns), np.int64, m)
    k = np.fromiter((p.k for p in patterns), np.int64, m)
    dircode = np.fromiter((_VEC_TO_CODE[p.direction] for p in patterns),
                          np.int64, m)

    # black-index expansion: pattern p contributes blacks fb[p] .. fb[p]+k[p]-1
    rep = np.repeat(np.arange(m), k)
    offsets = np.arange(len(rep)) - np.repeat(np.cumsum(k) - k, k)
    black_idx = (fb[rep] + offsets) % n

    # short-pattern priority: cancel a pattern whose white is a black of
    # a strictly shorter pattern (see module docstring)
    w0 = (fb - 1) % n
    w1 = (fb + k) % n
    mk0, mk1 = segment_min_lookup(black_idx, k[rep], w0, w1)
    cancel = (mk0 < k) | (mk1 < k)
    cancelled = int(np.count_nonzero(cancel))
    executing = [p for p, c in zip(patterns, cancel.tolist()) if not c]

    part_mask = np.zeros(n, dtype=bool)
    if not executing:
        return KernelMergePlan(executing, np.empty(0, np.int64),
                               np.empty((0, 2), np.int64), part_mask,
                               cancelled=cancelled)

    keep = ~cancel
    keep_rep = keep[rep]
    bidx = black_idx[keep_rep]
    part_mask[bidx] = True
    part_mask[w0[keep]] = True
    part_mask[w1[keep]] = True

    # deduplicate (black index, hop direction) pairs, then resolve each
    # robot by its distinct hop-direction count (Fig. 3a/3b)
    key = np.unique(bidx * 4 + dircode[rep][keep_rep])
    idx_u = key >> 2
    code_u = key & 3
    first = np.flatnonzero(np.r_[True, idx_u[1:] != idx_u[:-1]])
    counts = np.diff(np.append(first, len(idx_u)))

    conflicts = 0
    single = first[counts == 1]
    hop_idx = [idx_u[single]]
    hop_vec = [_DIR_TABLE[code_u[single]]]
    double = first[counts == 2]
    if len(double):
        ca, cb = code_u[double], code_u[double + 1]
        perp = ((ca ^ cb) & 1) == 1
        hop_idx.append(idx_u[double[perp]])
        hop_vec.append(_DIR_TABLE[ca[perp]] + _DIR_TABLE[cb[perp]])
        conflicts += int(np.count_nonzero(~perp))   # impossible; freeze robot
    conflicts += int(np.count_nonzero(counts > 2))

    return KernelMergePlan(executing, np.concatenate(hop_idx),
                           np.concatenate(hop_vec), part_mask,
                           conflicts=conflicts, cancelled=cancelled)
