"""Local shape recognition: merges, run starts, quasi lines.

Everything the algorithm does is triggered by the *shape* of a short
subchain.  This module contains the three recognisers:

* **merge patterns** (paper Fig. 2): U-shaped windows whose edge
  sequence reads ``(-d, u, …, u, +d)`` with ``u ⊥ d`` — the black
  robots between the flanks hop by ``d`` onto the white endpoints;
* **run-start shapes** (paper Fig. 5): the two local patterns marking
  the endpoint of a quasi line, at which robots elect themselves to
  start runs;
* the **quasi-line edge grammar** (paper Def. 1 and Fig. 16) used to
  detect the endpoint of a quasi line ahead of a run (termination
  condition 2 of Table 1).

All recognisers are pure functions of edge vectors, so they apply
unchanged under every rotation/reflection (the vectors carry the
orientation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.grid.lattice import (
    Vec,
    ZERO,
    add,
    are_perpendicular,
    is_axis_unit,
    neg,
    sub,
)
from repro.core.view import ChainWindow


# ---------------------------------------------------------------------------
# merge patterns
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MergePattern:
    """A merge opportunity (paper Fig. 2).

    ``first_black`` is the chain index of the first black robot; there
    are ``k`` blacks hopping by ``direction``; the whites sit at chain
    indices ``first_black - 1`` and ``first_black + k``.
    """

    first_black: int
    k: int
    direction: Vec

    def black_indices(self, n: int) -> List[int]:
        """Chain indices of the black robots."""
        return [(self.first_black + j) % n for j in range(self.k)]

    def white_indices(self, n: int) -> Tuple[int, int]:
        """Chain indices of the two white robots."""
        return ((self.first_black - 1) % n, (self.first_black + self.k) % n)

    def participant_indices(self, n: int) -> List[int]:
        """All robots taking part in the merge operation."""
        w0, w1 = self.white_indices(n)
        return [w0, *self.black_indices(n), w1]


def find_merge_patterns(positions: Sequence[Vec], k_max: int) -> List[MergePattern]:
    """All merge patterns in a closed chain (reference implementation).

    A pattern with ``k`` blacks occupies ``k + 2`` consecutive robots
    whose ``k + 1`` edges read ``(-d, u × (k-1), +d)`` with ``u ⊥ d``.
    For ``k = 1`` the two whites coincide (the paper's "length 1" case).
    The visibility constraint caps ``k`` at ``k_max``.
    """
    n = len(positions)
    if n < 4:
        return []
    edges = [sub(positions[(i + 1) % n], positions[i]) for i in range(n)]
    patterns: List[MergePattern] = []
    for i in range(n):
        lead = edges[(i - 1) % n]          # edge from white_l into the first black
        if not is_axis_unit(lead):
            continue
        d = neg(lead)                      # blacks hop toward the whites' side
        # k = 1 spike: the very next edge already points back by +d.
        if edges[i] == d:
            patterns.append(MergePattern(first_black=i, k=1, direction=d))
            continue
        # k >= 2: walk the straight middle run (perpendicular to d).
        u = edges[i]
        if not is_axis_unit(u) or not are_perpendicular(u, d):
            continue
        j = i
        middle = 0
        while middle < k_max - 1 and edges[j % n] == u:
            middle += 1
            j += 1
            if edges[j % n] == d:
                k = middle + 1
                if k + 2 <= n:             # pattern must not lap the chain
                    patterns.append(MergePattern(first_black=i, k=k, direction=d))
                break
    return patterns


# ---------------------------------------------------------------------------
# run-start shapes (paper Fig. 5)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RunStart:
    """A run-start decision at the window's anchor robot.

    ``direction`` is the chain direction the run will move along;
    ``kind`` is ``"i"`` (quasi line meets a stairway, Fig. 5(i)) or
    ``"ii"`` (two quasi lines meet at a corner, Fig. 5(ii) — the corner
    fires once per direction, so a (ii) corner yields two RunStarts).
    ``axis`` is the unit vector of the quasi line's first segment as
    seen from the start (stored in the run's constant memory).
    """

    direction: int
    kind: str
    axis: Vec


def run_start_decisions(window: ChainWindow) -> List[RunStart]:
    """Run starts fired by the anchor robot (checked every L-th round).

    For each chain direction σ the anchor starts a run toward σ when it
    is the last robot of a ≥3-aligned segment extending toward σ while
    the shape behind it ends the quasi line:

    * Fig. 5(ii): the two robots behind continue perpendicularly (the
      anchor is the corner shared with a perpendicular quasi line);
    * Fig. 5(i): one perpendicular step, one axis step, then another
      perpendicular step in the same rotational sense — a stairway.
    """
    starts: List[RunStart] = []
    for sigma in (1, -1):
        e1 = window.edge(0, sigma)
        if not is_axis_unit(e1):
            continue
        if window.edge(sigma, sigma) != e1:
            continue                       # anchor, m1, m2 must be aligned
        g1 = window.edge(0, -sigma)
        if not (is_axis_unit(g1) and are_perpendicular(g1, e1)):
            continue
        g2 = window.edge(-sigma, -sigma)
        if g2 == g1:
            # perpendicular segment of >= 3 robots behind: Fig. 5(ii)
            starts.append(RunStart(direction=sigma, kind="ii", axis=e1))
            continue
        if not (is_axis_unit(g2) and are_perpendicular(g2, g1)):
            continue                       # axis step expected next
        g3 = window.edge(-2 * sigma, -sigma)
        if g3 == g1:
            # same rotational sense: a stairway begins behind: Fig. 5(i)
            starts.append(RunStart(direction=sigma, kind="i", axis=e1))
    return starts


# ---------------------------------------------------------------------------
# quasi-line grammar (paper Def. 1) and endpoint visibility (Table 1.2)
# ---------------------------------------------------------------------------

def _axis_of(v: Vec) -> str:
    return "x" if v[1] == 0 else "y"


#: Unit edge -> direction code (parity of the code gives the axis);
#: ``-1`` marks a zero edge, missing entries are diagonals.  The grammar
#: below parses integer codes instead of vector tuples because the
#: endpoint scan runs for every live run every round (see bench_engines).
_VEC_TO_CODE = {(1, 0): 0, (0, 1): 1, (-1, 0): 2, (0, -1): 3, (0, 0): -1}

_DIAGONAL = -2

#: Memo for the endpoint grammar: (code tuple, axis parity, k_max) ->
#: verdict.  The parse is pure and windows repeat heavily (a run on a
#: straight quasi line sees the same code window for many rounds), so
#: the hit rate is high on the measured hot path.  Bounded: cleared
#: when it outgrows _ENDPOINT_CACHE_MAX distinct windows.
_ENDPOINT_CACHE: dict = {}
_ENDPOINT_CACHE_MAX = 1 << 15


def endpoint_visible_ahead(window: ChainWindow, direction: int, axis: Vec,
                           k_max: int,
                           edges: Optional[List[Vec]] = None,
                           codes: Optional[List[int]] = None) -> bool:
    """Termination condition 2: the quasi line ends within view ahead.

    Walks the visible edges ahead of the runner and parses them with the
    quasi-line grammar.  The quasi line (axis ``axis``) ends where the
    grammar breaks irrecoverably:

    * two equal consecutive perpendicular edges (a perpendicular segment
      of ≥ 3 robots — a perpendicular quasi line starts), or
    * a stairway step ``(⊥w, axis, ⊥w)``.

    Mergeable U-shapes (``(⊥w, axis×m, ⊥-w)`` with ``m + 1 ≤ k_max``)
    and legal jogs/wiggles (segments of ≥ 3 robots between jogs) do not
    end the line: the former resolve by merging, the latter are part of
    the quasi line.

    ``edges`` may pass a pre-fetched ``window.ahead_edges(direction,
    window.limit)`` scan to share it with the caller's operation checks;
    ``codes`` may pass the equivalent ``window.ahead_codes`` scan
    directly (the engine's hot path).
    """
    limit = window.limit
    if codes is None:
        if edges is None:
            edges = window.ahead_edges(direction, limit)
        to_code = _VEC_TO_CODE.get
        codes = [to_code(e, _DIAGONAL) for e in edges]
    apar = 0 if axis[1] == 0 else 1        # parity of the quasi-line axis
    return endpoint_visible_codes(codes, limit, apar, k_max)


def endpoint_visible_codes(codes: List[int], limit: int, apar: int,
                           k_max: int) -> bool:
    """Memoised endpoint verdict on a raw walking-direction code window.

    Window-free entry point for :func:`endpoint_visible_ahead`, shared
    with the kernel engine's vectorised decision stage (its flagged
    candidates parse through the exact same grammar and memo —
    DESIGN.md §2.9).  ``apar`` is the parity of the quasi-line axis
    (0 = x, 1 = y).
    """
    key = (tuple(codes), limit, apar, k_max)
    cached = _ENDPOINT_CACHE.get(key)
    if cached is not None:
        return cached
    verdict = _parse_endpoint(codes, limit, apar, k_max)
    if len(_ENDPOINT_CACHE) >= _ENDPOINT_CACHE_MAX:
        _ENDPOINT_CACHE.clear()
    _ENDPOINT_CACHE[key] = verdict
    return verdict


def _parse_endpoint(codes: List[int], limit: int, apar: int, k_max: int) -> bool:
    """The quasi-line grammar parse behind :func:`endpoint_visible_ahead`."""
    j = 0
    while j < limit:
        c = codes[j]
        if c == -1:
            return False                   # transient merge residue; re-check next round
        if c == _DIAGONAL:
            return True                    # diagonal edge: structurally broken (defensive)
        if (c & 1) == apar:
            j += 1
            continue
        # perpendicular edge: classify the feature it opens
        if j + 1 >= limit:
            return False                   # unresolved at the horizon
        nxt = codes[j + 1]
        if nxt < 0:
            return nxt == _DIAGONAL
        if (nxt & 1) != apar:
            if nxt == c:
                return True                # ⊥⊥ same: perpendicular segment of >= 3
            j += 2                         # spike (k=1 U): merge resolves it
            continue
        # perpendicular edge followed by an axis run of length m
        m = 0
        t = j + 1
        while t < limit and codes[t] == nxt:
            m += 1
            t += 1
        if t >= limit:
            return False                   # axis run reaches the horizon: unresolved
        closing = codes[t]
        if closing < 0:
            return closing == _DIAGONAL
        if (closing & 1) == apar:
            # axis run with a direction change inside — a spike on the
            # axis; treat conservatively as unresolved structure.
            j = t
            continue
        if closing == c:
            if m == 1:
                return True                # stairway step
            j = t                          # legal jog; closing edge opens next feature
            continue
        # closing == c ^ 2 (the opposite flank): a U with m middle edges
        # (k = m + 1 blacks)
        if m + 1 <= k_max:
            j = t + 1                      # mergeable: both flanks consumed
        else:
            j = t                          # legal wiggle; closing edge re-parsed
    return False


def quasi_line_segments(positions: Sequence[Vec]) -> List[Tuple[str, int, int]]:
    """Decompose a chain's edges into maximal straight segments.

    Returns ``(axis, start_edge, length)`` triples in chain order, used
    by the quasi-line analysis tooling and the generators' validators.
    """
    n = len(positions)
    edges = [sub(positions[(i + 1) % n], positions[i]) for i in range(n)]
    segs: List[Tuple[str, int, int]] = []
    i = 0
    while i < n:
        e = edges[i]
        if e == ZERO:
            i += 1
            continue
        axis = _axis_of(e)
        j = i
        while j + 1 < n and edges[j + 1] == e:
            j += 1
        segs.append((axis, i, j - i + 1))
        i = j + 1
    return segs


def is_quasi_line(positions: Sequence[Vec], axis: str) -> bool:
    """Definition 1 check for an *open* subchain given as positions.

    A horizontal (axis ``"x"``) quasi line: first and last three robots
    aligned on the axis, every axis segment has ≥ 3 robots, every
    perpendicular segment has ≤ 2 robots.
    """
    pts = list(positions)
    if len(pts) < 3:
        return False
    edges = [sub(pts[i + 1], pts[i]) for i in range(len(pts) - 1)]
    if not all(is_axis_unit(e) for e in edges):
        return False
    # first and last three robots aligned on the axis
    for probe in (edges[:2], edges[-2:]):
        if len(probe) < 2 or probe[0] != probe[1] or _axis_of(probe[0]) != axis:
            return False
    # segment length constraints
    i = 0
    while i < len(edges):
        e = edges[i]
        j = i
        while j + 1 < len(edges) and edges[j + 1] == e:
            j += 1
        seg_edges = j - i + 1
        if _axis_of(e) == axis:
            if seg_edges < 2:
                return False               # axis segment of 2 robots
        else:
            if seg_edges > 1:
                return False               # perpendicular segment of >= 3 robots
        i = j + 1
    return True


def is_stairway(positions: Sequence[Vec]) -> bool:
    """True for a subchain of alternating left and right turns (Fig. 16).

    Every edge is a unit step and consecutive edges are perpendicular
    with a consistent alternation (each pair of same-axis edges points
    the same way — the staircase always advances).
    """
    pts = list(positions)
    if len(pts) < 3:
        return False
    edges = [sub(pts[i + 1], pts[i]) for i in range(len(pts) - 1)]
    if not all(is_axis_unit(e) for e in edges):
        return False
    for a, b in zip(edges, edges[1:]):
        if not are_perpendicular(a, b):
            return False
    for a, b in zip(edges, edges[2:]):
        if a != b:
            return False
    return True
