"""Simulation outcome dataclasses.

:class:`GatheringResult` is produced by every execution tier — the
single-chain :class:`~repro.core.simulator.Simulator`, the shared-array
:class:`~repro.core.engine_fleet.FleetKernel` and the
:class:`~repro.core.batch.BatchSimulator` fan-out — so it lives below
all of them: the simulator facade imports the kernel engine, which
imports the fleet kernel, which must not import the facade back.
(Import it from :mod:`repro.core.simulator` or :mod:`repro.core` as
before; both re-export it.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.grid.lattice import Vec
from repro.core.config import Parameters
from repro.core.events import RoundReport, Trace


@dataclass
class GatheringResult:
    """Outcome of a gathering simulation."""

    gathered: bool
    rounds: int
    initial_n: int
    final_n: int
    final_positions: List[Vec]
    params: Parameters
    reports: List[RoundReport] = field(default_factory=list)
    trace: Optional[Trace] = None
    stalled: bool = False
    wall_time: float = 0.0

    @property
    def total_merges(self) -> int:
        """Robots removed over the whole simulation."""
        return self.initial_n - self.final_n

    @property
    def rounds_per_robot(self) -> float:
        """Normalised round count — the paper predicts an O(1) value."""
        return self.rounds / max(self.initial_n, 1)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        state = "gathered" if self.gathered else ("STALLED" if self.stalled else "stopped")
        return (f"{state}: n={self.initial_n} -> {self.final_n} in {self.rounds} rounds "
                f"({self.rounds_per_robot:.2f} rounds/robot)")


@dataclass
class ChainOutcome:
    """Per-entry outcome of a *supervised* stream.

    Every stream index resolves to exactly one outcome: either a
    :class:`GatheringResult` (which may itself be degraded — stalled or
    budget-exhausted — but is still a result), or a structured error
    record for a chain the supervision tier quarantined instead of
    letting it abort the stream.  ``error`` is the exception class name
    (``ChainError``, ``InvariantViolation``, ``WorkerCrashError``, or
    the injected ``FaultCrash``), ``stage`` says where it was caught
    (``admit``, ``round``, ``worker``, ``intake``), and ``retries``
    counts re-dispatch attempts for worker-crash quarantines.
    """

    index: int
    result: Optional[GatheringResult] = None
    error: Optional[str] = None
    message: str = ""
    stage: str = ""
    retries: int = 0
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> GatheringResult:
        """The result, or :class:`~repro.errors.QuarantinedChainError`."""
        if self.result is not None:
            return self.result
        from repro.errors import QuarantinedChainError
        raise QuarantinedChainError(
            f"chain {self.index} quarantined at {self.stage or '?'}: "
            f"{self.error}: {self.message}",
            index=self.index, stage=self.stage)

    def to_doc(self) -> dict:
        """JSON-ready form (dead-letter ledger / shard results ledger)."""
        doc = {"kind": "chain", "chain": self.index,
               "quarantined": self.quarantined}
        if self.error is not None:
            doc["error"] = self.error
            doc["message"] = self.message
            doc["stage"] = self.stage
            if self.retries:
                doc["retries"] = self.retries
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "ChainOutcome":
        return cls(index=int(doc["chain"]),
                   error=doc.get("error"),
                   message=str(doc.get("message", "")),
                   stage=str(doc.get("stage", "")),
                   retries=int(doc.get("retries", 0)),
                   quarantined=bool(doc.get("quarantined", False)))
