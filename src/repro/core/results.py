"""Simulation outcome dataclasses.

:class:`GatheringResult` is produced by every execution tier — the
single-chain :class:`~repro.core.simulator.Simulator`, the shared-array
:class:`~repro.core.engine_fleet.FleetKernel` and the
:class:`~repro.core.batch.BatchSimulator` fan-out — so it lives below
all of them: the simulator facade imports the kernel engine, which
imports the fleet kernel, which must not import the facade back.
(Import it from :mod:`repro.core.simulator` or :mod:`repro.core` as
before; both re-export it.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.grid.lattice import Vec
from repro.core.config import Parameters
from repro.core.events import RoundReport, Trace


@dataclass
class GatheringResult:
    """Outcome of a gathering simulation."""

    gathered: bool
    rounds: int
    initial_n: int
    final_n: int
    final_positions: List[Vec]
    params: Parameters
    reports: List[RoundReport] = field(default_factory=list)
    trace: Optional[Trace] = None
    stalled: bool = False
    wall_time: float = 0.0

    @property
    def total_merges(self) -> int:
        """Robots removed over the whole simulation."""
        return self.initial_n - self.final_n

    @property
    def rounds_per_robot(self) -> float:
        """Normalised round count — the paper predicts an O(1) value."""
        return self.rounds / max(self.initial_n, 1)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        state = "gathered" if self.gathered else ("STALLED" if self.stalled else "stopped")
        return (f"{state}: n={self.initial_n} -> {self.final_n} in {self.rounds} rounds "
                f"({self.rounds_per_robot:.2f} rounds/robot)")
