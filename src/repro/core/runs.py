"""Run states and the run registry.

A *run* is the moving token of the paper's reshapement machinery
(§3.2/§4.1): it travels along the chain one robot per round in a fixed
chain direction; the robot currently carrying it (the *runner*) may
perform reshapement hops.  Runs occupy constant memory per robot (at
most two runs, each a handful of scalars), honouring the paper's
constant-memory model.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.grid.lattice import Vec


class RunMode(enum.Enum):
    """Operating mode of a run (paper Fig. 11 and Fig. 8)."""

    #: Fresh run from a Fig. 5(ii) corner: performs the corner-cut
    #: diagonal hop in its first acting round (operation (c)).
    INIT_CORNER = "init_corner"
    #: Default: reshapement hops whenever the local shape allows (op (a)).
    NORMAL = "normal"
    #: Hop-less movement toward a settled target corner (op (b)/(c)).
    TRAVEL = "travel"
    #: Run passing (Fig. 8/14): hop-less movement through an oncoming run.
    PASSING = "passing"


class StopReason(enum.Enum):
    """Why a run terminated — Table 1 of the paper."""

    SEQUENT_RUN_AHEAD = 1        # Table 1.1
    ENDPOINT_VISIBLE = 2         # Table 1.2
    MERGE_PARTICIPATION = 3      # Table 1.3
    PASSING_TARGET_REMOVED = 4   # Table 1.4
    TRAVEL_TARGET_REMOVED = 5    # Table 1.5
    RUNNER_REMOVED = 6           # carrier merged away (subsumed by 3 in the paper)
    DUPLICATE_DIRECTION = 7      # safety: two same-direction runs on one robot


@dataclass
class RunState:
    """One run token.

    Attributes
    ----------
    run_id: unique id for tracing.
    robot_id: the robot currently carrying the run.
    direction: chain direction of movement (+1/-1).
    axis: unit vector of the quasi line's segment at start time — the
        constant-memory orientation reference used by the endpoint
        grammar (Table 1.2).
    mode: current :class:`RunMode`.
    target_id: robot identity of the travel/passing target corner.
    travel_steps_left: remaining hop-less moves of operation (b).
    born_round: round the run was started (for pipelining analysis).
    hops: reshapement hops performed so far (analysis only).
    """

    run_id: int
    robot_id: int
    direction: int
    axis: Vec
    mode: RunMode = RunMode.NORMAL
    target_id: Optional[int] = None
    travel_steps_left: int = 0
    born_round: int = 0
    hops: int = 0
    stop_reason: Optional[StopReason] = None
    stopped_round: Optional[int] = None

    @property
    def active(self) -> bool:
        """True until the run terminates."""
        return self.stop_reason is None


class RunRegistry:
    """All live runs, indexed by carrier robot.

    The registry lives in the simulator; each robot's slice of it is
    bounded (≤ 2 runs), preserving the constant-memory model.
    """

    def __init__(self) -> None:
        self._runs: Dict[int, RunState] = {}
        self._by_robot: Dict[int, List[int]] = {}
        self._counter = itertools.count()
        self.stopped: List[RunState] = []

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._runs)

    def active_runs(self) -> List[RunState]:
        """All live runs (stable order by run id).

        Run ids are handed out monotonically and dicts preserve
        insertion order, so the values are already id-sorted.
        """
        return list(self._runs.values())

    def runs_on(self, robot_id: int) -> List[RunState]:
        """Live runs carried by a robot."""
        return [self._runs[rid] for rid in self._by_robot.get(robot_id, ())]

    def crowded_runs(self) -> List[RunState]:
        """Runs on robots carrying more than one run (stable order).

        Only these can violate the one-run-per-direction rule, so the
        engine's duplicate-direction sweep scans this (usually empty)
        list instead of every active run.
        """
        out = [self._runs[rid]
               for rids in self._by_robot.values() if len(rids) > 1
               for rid in rids]
        out.sort(key=lambda r: r.run_id)
        return out

    def directions_on(self, robot_id: int) -> Tuple[int, ...]:
        """Chain directions of the runs carried by a robot."""
        return tuple(r.direction for r in self.runs_on(robot_id))

    # -- lifecycle ---------------------------------------------------------
    def start(self, robot_id: int, direction: int, axis: Vec, round_index: int,
              mode: RunMode = RunMode.NORMAL) -> Optional[RunState]:
        """Create a run unless the robot is already at capacity.

        A robot stores at most two runs and never two with the same
        direction (it could not tell them apart).
        """
        existing = self.runs_on(robot_id)
        if len(existing) >= 2 or any(r.direction == direction for r in existing):
            return None
        run = RunState(run_id=next(self._counter), robot_id=robot_id,
                       direction=direction, axis=axis, mode=mode,
                       born_round=round_index)
        self._runs[run.run_id] = run
        self._by_robot.setdefault(robot_id, []).append(run.run_id)
        return run

    def stop(self, run: RunState, reason: StopReason, round_index: int) -> None:
        """Terminate a run (Table 1)."""
        if not run.active:
            return
        run.stop_reason = reason
        run.stopped_round = round_index
        self._runs.pop(run.run_id, None)
        robot_runs = self._by_robot.get(run.robot_id)
        if robot_runs and run.run_id in robot_runs:
            robot_runs.remove(run.run_id)
            if not robot_runs:
                del self._by_robot[run.robot_id]
        self.stopped.append(run)

    def advance_runs(self, post_ids: List[int], post_index: Dict[int, int]
                     ) -> List[Tuple[int, int, int]]:
        """Hand every live run to its next robot in one sweep.

        Bulk form of :meth:`move` for the engine's step 9: all runs move
        simultaneously, so the per-robot index rebuilds as one pass.
        Returns ``(old_robot_id, new_robot_id, direction)`` triples so
        the run-speed invariant can re-derive the expected neighbour
        independently (Lemma 3.1).
        """
        n = len(post_ids)
        by_robot: Dict[int, List[int]] = {}
        moved: List[Tuple[int, int, int]] = []
        for run in self._runs.values():
            old = run.robot_id
            nxt = post_ids[(post_index[old] + run.direction) % n]
            run.robot_id = nxt
            moved.append((old, nxt, run.direction))
            lst = by_robot.get(nxt)
            if lst is None:
                by_robot[nxt] = [run.run_id]
            else:
                lst.append(run.run_id)
        self._by_robot = by_robot
        return moved

    def move(self, run: RunState, new_robot_id: int) -> None:
        """Hand a run to the next robot along its direction."""
        if not run.active:
            raise ValueError("cannot move a stopped run")
        by_robot = self._by_robot
        old = by_robot.get(run.robot_id)
        if old and run.run_id in old:
            old.remove(run.run_id)
            if not old:
                del by_robot[run.robot_id]
        run.robot_id = new_robot_id
        new = by_robot.get(new_robot_id)
        if new is None:
            by_robot[new_robot_id] = [run.run_id]
        else:
            new.append(run.run_id)

    def runs_lookup(self):
        """Callable ``robot_id -> tuple of run directions`` for views."""
        return self.directions_on
