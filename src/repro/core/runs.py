"""Run states and the run registry (struct-of-arrays store).

A *run* is the moving token of the paper's reshapement machinery
(§3.2/§4.1): it travels along the chain one robot per round in a fixed
chain direction; the robot currently carrying it (the *runner*) may
perform reshapement hops.  Runs occupy constant memory per robot (at
most two runs, each a handful of scalars), honouring the paper's
constant-memory model.

Storage model (DESIGN.md §2.9): the registry owns one ``(capacity,
11)`` int64 matrix — one row per run ever started, indexed by
``run_id`` (ids are handed out sequentially, so the id *is* the row),
one column per field (see the ``COL_*`` constants).  The kernel engine
(:mod:`repro.core.engine_kernel`) and the bulk decision stage
(:mod:`repro.core.decisions_vectorized`) read and write columns of
this matrix in bulk; the scalar decision path extracts the live rows
as plain Python lists with a single gather.  :class:`RunState` is a
thin per-run view object over one row, keeping the original attribute
API for the reference engine, the policy code and the tests.  A
:class:`RunState` constructed directly (outside a registry) carries
its own scalar storage, so the class remains usable standalone.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.grid.lattice import Vec


class RunMode(enum.Enum):
    """Operating mode of a run (paper Fig. 11 and Fig. 8)."""

    #: Fresh run from a Fig. 5(ii) corner: performs the corner-cut
    #: diagonal hop in its first acting round (operation (c)).
    INIT_CORNER = "init_corner"
    #: Default: reshapement hops whenever the local shape allows (op (a)).
    NORMAL = "normal"
    #: Hop-less movement toward a settled target corner (op (b)/(c)).
    TRAVEL = "travel"
    #: Run passing (Fig. 8/14): hop-less movement through an oncoming run.
    PASSING = "passing"


class StopReason(enum.Enum):
    """Why a run terminated — Table 1 of the paper."""

    SEQUENT_RUN_AHEAD = 1        # Table 1.1
    ENDPOINT_VISIBLE = 2         # Table 1.2
    MERGE_PARTICIPATION = 3      # Table 1.3
    PASSING_TARGET_REMOVED = 4   # Table 1.4
    TRAVEL_TARGET_REMOVED = 5    # Table 1.5
    RUNNER_REMOVED = 6           # carrier merged away (subsumed by 3 in the paper)
    DUPLICATE_DIRECTION = 7      # safety: two same-direction runs on one robot


#: Integer encodings used by the registry matrix (and the kernel
#: engine's decision stage).  Mode codes index ``MODE_FROM_CODE``;
#: stop-reason code 0 means "still active", otherwise the code is the
#: :class:`StopReason` value.
MODE_INIT_CORNER, MODE_NORMAL, MODE_TRAVEL, MODE_PASSING = 0, 1, 2, 3
MODE_FROM_CODE: Tuple[RunMode, ...] = (
    RunMode.INIT_CORNER, RunMode.NORMAL, RunMode.TRAVEL, RunMode.PASSING)
MODE_TO_CODE: Dict[RunMode, int] = {m: i for i, m in enumerate(MODE_FROM_CODE)}
STOP_FROM_CODE: Tuple[Optional[StopReason], ...] = (
    None,) + tuple(StopReason(v) for v in range(1, 8))

#: Columns of the registry matrix.  The seven decision-hot fields come
#: first so the scalar decision path and the row-snapshot builder
#: gather ``[:, :7]`` only.  ``COL_CHAIN`` tags the owning fleet
#: member (always 0 for single-chain engines) so one registry can hold
#: every live run of a fleet (:mod:`repro.core.engine_fleet`).
(COL_ROBOT, COL_DIRN, COL_MODE, COL_TARGET, COL_STEPS, COL_AXY,
 COL_AXX, COL_BORN, COL_HOPS, COL_STOP, COL_STOPPED, COL_CHAIN) = range(12)
_COLS = 12
_HOT_COLS = 7

#: target_id / stopped_round sentinel for "None" in the int matrix.
_NONE = -1


class RunState:
    """One run token (view over a registry row, or standalone).

    Attributes
    ----------
    run_id: unique id for tracing (equals the registry row).
    robot_id: the robot currently carrying the run.
    direction: chain direction of movement (+1/-1).
    axis: unit vector of the quasi line's segment at start time — the
        constant-memory orientation reference used by the endpoint
        grammar (Table 1.2).
    mode: current :class:`RunMode`.
    target_id: robot identity of the travel/passing target corner.
    travel_steps_left: remaining hop-less moves of operation (b).
    born_round: round the run was started (for pipelining analysis).
    hops: reshapement hops performed so far (analysis only).
    """

    __slots__ = ("run_id", "_reg", "_f", "direction", "axis", "born_round")

    def __init__(self, run_id: int, robot_id: int, direction: int, axis: Vec,
                 mode: RunMode = RunMode.NORMAL,
                 target_id: Optional[int] = None,
                 travel_steps_left: int = 0,
                 born_round: int = 0,
                 hops: int = 0,
                 stop_reason: Optional[StopReason] = None,
                 stopped_round: Optional[int] = None):
        # standalone construction; registry views are built by
        # RunRegistry._view, bypassing __init__.  direction/axis/
        # born_round are immutable per run, so they live as plain
        # attributes in both flavours (hot-path reads skip the
        # array-backed property machinery).
        self.run_id = run_id
        self._reg = None
        self.direction = direction
        self.axis = (int(axis[0]), int(axis[1]))
        self.born_round = born_round
        self._f = {"robot_id": robot_id, "mode": mode,
                   "target_id": target_id,
                   "travel_steps_left": travel_steps_left,
                   "hops": hops, "stop_reason": stop_reason,
                   "stopped_round": stopped_round}

    # -- field access (matrix-backed or standalone) ------------------------
    @property
    def robot_id(self) -> int:
        r = self._reg
        return int(r._data[self.run_id, COL_ROBOT]) \
            if r is not None else self._f["robot_id"]

    @robot_id.setter
    def robot_id(self, value: int) -> None:
        r = self._reg
        if r is not None:
            r._data[self.run_id, COL_ROBOT] = value
        else:
            self._f["robot_id"] = value

    @property
    def mode(self) -> RunMode:
        r = self._reg
        if r is not None:
            return MODE_FROM_CODE[r._data[self.run_id, COL_MODE]]
        return self._f["mode"]

    @mode.setter
    def mode(self, value: RunMode) -> None:
        r = self._reg
        if r is not None:
            r._data[self.run_id, COL_MODE] = MODE_TO_CODE[value]
        else:
            self._f["mode"] = value

    @property
    def target_id(self) -> Optional[int]:
        r = self._reg
        if r is not None:
            t = int(r._data[self.run_id, COL_TARGET])
            return None if t == _NONE else t
        return self._f["target_id"]

    @target_id.setter
    def target_id(self, value: Optional[int]) -> None:
        r = self._reg
        if r is not None:
            r._data[self.run_id, COL_TARGET] = _NONE if value is None else value
        else:
            self._f["target_id"] = value

    @property
    def travel_steps_left(self) -> int:
        r = self._reg
        return int(r._data[self.run_id, COL_STEPS]) \
            if r is not None else self._f["travel_steps_left"]

    @travel_steps_left.setter
    def travel_steps_left(self, value: int) -> None:
        r = self._reg
        if r is not None:
            r._data[self.run_id, COL_STEPS] = value
        else:
            self._f["travel_steps_left"] = value

    @property
    def hops(self) -> int:
        r = self._reg
        return int(r._data[self.run_id, COL_HOPS]) \
            if r is not None else self._f["hops"]

    @hops.setter
    def hops(self, value: int) -> None:
        r = self._reg
        if r is not None:
            r._data[self.run_id, COL_HOPS] = value
        else:
            self._f["hops"] = value

    @property
    def stop_reason(self) -> Optional[StopReason]:
        r = self._reg
        if r is not None:
            return STOP_FROM_CODE[r._data[self.run_id, COL_STOP]]
        return self._f["stop_reason"]

    @property
    def stopped_round(self) -> Optional[int]:
        r = self._reg
        if r is not None:
            sr = int(r._data[self.run_id, COL_STOPPED])
            return None if sr == _NONE else sr
        return self._f["stopped_round"]

    @property
    def active(self) -> bool:
        """True until the run terminates."""
        r = self._reg
        if r is not None:
            return r._data[self.run_id, COL_STOP] == 0
        return self._f["stop_reason"] is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunState(run_id={self.run_id}, robot_id={self.robot_id}, "
                f"direction={self.direction}, mode={self.mode.value}, "
                f"active={self.active})")


class DecisionRow:
    """Row-local snapshot of one run's decision-hot fields.

    The reference decision loop reads each field once or twice per
    round; going through :class:`RunState`'s matrix-backed properties
    costs a NumPy scalar read per access.  A ``DecisionRow`` is built
    from one bulk row gather (:meth:`RunRegistry.decision_rows`) and
    serves those reads as plain attribute access —
    :func:`repro.core.algorithm.decide_run` accepts either flavour
    (it only reads; state application still goes through the view).
    """

    __slots__ = ("run_id", "robot_id", "direction", "axis", "mode",
                 "target_id", "travel_steps_left")

    def __init__(self, run_id: int, robot_id: int, direction: int, axis: Vec,
                 mode: RunMode, target_id: Optional[int],
                 travel_steps_left: int):
        self.run_id = run_id
        self.robot_id = robot_id
        self.direction = direction
        self.axis = axis
        self.mode = mode
        self.target_id = target_id
        self.travel_steps_left = travel_steps_left


class RunRegistry:
    """All live runs, indexed by carrier robot.

    The registry lives in the simulator; each robot's slice of it is
    bounded (≤ 2 runs), preserving the constant-memory model.  State is
    one ``(capacity, 11)`` int64 matrix (row == run id, columns are the
    ``COL_*`` fields); the per-robot index is derived lazily so bulk
    matrix updates (the kernel engine's advance/stop sweeps) never pay
    for it.
    """

    __slots__ = ("_data", "_count", "_active", "_active_arr",
                 "_by_robot", "_by_robot_dirty", "_views", "stopped",
                 "keep_stopped")

    _INITIAL_CAP = 16

    def __init__(self) -> None:
        self._data = np.zeros((self._INITIAL_CAP, _COLS), dtype=np.int64)
        self._count = 0                    # runs ever started (next run id)
        self._active: List[int] = []       # live run ids, ascending
        self._active_arr: Optional[np.ndarray] = None
        self._by_robot: Dict[int, List[int]] = {}
        self._by_robot_dirty = False
        self._views: Dict[int, RunState] = {}
        self.stopped: List[RunState] = []
        #: keep view objects of terminated runs on ``stopped`` (the
        #: engines' trace/debug surface).  The fleet engine turns this
        #: off — it never reads ``stopped`` and skips the view builds.
        self.keep_stopped = True

    # -- column views (bulk access API) ------------------------------------
    @property
    def robot(self) -> np.ndarray:
        """Carrier robot ids, indexed by run id (writable column view)."""
        return self._data[:, COL_ROBOT]

    @property
    def dirn(self) -> np.ndarray:
        """Chain directions (+1/-1), indexed by run id."""
        return self._data[:, COL_DIRN]

    @property
    def mode_code(self) -> np.ndarray:
        """Mode codes (``MODE_*`` constants), indexed by run id."""
        return self._data[:, COL_MODE]

    @property
    def target(self) -> np.ndarray:
        """Target robot ids (-1 = none), indexed by run id."""
        return self._data[:, COL_TARGET]

    @property
    def steps(self) -> np.ndarray:
        """Travel steps left, indexed by run id."""
        return self._data[:, COL_STEPS]

    @property
    def born(self) -> np.ndarray:
        """Birth rounds, indexed by run id."""
        return self._data[:, COL_BORN]

    @property
    def hop_count(self) -> np.ndarray:
        """Reshapement hop counters, indexed by run id."""
        return self._data[:, COL_HOPS]

    @property
    def stop_code(self) -> np.ndarray:
        """Stop-reason codes (0 = active), indexed by run id."""
        return self._data[:, COL_STOP]

    @property
    def axis_parity(self) -> np.ndarray:
        """Axis parity (0 = x, 1 = y), indexed by run id."""
        return (self._data[:, COL_AXY] != 0).astype(np.int64)

    @property
    def chain_col(self) -> np.ndarray:
        """Owning fleet-chain ids (0 for single-chain engines), by run id."""
        return self._data[:, COL_CHAIN]

    # -- internals ---------------------------------------------------------
    def _grow(self) -> None:
        new = np.zeros((len(self._data) * 2, _COLS), dtype=np.int64)
        new[:len(self._data)] = self._data
        self._data = new

    # -- snapshot / restore (durability tier, DESIGN.md §2.12) -------------
    def snapshot_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, int]]:
        """Registry state as plain arrays + scalar metadata.

        The run matrix rows up to ``_count`` and the live-run id list
        capture everything the scheduler reads; view objects, the
        by-robot index and the stopped list are derived or debug-only
        state and are not part of a snapshot.
        """
        arrays = {
            "data": self._data[:self._count].copy(),
            "active": np.array(self._active, dtype=np.int64),
        }
        meta = {"count": int(self._count),
                "keep_stopped": int(self.keep_stopped)}
        return arrays, meta

    @classmethod
    def restore_state(cls, arrays: Dict[str, np.ndarray],
                      meta: Dict[str, int]) -> "RunRegistry":
        """Rebuild a registry from :meth:`snapshot_state` output."""
        self = cls()
        count = int(meta["count"])
        cap = self._INITIAL_CAP
        while cap < count:
            cap *= 2
        if cap > len(self._data):
            self._data = np.zeros((cap, _COLS), dtype=np.int64)
        self._data[:count] = arrays["data"]
        self._count = count
        self._active = [int(r) for r in arrays["active"]]
        self._active_arr = None
        self._by_robot_dirty = True
        self.keep_stopped = bool(meta["keep_stopped"])
        return self

    def _view(self, run_id: int) -> RunState:
        view = self._views.get(run_id)
        if view is None:
            row = self._data[run_id]
            view = RunState.__new__(RunState)
            view.run_id = run_id
            view._reg = self
            view._f = None
            view.direction = int(row[COL_DIRN])
            view.axis = (int(row[COL_AXX]), int(row[COL_AXY]))
            view.born_round = int(row[COL_BORN])
            self._views[run_id] = view
        return view

    def _ensure_by_robot(self) -> Dict[int, List[int]]:
        if self._by_robot_dirty:
            by_robot: Dict[int, List[int]] = {}
            data = self._data
            for rid in self._active:
                by_robot.setdefault(int(data[rid, COL_ROBOT]), []).append(rid)
            self._by_robot = by_robot
            self._by_robot_dirty = False
        return self._by_robot

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._active)

    def active_runs(self) -> List[RunState]:
        """All live runs (stable order by run id)."""
        view = self._view
        return [view(rid) for rid in self._active]

    def active_slots(self) -> np.ndarray:
        """Live run ids (== matrix rows) as an ascending int64 array.

        The kernel engine's bulk reads index the registry matrix with
        this; the array is cached until the live set changes.
        """
        arr = self._active_arr
        if arr is None:
            arr = np.array(self._active, dtype=np.int64)
            self._active_arr = arr
        return arr

    def active_rows(self) -> List[List[int]]:
        """The live decision-hot matrix rows as Python lists (one gather).

        Scalar-path counterpart of :meth:`active_slots`: the decision
        stage reads the first ``_HOT_COLS`` fields of each live row as
        list indexing instead of NumPy scalar access (an order of
        magnitude faster per element).
        """
        return self._data[self.active_slots(), :_HOT_COLS].tolist()

    def decision_rows(self) -> List[DecisionRow]:
        """Row-local read snapshots of all live runs (stable run-id order).

        One bulk gather serving the reference decision loop: every
        field :func:`~repro.core.algorithm.decide_run` reads becomes a
        plain attribute instead of a matrix-backed property
        (DESIGN.md §2.9 — the SoA refactor's scalar-read tax on the
        reference/vectorized engines).
        """
        return [
            DecisionRow(rid, row[COL_ROBOT], row[COL_DIRN],
                        (row[COL_AXX], row[COL_AXY]),
                        MODE_FROM_CODE[row[COL_MODE]],
                        None if row[COL_TARGET] == _NONE else row[COL_TARGET],
                        row[COL_STEPS])
            for rid, row in zip(self._active, self.active_rows())]

    def runs_on(self, robot_id: int) -> List[RunState]:
        """Live runs carried by a robot."""
        view = self._view
        return [view(rid) for rid in self._ensure_by_robot().get(robot_id, ())]

    def crowded_runs(self) -> List[RunState]:
        """Runs on robots carrying more than one run (stable order).

        Only these can violate the one-run-per-direction rule, so the
        engine's duplicate-direction sweep scans this (usually empty)
        list instead of every active run.
        """
        out = [self._view(rid)
               for rids in self._ensure_by_robot().values() if len(rids) > 1
               for rid in rids]
        out.sort(key=lambda r: r.run_id)
        return out

    def directions_on(self, robot_id: int) -> Tuple[int, ...]:
        """Chain directions of the runs carried by a robot."""
        data = self._data
        return tuple(int(data[rid, COL_DIRN])
                     for rid in self._ensure_by_robot().get(robot_id, ()))

    def has_crowding(self) -> bool:
        """True when some robot carries more than one run.

        O(1) against a clean per-robot index (fewer robots than runs
        means some robot holds two); falls back to one array pass when
        the index is stale after a bulk advance.
        """
        if not self._by_robot_dirty:
            return len(self._by_robot) < len(self._active)
        robots = self._data[self.active_slots(), COL_ROBOT]
        return int(np.unique(robots).size) < len(robots)

    def round_state(self, index_map: Dict[int, int]
                    ) -> Tuple[Callable[[int], Tuple[int, ...]],
                               List[int], List[int]]:
        """Per-round window inputs, derived straight from the matrix.

        Returns ``(runs_of, fwd_carriers, bwd_carriers)``: the
        ``robot_id -> directions`` lookup the windows probe, plus the
        carrier chain indices split by run direction for the windows'
        bulk ``runs_ahead`` scans.  One pass over the live rows — the
        engine previously rebuilt a dict of tuples and two lists from
        :class:`RunState` objects every round.
        """
        run_dirs: Dict[int, Tuple[int, ...]] = {}
        fwd: List[int] = []
        bwd: List[int] = []
        for rid, row in zip(self._active, self.active_rows()):
            robot_id = row[COL_ROBOT]
            d = row[COL_DIRN]
            prev = run_dirs.get(robot_id)
            run_dirs[robot_id] = (d,) if prev is None else prev + (d,)
            (fwd if d == 1 else bwd).append(index_map[robot_id])
        return run_dirs.get, fwd, bwd

    # -- lifecycle ---------------------------------------------------------
    def start(self, robot_id: int, direction: int, axis: Vec, round_index: int,
              mode: RunMode = RunMode.NORMAL) -> Optional[RunState]:
        """Create a run unless the robot is already at capacity.

        A robot stores at most two runs and never two with the same
        direction (it could not tell them apart).
        """
        data = self._data
        existing = self._ensure_by_robot().get(robot_id, ())
        if len(existing) >= 2 or any(
                int(data[rid, COL_DIRN]) == direction for rid in existing):
            return None
        run_id = self._count
        if run_id >= len(data):
            self._grow()
            data = self._data
        self._count = run_id + 1
        data[run_id] = (robot_id, direction, MODE_TO_CODE[mode], _NONE, 0,
                        axis[1], axis[0], round_index, 0, 0, _NONE, 0)
        self._active.append(run_id)
        self._active_arr = None
        if not self._by_robot_dirty:
            self._by_robot.setdefault(robot_id, []).append(run_id)
        return self._view(run_id)

    def start_fleet_bulk(self, rows, round_index: int) -> None:
        """Create many chain-tagged runs in one matrix write.

        Fleet counterpart of :meth:`start`: ``rows`` is an ``(m, 6)``
        int64 array (or equivalent sequence of tuples) of ``(chain_id,
        robot_id, direction, mode_code, axis_x, axis_y)`` rows,
        pre-checked by the caller against fleet-unique ``(chain,
        robot)`` capacity keys (robot ids collide across chains, so
        the robot-keyed ``_by_robot`` index stays permanently dirty —
        a multi-chain fleet registry must not be queried through
        :meth:`runs_on` / :meth:`directions_on` / :meth:`crowded_runs`).
        Run ids are assigned in row order.
        """
        m = len(rows)
        if m == 0:
            return
        first = self._count
        while first + m > len(self._data):
            self._grow()
        block = np.empty((m, _COLS), dtype=np.int64)
        r = np.asarray(rows, dtype=np.int64)
        block[:, COL_CHAIN] = r[:, 0]
        block[:, COL_ROBOT] = r[:, 1]
        block[:, COL_DIRN] = r[:, 2]
        block[:, COL_MODE] = r[:, 3]
        block[:, COL_AXX] = r[:, 4]
        block[:, COL_AXY] = r[:, 5]
        block[:, COL_TARGET] = _NONE
        block[:, COL_STEPS] = 0
        block[:, COL_BORN] = round_index
        block[:, COL_HOPS] = 0
        block[:, COL_STOP] = 0
        block[:, COL_STOPPED] = _NONE
        self._data[first:first + m] = block
        self._count = first + m
        self._active.extend(range(first, first + m))
        self._active_arr = None
        self._by_robot_dirty = True

    def compact_rows(self) -> None:
        """Re-pack the live rows into the matrix prefix (streaming tier).

        Run ids are renumbered 0..m-1 in their current (ascending, ==
        age) order, so every relative-age comparison — the
        duplicate-direction sweep's "youngest run dissolves", the
        ascending-id stop ordering — is preserved and per-chain
        behaviour stays bit-identical.  Only valid on a registry that
        keeps no terminated-run surface (``keep_stopped`` off and
        nothing on ``stopped``): stopped views hold absolute row
        numbers and would dangle.  The fleet scheduler calls this
        between rounds when admission has left the matrix mostly dead
        rows, which is what keeps registry memory bounded by the live
        fleet instead of by every run ever started.
        """
        if self.keep_stopped or self.stopped:
            raise ValueError("compact_rows() requires keep_stopped=False "
                             "and no retained stopped views")
        live = self.active_slots()
        m = len(live)
        data = self._data
        if m:
            data[:m] = data[live]
        # shrink a matrix that admission churn left mostly dead
        cap = len(data)
        target = cap
        while target > self._INITIAL_CAP and m * 4 <= target:
            target //= 2
        if target < cap:
            self._data = data[:target].copy()
        self._count = m
        self._active = list(range(m))
        self._active_arr = None
        self._by_robot = {}
        self._by_robot_dirty = True
        self._views.clear()

    def drop_slots(self, run_ids) -> None:
        """Remove runs from the live set without stop bookkeeping.

        Used when a fleet chain retires (gathered or out of budget):
        the per-chain engine would simply stop stepping, so its runs
        disappear from the fleet without a Table 1 termination record.
        """
        dead = set(int(r) for r in run_ids)
        if not dead:
            return
        self._active = [rid for rid in self._active if rid not in dead]
        self._active_arr = None
        self._by_robot_dirty = True

    def stop(self, run: RunState, reason: StopReason, round_index: int) -> None:
        """Terminate a run (Table 1)."""
        if not run.active:
            return
        self.stop_slot(run.run_id, reason.value, round_index)

    def stop_slot(self, run_id: int, reason_code: int, round_index: int) -> None:
        """Terminate a run addressed by matrix row (kernel fast path)."""
        data = self._data
        if data[run_id, COL_STOP] != 0:
            return
        data[run_id, COL_STOP] = reason_code
        data[run_id, COL_STOPPED] = round_index
        self._active.remove(run_id)
        self._active_arr = None
        if not self._by_robot_dirty:
            robot_id = int(data[run_id, COL_ROBOT])
            robot_runs = self._by_robot.get(robot_id)
            if robot_runs and run_id in robot_runs:
                robot_runs.remove(run_id)
                if not robot_runs:
                    del self._by_robot[robot_id]
        if self.keep_stopped:
            self.stopped.append(self._view(run_id))

    def stop_slots(self, run_ids: np.ndarray, reason_codes: np.ndarray,
                   round_index: int) -> None:
        """Bulk :meth:`stop_slot` (kernel engine mass-termination path).

        ``run_ids`` must be live run ids in ascending order (the kernel
        decision stage hands over active-slot subsets, which are);
        stopped views append in that order, matching the reference
        engine's ascending-id termination sweeps.
        """
        if len(run_ids) == 0:
            return
        self._data[run_ids, COL_STOP] = reason_codes
        self._data[run_ids, COL_STOPPED] = round_index
        dead = set(run_ids.tolist())
        self._active = [rid for rid in self._active if rid not in dead]
        self._active_arr = None
        self._by_robot_dirty = True
        if self.keep_stopped:
            view = self._view
            for rid in sorted(dead):
                self.stopped.append(view(rid))

    def advance_runs(self, post_ids: List[int], post_index: Dict[int, int]
                     ) -> List[Tuple[int, int, int]]:
        """Hand every live run to its next robot in one sweep.

        Bulk form of :meth:`move` for the engine's step 9: all runs move
        simultaneously, so the per-robot index rebuilds as one pass.
        Returns ``(old_robot_id, new_robot_id, direction)`` triples so
        the run-speed invariant can re-derive the expected neighbour
        independently (Lemma 3.1).
        """
        n = len(post_ids)
        data = self._data
        by_robot: Dict[int, List[int]] = {}
        moved: List[Tuple[int, int, int]] = []
        for rid in self._active:
            old = int(data[rid, COL_ROBOT])
            d = int(data[rid, COL_DIRN])
            nxt = post_ids[(post_index[old] + d) % n]
            data[rid, COL_ROBOT] = nxt
            moved.append((old, nxt, d))
            lst = by_robot.get(nxt)
            if lst is None:
                by_robot[nxt] = [rid]
            else:
                lst.append(rid)
        self._by_robot = by_robot
        self._by_robot_dirty = False
        return moved

    def advance_active(self, post_ids: List[int], post_index: Dict[int, int]
                       ) -> bool:
        """Scalar-tier advance: one gather, one comprehension, one scatter.

        Single-segment counterpart of :meth:`advance_fleet` for rounds
        with a handful of runs and fresh chain views (the fleet's
        adaptive tier, mirroring the decision stage's scalar path).
        Returns the crowded flag — derived from the new carrier list
        for free, so the duplicate-direction gate costs nothing.
        Leaves the per-robot index stale (rebuilt lazily on the next
        query).
        """
        slots_arr = self.active_slots()
        if len(slots_arr) == 0:
            return False
        pairs = self._data[slots_arr, :2].tolist()   # (robot, direction)
        n = len(post_ids)
        news = [post_ids[(post_index[o] + d) % n] for o, d in pairs]
        self._data[slots_arr, COL_ROBOT] = news
        self._by_robot_dirty = True
        return len(set(news)) < len(news)

    def advance_fleet(self, base: np.ndarray, length: np.ndarray,
                      ids_flat: np.ndarray, index_flat: np.ndarray,
                      collect_moved: bool = False, scratch=None):
        """Advance every live run fleet-wide over the arena's flat tables.

        ``base``/``length`` are the arena's per-chain segment tables,
        ``ids_flat``/``index_flat`` its id and id → index arrays; runs
        resolve their next carrier through their chain column.  Returns
        ``(moved, crowded)`` where ``moved`` is ``(chain, old, new,
        dirs)`` arrays when requested (the run-speed invariant) and
        ``crowded`` flags a robot now carrying more than one run.
        ``scratch`` may pass the arena's
        :class:`~repro.core.arena.ScratchPool` so the span-sized
        duplicate mask reuses its buffer round over round.
        """
        slots = self.active_slots()
        if len(slots) == 0:
            return None, False
        data = self._data
        cc = data[slots, COL_CHAIN]
        old = data[slots, COL_ROBOT]
        dirs = data[slots, COL_DIRN]
        bs = base[cc]
        new = ids_flat[bs + (index_flat[bs + old] + dirs) % length[cc]]
        data[slots, COL_ROBOT] = new
        self._by_robot_dirty = True
        keys = bs + new
        # duplicate detection by scatter-mark (keys are fleet-unique
        # robot slots, so a sort-based unique would be overkill)
        if scratch is not None:
            seen = scratch.take("advance_seen", len(ids_flat), bool,
                                fill=False)
        else:
            seen = np.zeros(len(ids_flat), dtype=bool)
        seen[keys] = True
        crowded = int(np.count_nonzero(seen)) < len(keys)
        if collect_moved:
            return (cc, old, new, dirs), crowded
        return None, crowded

    def move(self, run: RunState, new_robot_id: int) -> None:
        """Hand a run to the next robot along its direction."""
        if not run.active:
            raise ValueError("cannot move a stopped run")
        run_id = run.run_id
        data = self._data
        if not self._by_robot_dirty:
            by_robot = self._by_robot
            old_robot = int(data[run_id, COL_ROBOT])
            old = by_robot.get(old_robot)
            if old and run_id in old:
                old.remove(run_id)
                if not old:
                    del by_robot[old_robot]
            by_robot.setdefault(new_robot_id, []).append(run_id)
        data[run_id, COL_ROBOT] = new_robot_id

    def runs_lookup(self):
        """Callable ``robot_id -> tuple of run directions`` for views."""
        return self.directions_on
