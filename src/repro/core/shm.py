"""Shared-memory fleet sharding: one arena slab, N kernel workers.

The zero-copy scale-out tier (DESIGN.md §2.16).  The process-pool
streaming path (§2.13) pickles every chain twice — once into the
worker, once back out as a result.  This tier removes both copies:

* **One slab.**  The parent allocates a single
  ``multiprocessing.shared_memory`` segment holding ``workers``
  disjoint shard regions.  Each region is a full set of arena cell
  buffers (positions, edge codes, ids, index, owner) plus a
  fixed-size *result ledger ring*.  Workers attach the same segment
  by name and wrap their region in a :class:`ChainArena` via its
  ``buffers=`` hook — the arena they step *is* the slab.
* **Zero-copy admission.**  The parent pulls intake bursts from the
  single streaming source (the ``take``/``Starved`` seam of
  :mod:`repro.core.admission`), parses and validates each burst once
  (:func:`repro.core.engine_fleet.parse_burst` — the identical code
  path the in-process fleet runs), writes positions and edge codes
  straight into the chosen shard's region and hands the worker a
  :class:`~repro.core.engine_fleet.SlotTicket` — five integers.  The
  worker adopts the dictated range in place
  (:meth:`ChainArena.adopt_slots`); no robot ever crosses the pipe.
* **Zero-copy results.**  Workers run their kernels with
  ``slim_results=True``: a retired chain publishes one eight-word row
  (stream index, slab base, sizes, rounds, gathered flag) into its
  shard's ledger ring and rings a doorbell byte down the result pipe.
  The parent materialises the :class:`GatheringResult` by reading the
  final positions out of the slab — nothing is unpickled.

Ownership protocol (who may touch what):

* The parent is the *sole allocator*: it keeps a per-shard free-list
  mirror and dictates every placement.  Workers carve exactly the
  dictated ranges (``adopt_slots``) and never compact or grow.
* A worker frees a slot in its own free list when the chain retires
  (before publishing the ledger row); the parent frees its mirror
  only after *consuming* the row.  Parent frees thus always trail
  worker frees, so every parent carve is guaranteed to succeed in
  the worker — and retired cell data stays untouched in the slab
  until the parent has read the final positions out of it.
* Ledger ring: ``head`` is worker-written (publish count), ``tail``
  parent-written (consume count).  The parent only reads rows after
  receiving the doorbell message — the pipe round-trip is the memory
  barrier — and the ring is sized to ``2 * slots_per_shard + 8``
  rows, which bounds worker-side occupancy, so publishing never
  blocks.

Crash recovery composes with the supervision tier: a dead worker's
published-but-unconsumed rows are salvaged (those chains finished),
the survivor set is re-placed into a reset region and re-fed as fresh
tickets to a respawned worker mapping the *same* slab region —
deterministic replay from round 0 yields bit-identical results.  A
shard that keeps dying without progress quarantines its residents
(``on_error="quarantine"``) or raises
:class:`~repro.errors.WorkerCrashError`.

Teardown: the parent owns the segment (created → registered with the
``resource_tracker``, so even a SIGKILLed parent leaks nothing — the
tracker unlinks it); workers attach and immediately *unregister* so
their exit cannot unlink a live slab.  The parent's ``finally`` block
closes pipes, terminates workers and ``close()``/``unlink()``s the
slab, covering generator abandonment too.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from multiprocessing import connection, get_context, resource_tracker, \
    shared_memory
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.admission import Starved
from repro.core.arena import ChainArena
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.engine_fleet import (FleetKernel, SlimResult, SlotTicket,
                                     parse_burst)
from repro.core.results import ChainOutcome, GatheringResult
from repro.errors import ChainError, WorkerCrashError

#: int64 words per ledger row: ext, base, n0, final_n, rounds, gathered,
#: spare, spare
_ROW_W = 8
#: int64 words of ledger header: head (worker-written publish count),
#: tail (parent-written consume count), spare, spare
_HDR_W = 4
#: consecutive no-progress worker deaths before the shard's residents
#: are quarantined (or the stream aborts)
_MAX_BARREN = 2


def _cell_words(cells: int) -> int:
    """int64 words of one shard's arena buffers (pos pad row included)."""
    return (cells + 1) * 2 + 4 * cells


class FleetSlab:
    """One shared segment of ``workers`` shard regions + ledger rings.

    Layout per shard (all int64, offsets in words)::

        pos[(cells+1) * 2] | codes[cells] | ids[cells] | index[cells]
        | owner[cells] | ledger header[4] | ledger rows[ring_rows * 8]

    The creating process registers the segment with the resource
    tracker (leak-proof under SIGKILL); attaching processes must use
    :func:`attach_slab`, which unregisters immediately so a worker's
    exit can never unlink a slab the parent still steps.
    """

    def __init__(self, workers: int, cells: int, ring_rows: int,
                 name: Optional[str] = None):
        self.workers = int(workers)
        self.cells = int(cells)
        self.ring_rows = int(ring_rows)
        self.shard_words = _cell_words(self.cells) \
            + _HDR_W + self.ring_rows * _ROW_W
        if name is None:
            nbytes = max(self.workers * self.shard_words * 8, 8)
            self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self.created = True
        else:
            self.shm = shared_memory.SharedMemory(name=name)
            self.created = False
        self.name = self.shm.name
        self._arr: Optional[np.ndarray] = np.frombuffer(
            self.shm.buf, dtype=np.int64,
            count=self.workers * self.shard_words)

    def shard_buffers(self, k: int) -> Dict[str, np.ndarray]:
        """Shard ``k``'s arena cell buffers (``ChainArena(buffers=...)``)."""
        c = self.cells
        o = k * self.shard_words
        a = self._arr
        out = {"pos": a[o:o + (c + 1) * 2].reshape(c + 1, 2)}
        o += (c + 1) * 2
        for field in ("codes", "ids", "index", "owner"):
            out[field] = a[o:o + c]
            o += c
        return out

    def ledger(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Shard ``k``'s result ring as ``(header[4], rows[ring, 8])``."""
        o = k * self.shard_words + _cell_words(self.cells)
        hdr = self._arr[o:o + _HDR_W]
        rows = self._arr[o + _HDR_W:o + _HDR_W + self.ring_rows * _ROW_W]
        return hdr, rows.reshape(self.ring_rows, _ROW_W)

    def close(self) -> None:
        """Drop this process's mapping (keep the segment for others)."""
        self._arr = None
        _close_seg(self.shm)

    def unlink(self) -> None:
        """Remove the segment name (idempotent; creator-side teardown)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def attach_slab(name: str, workers: int, cells: int,
                ring_rows: int) -> FleetSlab:
    """Attach an existing slab without disturbing leak protection.

    Python 3.11 registers a segment with the resource tracker on
    *attach* as well as create (bpo-39959).  Under ``spawn`` each
    process has its own tracker, so the attacher must unregister or
    its clean exit unlinks the slab the parent still steps.  Under
    ``fork`` the tracker process is shared with the creator and its
    cache is a set — the attach-register is a no-op, and unregistering
    here would strip the *parent's* leak protection (and make the
    parent's eventual ``unlink`` double-unregister).
    """
    slab = FleetSlab(workers, cells, ring_rows, name=name)
    try:
        import multiprocessing
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            resource_tracker.unregister(slab.shm._name, "shared_memory")
    except Exception:
        pass
    return slab


def _close_seg(shm: shared_memory.SharedMemory) -> None:
    """Close a raw segment handle, tolerating pinned numpy views: on
    ``BufferError`` the handle is neutralised (so ``__del__`` cannot
    retry noisily) and the descriptor released; the mapping itself
    dies with the process."""
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None
        if getattr(shm, "_fd", -1) >= 0:
            try:
                os.close(shm._fd)
            except OSError:
                pass
            shm._fd = -1


def _segment_views(cap: int):
    """A private shared segment holding one arena's cell buffers."""
    words = _cell_words(cap)
    shm = shared_memory.SharedMemory(create=True, size=max(words * 8, 8))
    arr = np.frombuffer(shm.buf, dtype=np.int64, count=words)
    o = (cap + 1) * 2
    views = {"pos": arr[:o].reshape(cap + 1, 2),
             "codes": arr[o:o + cap],
             "ids": arr[o + cap:o + 2 * cap],
             "index": arr[o + 2 * cap:o + 3 * cap],
             "owner": arr[o + 3 * cap:o + 4 * cap]}
    return shm, views


class ShmArena(ChainArena):
    """A :class:`ChainArena` whose cell buffers live in one private
    shared-memory segment.

    Unlike a slab-backed shard arena (fixed region, parent-owned
    allocator, ``grow()`` refuses), this arena owns its segment
    outright and supports the full lifecycle — admit, retire, compact
    *and* grow: growth allocates a larger segment, copies the live
    prefix, re-points every chain view and unlinks the old segment.
    Call :meth:`unlink` when done (or let the resource tracker sweep
    it on process death).
    """

    __slots__ = ("_seg",)

    def __init__(self, chains=(), capacity: int = 0):
        objs = [c if isinstance(c, ClosedChain) else ClosedChain(c)
                for c in chains]
        cap = max(int(capacity), sum(c.n for c in objs))
        self._seg, views = _segment_views(cap)
        super().__init__(objs, capacity=cap, buffers=views)
        self._fixed = False        # growth is supported: segment swap

    def grow(self, min_capacity: int) -> None:
        old = self.span
        cap = max(int(min_capacity), old)
        if cap == old:
            return
        seg, v = _segment_views(cap)
        v["pos"][:old] = self.pos[:old]
        v["codes"][:old] = self.codes
        v["ids"][:old] = self.ids
        v["index"][:old] = self.index
        v["index"][old:] = -1
        v["owner"][:old] = self.owner
        v["owner"][old:] = -1
        self.pos = v["pos"]
        self.codes = v["codes"]
        self.ids = v["ids"]
        self.index = v["index"]
        self.owner = v["owner"]
        self._release_slot(old, cap - old)
        for ci in self.live_indices().tolist():
            self._repoint(ci)
        self._topo_dirty = True
        old_seg, self._seg = self._seg, seg
        _close_seg(old_seg)
        old_seg.unlink()

    def close(self) -> None:
        _close_seg(self._seg)

    def unlink(self) -> None:
        try:
            self._seg.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

class _TicketSource:
    """Admission source (``take``/``Starved`` protocol) over the
    control pipe: the worker kernel's ``run_stream`` pulls
    :class:`SlotTicket` descriptors from it exactly as the in-process
    scheduler pulls payloads from a queue.  ``("c",)`` closes the
    source (→ ``StopIteration`` once drained); a vanished parent
    (EOF) closes it too, so orphaned workers drain and exit."""

    def __init__(self, conn) -> None:
        from repro.core.supervisor import _maybe_test_kill
        self._conn = conn
        self._kill = _maybe_test_kill
        self._buf: deque = deque()
        self._closed = False
        self._ppid = os.getppid()

    def __iter__(self):
        return self

    def __next__(self):
        # run_stream drives the take/Starved protocol; the iterator
        # face exists only so iter() accepts the source
        try:
            return self.take(block=True)
        except StopIteration:
            raise StopIteration from None

    def _pump(self, timeout) -> None:
        try:
            if timeout is None:
                # indefinite park: poll in slices with a parent-death
                # watchdog — EOF alone is not a reliable death signal
                # (a sibling worker forked later holds an inherited
                # copy of this pipe's write end until it too exits)
                while not self._conn.poll(1.0):
                    if os.getppid() != self._ppid:
                        self._closed = True
                        return
                # fall through to drain
            elif not self._conn.poll(timeout):
                if os.getppid() != self._ppid:
                    self._closed = True
                return
            while True:
                msg = self._conn.recv()
                if msg[0] == "a":
                    self._buf.extend(msg[1])
                elif msg[0] == "c":
                    self._closed = True
                if not self._conn.poll(0):
                    return
        except (EOFError, OSError):
            self._closed = True

    def take(self, block: bool = False, timeout: Optional[float] = None):
        self._pump(0)
        while not self._buf:
            if self._closed:
                raise StopIteration
            if not block:
                raise Starved
            self._pump(timeout)
            if timeout is not None and not self._buf:
                if self._closed:
                    raise StopIteration
                raise Starved
        t = self._buf.popleft()
        # fault-matrix hook (same env spec as the pool tier): die by
        # SIGKILL when armed for this stream index — at take time, so
        # the chain is mid-admission when the shard dies
        self._kill([t.ext])
        return t


def _shard_worker_main(cfg: dict, ctl, res) -> None:
    """One shard worker: attach the slab, step a kernel over tickets.

    Everything after attach is the ordinary streaming kernel — same
    scheduler, same WAL records, same mid-fault machinery — fed by
    :class:`_TicketSource` and publishing :class:`SlimResult` rows
    into the shard's ledger ring (doorbell per row on the result
    pipe).  Quarantined chains and terminal stats travel over the
    pipe (rare, small); positions never do.
    """
    slab = None
    wal = None
    for c in cfg.pop("fork_close", ()):
        try:
            c.close()
        except OSError:
            pass
    try:
        slab = attach_slab(cfg["slab"], cfg["workers"], cfg["cells"],
                           cfg["ring_rows"])
        k = cfg["shard"]
        ring = slab.ring_rows
        hdr, rows = slab.ledger(k)
        arena = ChainArena([], capacity=cfg["cells"],
                           buffers=slab.shard_buffers(k))
        kernel = FleetKernel([], params=cfg["params"],
                             check_invariants=cfg["check_invariants"],
                             keep_reports=False,
                             validate_initial=cfg["validate_initial"])
        kernel.arena = arena
        kernel.slim_results = True
        if cfg["wal_dir"] is not None:
            from repro.io.wal import WalWriter
            wal = WalWriter(os.path.join(cfg["wal_dir"], cfg["wal_name"]))
        src = _TicketSource(ctl)
        for ext, payload in kernel.run_stream(
                src, slots=cfg["slots"], max_rounds=cfg["max_rounds"],
                release=True, wal=wal, snapshot_every=cfg["snapshot_every"],
                on_error=cfg["on_error"]):
            if type(payload) is SlimResult:
                head = int(hdr[0])
                if head - int(hdr[1]) >= ring:
                    # structurally unreachable: ring rows ≥ 2x the
                    # shard's occupancy bound; fail loudly over silent
                    # row corruption
                    raise RuntimeError("shm result ring overflow")
                row = rows[head % ring]
                row[0] = ext
                row[1] = payload.base
                row[2] = payload.initial_n
                row[3] = payload.final_n
                row[4] = payload.rounds
                row[5] = 1 if payload.gathered else 0
                hdr[0] = head + 1      # publish, then ring the doorbell
                res.send(("r",))
            else:                      # ChainOutcome (quarantine/mid-crash)
                res.send(("q", ext, payload))
        stats = dict(kernel.stream_stats)
        stats["rounds"] = int(kernel.round_index)
        stats["peak_live_chains"] = int(arena.peak_live)
        stats["peak_cells"] = int(arena.peak_cells)
        res.send(("x", stats))
    except (BrokenPipeError, EOFError):
        pass                           # parent died: no one to report to
    except BaseException as exc:       # noqa: BLE001 — shipped to parent
        try:
            import pickle
            try:
                pickle.dumps(exc)
                payload = exc
            except Exception:
                payload = None
            res.send(("e", payload, traceback.format_exc()))
        except Exception:
            pass
    finally:
        if wal is not None:
            try:
                wal.close()
            except Exception:
                pass
        if slab is not None:
            slab.close()
        try:
            res.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

def _carve(free: List[Tuple[int, int]], n: int) -> int:
    """Best-fit carve of ``n`` cells (parent's allocator mirror); the
    hole choice is the parent's alone — workers adopt dictated ranges,
    so mirror and worker free lists track the same hole set."""
    best = -1
    best_size = 0
    for i, (off, size) in enumerate(free):
        if size >= n and (best < 0 or size < best_size):
            best, best_size = i, size
            if size == n:
                break
    if best < 0:
        return -1
    off, size = free[best]
    if size == n:
        del free[best]
    else:
        free[best] = (off + n, size - n)
    return off


def _release(free: List[Tuple[int, int]], off: int, size: int) -> None:
    """Return a hole to the mirror, coalescing neighbours."""
    lo, hi = 0, len(free)
    while lo < hi:
        mid = (lo + hi) // 2
        if free[mid][0] < off:
            lo = mid + 1
        else:
            hi = mid
    free.insert(lo, (off, size))
    if lo + 1 < len(free) and off + size == free[lo + 1][0]:
        free[lo] = (off, size + free[lo + 1][1])
        del free[lo + 1]
    if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == off:
        free[lo - 1] = (free[lo - 1][0],
                        free[lo - 1][1] + free[lo][1])
        del free[lo]


class _Shard:
    """Parent-side state of one shard: process, pipes, allocator
    mirror, in-flight table (admission order) and ledger views."""

    __slots__ = ("k", "proc", "ctl", "res", "free", "inflight", "pos",
                 "codes", "hdr", "rows", "completed", "since_spawn",
                 "respawns", "barren", "closed_sent", "done", "stats",
                 "failure")

    def __init__(self, k: int):
        self.k = k
        self.proc = None
        self.ctl = None
        self.res = None
        self.free: List[Tuple[int, int]] = []
        #: ext -> (base, n, zc, mid, arr, codes); dict order == admission
        #: order, which is the deterministic re-feed order on respawn
        self.inflight: Dict[int, tuple] = {}
        self.pos = None
        self.codes = None
        self.hdr = None
        self.rows = None
        self.completed = 0
        self.since_spawn = 0
        self.respawns = 0
        self.barren = 0
        self.closed_sent = False
        self.done = False
        self.stats: Optional[dict] = None
        self.failure: Optional[tuple] = None


def shm_stream(stream, *,
               params: Parameters = DEFAULT_PARAMETERS,
               workers: int = 2,
               slots: int = 256,
               max_rounds: Optional[int] = None,
               check_invariants: bool = False,
               validate_initial: bool = True,
               faults=None,
               wal_dir: Optional[str] = None,
               snapshot_every: int = 512,
               on_error: str = "raise",
               progress=None,
               stats: Optional[dict] = None,
               shard_cells: Optional[int] = None,
               ) -> Iterator[Tuple[int, object]]:
    """The shard scheduler: pump one stream through K slab workers.

    The parent mirrors the in-process scheduler's intake discipline —
    pull bursts (blocking only when nothing is in flight anywhere),
    decide intake faults at pull time under the consumed index, parse
    with :func:`parse_burst`, quarantine rejects through the identical
    per-chain constructor — then *places* instead of admitting: least
    loaded shard with a fitting hole, cells written by the parent,
    ticket sent down the control pipe.  Results are consumed from the
    ledger rings and yielded as ``(ext, GatheringResult)`` without a
    byte of IPC payload.

    The slab is sized lazily from the first burst (``slots_per_shard
    * max_n * 2`` cells per shard) unless ``shard_cells`` pins it; a
    chain that cannot ever fit its shard region errors (or
    quarantines) instead of deadlocking.  Entries that cannot fit
    *right now* wait in a FIFO backlog for retirements.
    """
    if on_error not in ("raise", "quarantine"):
        raise ValueError("on_error must be 'raise' or 'quarantine'")
    quarantine = on_error == "quarantine"
    workers = max(1, int(workers))
    slots_per = max(1, int(slots) // workers)
    ring = 2 * slots_per + 8
    if stats is None:
        stats = {}
    stats.update({
        "workers": workers, "slots_per_worker": slots_per,
        "admitted": 0, "quarantined": 0, "fault_crashed": 0,
        "fault_perturbed": 0, "mid_crashed": 0, "mid_restarted": 0,
        "respawns": 0, "salvaged": 0,
    })
    per_shard = [{"shard": k, "live": 0, "completed": 0, "respawns": 0,
                  "chains_per_s": 0.0} for k in range(workers)]
    stats["per_shard"] = per_shard
    if wal_dir is not None:
        os.makedirs(wal_dir, exist_ok=True)

    ctx = get_context()
    it = iter(stream)
    take = getattr(it, "take", None)
    if take is not None and not callable(take):
        take = None

    slab: Optional[FleetSlab] = None
    cells = 0
    shards: List[_Shard] = []
    backlog: deque = deque()    # prepared (ext, arr, codes, zc, mid)
    submitted = 0               # stream indices consumed
    delivered = 0               # results yielded
    exhausted = False
    t0 = time.perf_counter()

    def total_inflight() -> int:
        return sum(len(s.inflight) for s in shards)

    def capacity_free() -> int:
        cap = workers * slots_per
        return cap - total_inflight() - len(backlog)

    def elapsed() -> float:
        return time.perf_counter() - t0

    def refresh_shard_stats() -> None:
        dt = elapsed()
        for s in shards:
            row = per_shard[s.k]
            row["live"] = len(s.inflight)
            row["completed"] = s.completed
            row["respawns"] = s.respawns
            row["chains_per_s"] = round(s.completed / dt, 2) if dt > 0 \
                else 0.0

    def as_chain(payload) -> ClosedChain:
        # identical normalisation to FleetKernel._as_chain — rejected
        # entries must produce the exact same error type and message
        # the in-process fleet would
        if not isinstance(payload, ClosedChain):
            return ClosedChain(payload,
                               require_disjoint_neighbors=validate_initial)
        if validate_initial:
            payload.validate(initial=True)
        return payload

    def spawn(s: _Shard) -> None:
        ctl_r, ctl_w = ctx.Pipe(duplex=False)
        res_r, res_w = ctx.Pipe(duplex=False)
        wal_name = f"shard-{s.k}" + (f"-r{s.respawns}" if s.respawns
                                     else "")
        if wal_dir is not None:
            # worker WALs are effect logs, never resumed in place — a
            # re-fed stream (service-level resume) gets fresh suffixed
            # directories instead of colliding with the dead run's
            cand, m = wal_name, 1
            while os.path.exists(os.path.join(wal_dir, cand)):
                cand = f"{wal_name}.{m}"
                m += 1
            wal_name = cand
        cfg = {"slab": slab.name, "workers": workers, "cells": cells,
               "ring_rows": ring, "shard": s.k, "slots": slots_per,
               "params": params, "check_invariants": check_invariants,
               "validate_initial": validate_initial,
               "max_rounds": max_rounds, "on_error": on_error,
               "wal_dir": wal_dir, "snapshot_every": snapshot_every,
               "wal_name": wal_name}
        if ctx.get_start_method() == "fork":
            # the fork inherits every open parent fd: this shard's own
            # parent-side pipe ends plus every sibling's.  Left open in
            # the child they defeat EOF-based death detection (a dead
            # parent's pipes stay writable/readable through the
            # sibling copies) and keep orphaned workers — and the slab
            # they pin — alive forever; the child closes them on entry
            inherited = [ctl_w, res_r]
            for other in shards:
                for c in (other.ctl, other.res):
                    if c is not None and not c.closed:
                        inherited.append(c)
            cfg["fork_close"] = inherited
        proc = ctx.Process(target=_shard_worker_main,
                           args=(cfg, ctl_r, res_w), daemon=True)
        proc.start()
        ctl_r.close()
        res_w.close()
        s.proc, s.ctl, s.res = proc, ctl_w, res_r
        s.since_spawn = 0
        s.done = False
        s.stats = None

    def build_slab(quantum: int) -> None:
        nonlocal slab, cells
        cells = shard_cells if shard_cells is not None \
            else max(slots_per * quantum * 2, quantum)
        slab = FleetSlab(workers, cells, ring)
        for k in range(workers):
            s = _Shard(k)
            s.free = [(0, cells)]
            bufs = slab.shard_buffers(k)
            s.pos, s.codes = bufs["pos"], bufs["codes"]
            s.hdr, s.rows = slab.ledger(k)
            shards.append(s)
            spawn(s)

    def place(entry) -> bool:
        ext, arr, codes_a, zc, mid = entry
        n = len(arr)
        cands = [s for s in shards
                 if len(s.inflight) < slots_per
                 and any(sz >= n for _o, sz in s.free)]
        if not cands:
            return False
        s = min(cands, key=lambda s: (len(s.inflight), s.k))
        base = _carve(s.free, n)
        s.pos[base:base + n] = arr
        s.codes[base:base + n] = codes_a
        s.inflight[ext] = (base, n, zc, mid, arr, codes_a)
        # slab writes land before the ticket send: the pipe round-trip
        # orders them for the worker
        try:
            s.ctl.send(("a", [SlotTicket(ext=ext, base=base, n=n, zc=zc,
                                         mid=mid)]))
        except (BrokenPipeError, OSError):
            pass        # dead worker: the sentinel path re-feeds inflight
        stats["admitted"] += 1
        return True

    def misfit(entry):
        # a chain no shard region can ever hold: error out rather than
        # deadlock the backlog
        ext, arr = entry[0], entry[1]
        exc = ChainError(
            f"chain of {len(arr)} robots exceeds the shm shard capacity "
            f"({cells} cells per shard); raise slots or shard_cells")
        if not quarantine:
            raise exc
        stats["quarantined"] += 1
        return (ext, ChainOutcome(index=ext, error=type(exc).__name__,
                                  message=str(exc), stage="admit",
                                  quarantined=True))

    def prep(burst):
        """Parse one pulled burst; returns (prepared, quarantine pairs)."""
        prepared = []
        qpairs = []
        payloads, arrs, code, starts, offs, ns, zcs, bad = parse_burst(
            [p for _e, p in burst], validate_initial)
        seg = 0
        for j, (ext, _payload) in enumerate(burst):
            a = arrs[j]
            if a is not None:
                g = seg
                seg += 1
                if not bad[g]:
                    mid = faults.decide_mid(ext) if faults is not None \
                        else None
                    prepared.append((ext, a, code[starts[g]:offs[g]],
                                     int(zcs[g]), mid))
                    continue
                retry = a          # rejected: per-chain for its exact error
            else:
                retry = payloads[j]
            try:
                c = as_chain(retry)
            except (ChainError, ValueError, TypeError) as exc:
                if not quarantine:
                    raise
                stats["quarantined"] += 1
                qpairs.append((ext, ChainOutcome(
                    index=ext, error=type(exc).__name__,
                    message=str(exc), stage="admit", quarantined=True)))
                continue
            arr = np.array(c.positions_array(), dtype=np.int64)
            codes_a = np.array(c.edge_codes(), dtype=np.int64)
            mid = faults.decide_mid(ext) if faults is not None else None
            prepared.append((ext, arr, codes_a,
                             int((codes_a == -1).sum()), mid))
        return prepared, qpairs

    def pull_burst():
        """Pull stream entries up to free capacity; intake faults fire
        here, at consume time, under the consumed index — identical to
        the in-process scheduler."""
        nonlocal submitted, exhausted
        pulled = []
        while not exhausted and capacity_free() - len(pulled) > 0:
            try:
                if take is None:
                    nxt = next(it)
                else:
                    nxt = take(block=(total_inflight() == 0
                                      and not pulled and not backlog))
            except Starved:
                break
            except StopIteration:
                exhausted = True
                break
            idx = submitted
            submitted += 1
            if faults is not None:
                kind = faults.decide(idx)
                if kind == "crash":
                    stats["fault_crashed"] += 1
                    continue
                if kind == "perturb":
                    try:
                        c = as_chain(nxt)
                    except (ChainError, ValueError, TypeError) as exc:
                        if not quarantine:
                            raise
                        stats["quarantined"] += 1
                        pulled.append((idx, _Quarantined(exc)))
                        continue
                    nxt = faults.mutate(idx, c.positions)
                    stats["fault_perturbed"] += 1
            pulled.append((idx, nxt))
        return pulled

    def drain_ring(s: _Shard):
        """Consume published ledger rows → materialised results."""
        out = []
        head = int(s.hdr[0])
        tail = int(s.hdr[1])
        while tail < head:
            row = s.rows[tail % ring]
            ext = int(row[0])
            fl = s.inflight.pop(ext, None)
            tail += 1
            if fl is None:
                continue               # already salvaged / stale
            fn = int(row[3])
            base = int(row[1])
            pts = [tuple(p) for p in s.pos[base:base + fn].tolist()]
            res = GatheringResult(
                gathered=bool(row[5]), rounds=int(row[4]),
                initial_n=int(row[2]), final_n=fn, final_positions=pts,
                params=params, reports=[], trace=None,
                stalled=not bool(row[5]), wall_time=elapsed())
            # free the mirror only after the positions are out of the
            # slab: parent frees trail worker frees by construction
            _release(s.free, fl[0], fl[1])
            s.completed += 1
            s.since_spawn += 1
            out.append((ext, res))
        s.hdr[1] = tail
        return out

    def handle_msgs(s: _Shard):
        """Drain the result pipe; returns yields, flags crash via EOF."""
        out = []
        crashed = False
        try:
            while s.res.poll(0):
                msg = s.res.recv()
                tag = msg[0]
                if tag == "r":
                    pass               # doorbell; ring drained below
                elif tag == "q":
                    ext, outcome = msg[1], msg[2]
                    fl = s.inflight.pop(ext, None)
                    if fl is not None:
                        _release(s.free, fl[0], fl[1])
                    if getattr(outcome, "stage", "") == "fault":
                        stats["mid_crashed"] += 1
                    else:
                        stats["quarantined"] += 1
                    s.completed += 1
                    s.since_spawn += 1
                    out.append((ext, outcome))
                elif tag == "x":
                    s.stats = msg[1]
                    s.done = True
                elif tag == "e":
                    s.failure = (msg[1], msg[2])
                    s.done = True
        except (EOFError, OSError):
            crashed = True
        out.extend(drain_ring(s))
        return out, crashed

    def respawn(s: _Shard):
        """Crash recovery: salvage, reset the region, re-feed, respawn."""
        out = []
        try:
            s.proc.join(timeout=5.0)
        except Exception:
            pass
        out.extend(drain_ring(s))      # rows published before the crash
        stats["salvaged"] += len(out)
        if s.since_spawn == 0 and not out:
            s.barren += 1
        else:
            s.barren = 0
        for c in (s.ctl, s.res):
            try:
                c.close()
            except Exception:
                pass
        if s.barren > _MAX_BARREN and s.inflight:
            # crash-looping without progress: the residents are the
            # suspects.  Quarantine them (supervised mode) or abort.
            exts = list(s.inflight)
            if not quarantine:
                s.done = True
                raise WorkerCrashError(
                    f"shm shard {s.k} died {s.barren} times without "
                    f"progress; in-flight chains {exts}",
                    worker=s.k, indices=exts)
            for ext, fl in list(s.inflight.items()):
                _release(s.free, fl[0], fl[1])
                stats["quarantined"] += 1
                out.append((ext, ChainOutcome(
                    index=ext, error="WorkerCrashError",
                    message=(f"shard worker {s.k} kept dying with this "
                             f"chain in flight"),
                    stage="round", quarantined=True)))
            s.inflight.clear()
            s.barren = 0
        s.respawns += 1
        stats["respawns"] += 1
        # reset the region's allocator and ring, re-place the survivors
        # in admission order and re-feed them as fresh tickets — replay
        # from round 0 is deterministic, so results stay bit-identical
        s.free = [(0, cells)]
        s.hdr[0] = 0
        s.hdr[1] = 0
        tickets = []
        survivors = {}
        for ext, (base, n, zc, mid, arr, codes_a) in s.inflight.items():
            nb = _carve(s.free, n)
            s.pos[nb:nb + n] = arr
            s.codes[nb:nb + n] = codes_a
            survivors[ext] = (nb, n, zc, mid, arr, codes_a)
            tickets.append(SlotTicket(ext=ext, base=nb, n=n, zc=zc,
                                      mid=mid))
        s.inflight = survivors
        spawn(s)
        try:
            if tickets:
                s.ctl.send(("a", tickets))
            if s.closed_sent:
                s.ctl.send(("c",))
        except (BrokenPipeError, OSError):
            pass                       # died again: next wait loops back
        return out

    def pump(timeout):
        """Wait on pipes/sentinels; handle messages, rings, crashes."""
        live = [s for s in shards if not s.done]
        if not live:
            return []
        rmap = {}
        for s in live:
            rmap[s.res] = s
            rmap[s.proc.sentinel] = s
        ready = connection.wait(list(rmap), timeout)
        out = []
        seen = set()
        for r in ready:
            s = rmap[r]
            if s.k in seen:
                continue
            seen.add(s.k)
            ylds, crashed = handle_msgs(s)
            out.extend(ylds)
            if s.failure is not None:
                exc, tb = s.failure
                if exc is not None:
                    raise exc
                raise WorkerCrashError(
                    f"shm shard {s.k} failed:\n{tb}", worker=s.k,
                    indices=list(s.inflight))
            if not s.done and (crashed or not s.proc.is_alive()):
                out.extend(respawn(s))
        return out

    def emit(pairs):
        nonlocal delivered
        if pairs:
            # results become externally visible at the yield (the
            # service writes frames from them before this generator
            # resumes): refresh the per-shard rows first, so a status
            # probe racing the last frame already counts these
            # completions
            refresh_shard_stats()
        for pair in pairs:
            yield pair
            delivered += 1
        if pairs and progress is not None:
            progress(delivered, submitted if exhausted else -1)

    try:
        while True:
            # --- admission ------------------------------------------
            if not exhausted or backlog:
                burst = pull_burst()
                if burst:
                    real = [(e, p) for e, p in burst
                            if type(p) is not _Quarantined]
                    prepared, qpairs = prep(real) if real else ([], [])
                    yield from emit(
                        [(e, ChainOutcome(index=e,
                                          error=type(p.exc).__name__,
                                          message=str(p.exc),
                                          stage="admit", quarantined=True))
                         for e, p in burst if type(p) is _Quarantined])
                    yield from emit(qpairs)
                    backlog.extend(prepared)
                if backlog and slab is None:
                    build_slab(max(len(e[1]) for e in backlog))
                while backlog and place(backlog[0]):
                    backlog.popleft()
                # permanently-unplaceable head: nothing in flight can
                # free enough cells for it
                while backlog and total_inflight() == 0 \
                        and len(backlog[0][1]) > cells:
                    yield from emit([misfit(backlog.popleft())])
            # --- close propagation ----------------------------------
            if exhausted and not backlog:
                if slab is None:
                    break              # empty stream: nothing ever ran
                for s in shards:
                    if not s.done and not s.closed_sent:
                        try:
                            s.ctl.send(("c",))
                        except (BrokenPipeError, OSError):
                            pass
                        s.closed_sent = True
            # --- termination ----------------------------------------
            if shards and all(s.done for s in shards) and exhausted \
                    and not backlog and total_inflight() == 0:
                break
            # --- wait for events ------------------------------------
            timeout = None
            if not exhausted and capacity_free() > 0:
                # a starved admission source with work in flight:
                # poll the pipes briefly, then re-try the pull
                timeout = 0.02 if take is not None else 0.0
            elif backlog:
                timeout = 0.05
            yield from emit(pump(timeout))
            refresh_shard_stats()
    finally:
        for s in shards:
            for c in (s.ctl, s.res):
                try:
                    c.close()
                except Exception:
                    pass
        for s in shards:
            if s.proc is not None and s.proc.is_alive():
                s.proc.terminate()
        for s in shards:
            if s.proc is not None:
                s.proc.join(timeout=5.0)
                if s.proc.is_alive():
                    s.proc.kill()
                    s.proc.join(timeout=5.0)
        if slab is not None:
            for s in shards:
                s.pos = s.codes = s.hdr = s.rows = None
            slab.close()
            slab.unlink()
        refresh_shard_stats()
        rounds = 0
        for s in shards:
            if s.stats:
                per_shard[s.k]["rounds"] = s.stats.get("rounds", 0)
                rounds += s.stats.get("rounds", 0)
                stats["mid_restarted"] += s.stats.get("mid_restarted", 0)
                per_shard[s.k]["peak_live"] = \
                    s.stats.get("peak_live_chains", 0)
                per_shard[s.k]["peak_cells"] = \
                    s.stats.get("peak_cells", 0)
        stats["rounds"] = rounds
        stats["peak_live_chains"] = sum(
            r.get("peak_live", 0) for r in per_shard)
        stats["peak_cells"] = sum(
            r.get("peak_cells", 0) for r in per_shard)
        stats["arena_span"] = workers * cells
        dt = elapsed()
        stats["chains_per_s"] = round(delivered / dt, 2) if dt > 0 else 0.0


class _Quarantined:
    """Marker for an entry quarantined at pull time (perturb-validate
    failure): carries the original exception through the burst list so
    intake order — and therefore index gaps — match the in-process
    scheduler exactly."""

    __slots__ = ("exc",)

    def __init__(self, exc):
        self.exc = exc
