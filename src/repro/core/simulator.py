"""Simulation facade: gather a chain and collect results.

:class:`Simulator` wires a chain, parameters and an engine variant
together; :func:`gather` is the one-call convenience API used by the
examples and experiments.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Union

from repro.errors import StallError
from repro.grid.lattice import Vec
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.engine import Engine
from repro.core.engine_kernel import KernelEngine
from repro.core.engine_vectorized import find_merge_patterns_np, scan_run_starts
from repro.core.events import RoundReport, Trace
from repro.core.results import GatheringResult

__all__ = ["ENGINES", "GatheringResult", "Simulator", "gather"]

ENGINES = ("reference", "vectorized", "kernel")


class Simulator:
    """Run the gathering algorithm on one closed chain.

    Parameters
    ----------
    chain:
        A :class:`ClosedChain` or a sequence of positions.
    params:
        Algorithm constants (defaults to the paper's).
    engine:
        ``"reference"`` (pure Python merge scan), ``"vectorized"``
        (NumPy merge/run-start scans on the reference pipeline) or
        ``"kernel"`` (the fleet substrate driven over a
        single-segment arena — the whole round pipeline on arrays).
        All three are behaviourally identical (property-tested in
        ``tests/test_conformance.py``).
    check_invariants:
        Verify model invariants every round.
    record_trace:
        Keep full per-round snapshots (memory-heavy for large chains).
    """

    def __init__(self, chain: Union[ClosedChain, Sequence[Vec]],
                 params: Parameters = DEFAULT_PARAMETERS,
                 engine: str = "reference",
                 check_invariants: bool = True,
                 record_trace: bool = False,
                 validate_initial: bool = True):
        if not isinstance(chain, ClosedChain):
            chain = ClosedChain(chain, require_disjoint_neighbors=validate_initial)
        elif validate_initial:
            chain.validate(initial=True)
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        vectorized = engine == "vectorized"
        self.trace = Trace() if record_trace else None
        if engine == "kernel":
            self.engine: Engine = KernelEngine(
                chain, params, check_invariants=check_invariants,
                trace=self.trace)
        else:
            self.engine = Engine(
                chain, params,
                merge_detector=find_merge_patterns_np if vectorized else None,
                start_scanner=scan_run_starts if vectorized else None,
                check_invariants=check_invariants,
                trace=self.trace)
        self.initial_n = chain.n
        self.reports: List[RoundReport] = []

    @property
    def chain(self) -> ClosedChain:
        """The (mutating) chain under simulation."""
        return self.engine.chain

    @property
    def params(self) -> Parameters:
        return self.engine.params

    @property
    def round_index(self) -> int:
        return self.engine.round_index

    def step(self) -> RoundReport:
        """Advance one FSYNC round."""
        report = self.engine.step()
        self.reports.append(report)
        return report

    def is_gathered(self) -> bool:
        """Paper's global termination condition (observer-side check)."""
        return self.chain.is_gathered()

    def run(self, max_rounds: Optional[int] = None,
            raise_on_stall: bool = False) -> GatheringResult:
        """Simulate until gathered or the round budget is exhausted."""
        budget = max_rounds if max_rounds is not None else \
            self.params.round_budget(self.initial_n)
        t0 = time.perf_counter()
        chain = self.chain
        gathered = False
        while self.round_index < budget:
            # a bounding-box side shrinks by at most 2 cells per round
            # (each robot hops Chebyshev <= 1), so after observing extent
            # M > 2 the chain provably cannot gather for the next
            # (M - 3) // 2 rounds — skip the termination check for them.
            box = chain.bounding_box()
            if box.fits_in(2, 2):
                gathered = True
                break
            unreachable = (max(box.width, box.height) - 3) // 2
            self.step()
            for _ in range(min(unreachable, budget - self.round_index)):
                self.step()
        else:
            gathered = self.is_gathered()
        wall = time.perf_counter() - t0
        stalled = not gathered
        if stalled and raise_on_stall:
            raise StallError(
                f"no gathering within {budget} rounds (n={self.initial_n})",
                round_index=self.round_index, n=self.chain.n,
                positions=self.chain.positions)
        return GatheringResult(
            gathered=gathered,
            rounds=self.round_index,
            initial_n=self.initial_n,
            final_n=self.chain.n,
            final_positions=self.chain.positions,
            params=self.params,
            reports=self.reports,
            trace=self.trace,
            stalled=stalled,
            wall_time=wall,
        )


def gather(chain: Union[ClosedChain, Sequence[Vec]],
           params: Parameters = DEFAULT_PARAMETERS,
           engine: str = "reference",
           check_invariants: bool = False,
           record_trace: bool = False,
           max_rounds: Optional[int] = None,
           raise_on_stall: bool = False) -> GatheringResult:
    """Gather a closed chain and return the result (convenience API)."""
    sim = Simulator(chain, params=params, engine=engine,
                    check_invariants=check_invariants,
                    record_trace=record_trace)
    return sim.run(max_rounds=max_rounds, raise_on_stall=raise_on_stall)
