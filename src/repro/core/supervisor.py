"""The supervision tier: crash-surviving, quarantining stream execution.

DESIGN.md §2.13.  The streaming scheduler (§2.11) and the durability
tier (§2.12) make a stream fast and resumable; this layer makes it
*survive* — a production stream must outlive every failure class we
can inject:

* **worker crashes** — the supervised pool tracks in-flight chunks,
  detects a dead worker (``BrokenProcessPool``), respawns the pool
  and re-dispatches the lost chunks with bounded retry and
  exponential backoff.  With a WAL directory, each worker logs to its
  own ``shard-<k>/`` sub-WAL plus a per-result ledger, so a
  re-dispatched chunk *resumes from its own snapshot* instead of
  re-running from scratch, and re-delivered results deduplicate by
  stream index exactly like top-level WAL resume.
* **poison chains** — an input that fails chain validation, a chain
  pinned by an invariant violation mid-round, or a chunk that keeps
  killing workers until retries are exhausted (bisected to the single
  offending chain) is *quarantined*: yielded as a structured
  :class:`~repro.core.results.ChainOutcome` error record and appended
  to a dead-letter NDJSON ledger, while the rest of the stream runs
  on.  Stalls and budget exhaustion were already degraded results,
  never aborts.

Everything here is deterministic on the good-chain subset: a
supervised stream with injected kills and poison entries yields
bit-identical results for the surviving chains as an unfaulted run
(property-tested in ``tests/test_supervisor.py``).
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import time
from collections import deque
from dataclasses import replace
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Tuple)

from repro.core.admission import Starved
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.results import ChainOutcome
from repro.errors import WorkerCrashError

#: Extra re-dispatches granted to an isolated single-chain chunk — by
#: the time a chunk is bisected to one chain the pool has already died
#: ``max_retries`` times on it, so one more corpse is proof enough.
SOLO_RETRIES = 1

#: Name of the per-shard results ledger (delivered results, one JSON
#: line each, flushed per record like the WAL itself).
LEDGER_NAME = "results.ndjson"

#: Env hook for deterministic worker-kill injection (tests and the
#: crash harness): ``<counter-file>:<idx>[,<idx>...]`` — a worker that
#: is handed a chunk containing a listed stream index SIGKILLs itself,
#: decrementing the counter file first; at zero the hook disarms (a
#: negative count never disarms: a poison chain that always kills).
KILL_SPEC_ENV = "REPRO_KILL_SPEC"


def _maybe_test_kill(indices: List[int]) -> None:
    """Fault-injection hook: die by SIGKILL if armed for this chunk."""
    spec = os.environ.get(KILL_SPEC_ENV)
    if not spec:
        return
    path, _, idx_part = spec.partition(":")
    targets = {int(x) for x in idx_part.split(",") if x}
    if not targets.intersection(indices):
        return
    import fcntl
    import signal
    with open(path, "r+", encoding="utf-8") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)
        count = int(fh.read().strip() or 0)
        if count == 0:
            return
        if count > 0:
            fh.seek(0)
            fh.truncate()
            fh.write(str(count - 1))
            fh.flush()
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# shard results ledger
# ----------------------------------------------------------------------
def _ledger_line(ext: int, payload) -> str:
    """One delivered outcome as a ledger line (result or quarantine)."""
    from repro.io.serialization import result_to_json
    if isinstance(payload, ChainOutcome):
        return json.dumps({"chain": ext, "q": payload.to_doc()},
                          separators=(",", ":"))
    return json.dumps({"chain": ext, "res": json.loads(
        result_to_json(payload))}, separators=(",", ":"))


def _read_ledger(path: str) -> Tuple[List[Tuple[int, Any]], set]:
    """Load a shard's delivered results (tolerates one torn tail line)."""
    from repro.io.serialization import result_from_json
    out: List[Tuple[int, Any]] = []
    seen: set = set()
    if not os.path.exists(path):
        return out, seen
    with open(path, "rb") as fh:
        data = fh.read()
    nl = data.rfind(b"\n")
    if nl < 0:
        return out, seen
    for line in data[:nl].split(b"\n"):
        doc = json.loads(line.decode("utf-8"))
        ext = int(doc["chain"])
        if "q" in doc:
            payload: Any = ChainOutcome.from_doc(doc["q"])
        else:
            payload = result_from_json(json.dumps(doc["res"]))
        out.append((ext, payload))
        seen.add(ext)
    return out, seen


# ----------------------------------------------------------------------
# the supervised chunk job (runs in a pool worker)
# ----------------------------------------------------------------------
#: One supervised chunk: global indices + chains + run configuration +
#: the shard WAL directory (None: volatile, re-runs from scratch).
_SupJob = Tuple[List[int], List[List[tuple]], Parameters, int, bool,
                Optional[int], bool, bool, Optional[str],
                Optional[dict], str, int]


def _supervised_stream_job(job: _SupJob) -> List[Tuple[int, Any]]:
    """Stream one chunk through a bounded kernel, durably if sharded.

    With a shard directory the chunk write-ahead-logs itself
    (§2.12 machinery, chunk-scoped) and appends every delivered
    outcome to a results ledger *before* the kernel's yield record
    can cover it — so on re-dispatch after a kill the job restores
    its own snapshot, re-reads the ledger, and returns exactly one
    outcome per stream index no matter where the previous attempt
    died.  Top-level function: must pickle for pools.
    """
    (indices, positions, params, slots, check, max_rounds, validate,
     keep, shard_dir, faults_doc, on_error, snapshot_every) = job
    _maybe_test_kill(indices)
    from repro.core.engine_fleet import FleetKernel
    from repro.core.faults import FaultPlan
    faults = FaultPlan.from_doc(faults_doc) if faults_doc else None

    if shard_dir is None:
        fleet = FleetKernel([], params=params, check_invariants=check,
                            keep_reports=keep, validate_initial=validate)
        return list(fleet.run_stream(positions, slots=slots,
                                     max_rounds=max_rounds, release=True,
                                     faults=faults, on_error=on_error,
                                     ext_indices=indices))

    from repro.errors import WalError
    from repro.io.wal import LOG_NAME, WalReader, WalWriter
    ledger = os.path.join(shard_dir, LEDGER_NAME)
    out: List[Tuple[int, Any]] = []
    seen: set = set()
    gen = None
    if os.path.exists(os.path.join(shard_dir, LOG_NAME)):
        # a previous attempt at this same chunk died mid-flight;
        # resume from its shard snapshot instead of re-running
        try:
            snap = WalReader(shard_dir).last_snapshot()
        except WalError:
            snap = None
        if snap is not None:
            out, seen = _read_ledger(ledger)
            _, gen = FleetKernel.restore_stream(shard_dir, positions,
                                                ext_indices=indices)
    if gen is None:
        # fresh dispatch (or the previous attempt died before its
        # baseline snapshot landed): start the shard log over
        if os.path.isdir(shard_dir):
            shutil.rmtree(shard_dir)
        wal = WalWriter(shard_dir)
        fleet = FleetKernel([], params=params, check_invariants=check,
                            keep_reports=keep, validate_initial=validate)
        gen = fleet.run_stream(positions, slots=slots,
                               max_rounds=max_rounds, release=True,
                               wal=wal, snapshot_every=snapshot_every,
                               faults=faults, on_error=on_error,
                               ext_indices=indices)
    with open(ledger, "a", encoding="utf-8") as fh:
        for ext, payload in gen:
            if ext in seen:
                continue               # ledgered but not yield-logged
            fh.write(_ledger_line(ext, payload) + "\n")
            fh.flush()
            out.append((ext, payload))
    return out


# ----------------------------------------------------------------------
# the supervised pool engine
# ----------------------------------------------------------------------
class _Chunk:
    """One dispatchable unit: a slice of the stream bound to a worker
    slot, its retry count, and its (stable-across-retries) shard dir."""

    __slots__ = ("worker", "indices", "positions", "retries", "attempts",
                 "solo", "shard_dir")

    def __init__(self, worker: int, indices: List[int],
                 positions: List[List[tuple]], shard_dir: Optional[str],
                 solo: bool = False):
        self.worker = worker
        self.indices = indices
        self.positions = positions
        self.shard_dir = shard_dir
        self.solo = solo
        self.retries = 0       # attributed crashes (charges the budget)
        self.attempts = 0      # dispatches, attributed or not


def pool_stream(stream: Iterable,
                params: Parameters = DEFAULT_PARAMETERS,
                workers: int = 2,
                slots: int = 256,
                max_rounds: Optional[int] = None,
                check_invariants: bool = False,
                keep_reports: bool = False,
                validate_initial: bool = True,
                faults=None,
                wal_dir: Optional[str] = None,
                snapshot_every: int = 512,
                on_error: str = "raise",
                max_retries: int = 3,
                backoff: float = 0.05,
                progress: Optional[Callable[[int, int], None]] = None,
                stats: Optional[Dict[str, int]] = None,
                as_positions: Optional[Callable] = None
                ) -> Iterator[Tuple[int, Any]]:
    """Shard a chain stream across a *supervised* process pool.

    The crash-recovery state machine (§2.13): chain ``i`` belongs to
    worker slot ``i % workers``; each slot streams chunk after chunk
    through ``slots // workers`` arena slots of its own, at most one
    chunk in flight per slot.  When the pool breaks — a worker
    SIGKILLed, OOMed, or its pipe torn — every in-flight chunk is
    collected, the pool is respawned after an exponential backoff
    (``backoff * 2**(crashes-1)``, capped at 2 s), and the casualties
    re-dispatch.  A crash is *charged* against a chunk's retry budget
    only when that chunk was alone in flight — with several chunks in
    flight the killer cannot be identified, so the casualties requeue
    uncharged and the pool enters serial *probation* (one chunk in
    flight at a time) until every suspect has completed, making the
    next crash attributable.  No innocent chunk can therefore exhaust
    its budget on collateral damage.  A chunk that exhausts
    ``max_retries`` attributed crashes is bisected to single-chain
    chunks (the poison hunt); a single chain that *still* kills
    workers is quarantined as a :class:`ChainOutcome` error record
    (``on_error="quarantine"``) or raised as :class:`WorkerCrashError`
    (``"raise"``).

    With ``wal_dir``, chunks log to ``shard-<k>/`` (isolated chunks to
    ``solo-<i>/``) and re-dispatches resume from the shard snapshot —
    see :func:`_supervised_stream_job` for the exactly-once ledger.

    Yields ``(stream_index, payload)`` pairs where payload is a
    :class:`GatheringResult` or a :class:`ChainOutcome` error record.
    ``stats`` (when given) accumulates supervision telemetry in place.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures import BrokenExecutor
    if as_positions is None:
        as_positions = lambda c: c                        # noqa: E731
    workers = min(workers, slots)
    per_slots = slots // workers
    chunk_size = per_slots * 4             # amortise per-job startup
    st = stats if stats is not None else {}
    for key in ("worker_crashes", "redispatches", "isolated",
                "quarantined_worker", "fault_crashed", "fault_perturbed"):
        st.setdefault(key, 0)

    chunk_faults_doc = None
    if faults is not None and (faults.mid_crash > 0.0
                               or faults.mid_restart > 0.0):
        # intake decisions happen here in the parent (they need the
        # global enumeration before sharding); workers keep only the
        # mid-run half of the plan, decided under global indices via
        # ext_indices
        chunk_faults_doc = replace(faults, crash=0.0, perturb=0.0).to_doc()

    def job_of(ch: _Chunk) -> _SupJob:
        return (ch.indices, ch.positions, params, per_slots,
                check_invariants, max_rounds, validate_initial,
                keep_reports, ch.shard_dir, chunk_faults_doc, on_error,
                snapshot_every)

    pool = ProcessPoolExecutor(max_workers=workers)
    inflight: Dict[Any, _Chunk] = {}
    pending: List[deque] = [deque() for _ in range(workers)]
    buffers: List[list] = [[] for _ in range(workers)]
    busy = [False] * workers
    crashes = 0
    done = 0
    probation = 0      # suspect chunks that must complete serially

    def shard_path(k: int) -> Optional[str]:
        if wal_dir is None:
            return None
        return os.path.join(wal_dir, f"shard-{k}")

    def solo_path(idx: int) -> Optional[str]:
        if wal_dir is None:
            return None
        return os.path.join(wal_dir, f"solo-{idx}")

    def dispatch(k: int) -> None:
        if busy[k] or not pending[k]:
            return
        ch = pending[k].popleft()
        if ch.attempts == 0 and ch.shard_dir is not None \
                and os.path.isdir(ch.shard_dir):
            # a never-dispatched chunk re-uses its slot's shard dir
            # serially; wipe the previous chunk's completed log so any
            # log the worker finds is its own crashed attempt
            shutil.rmtree(ch.shard_dir)
        ch.attempts += 1
        busy[k] = True
        inflight[pool.submit(_supervised_stream_job, job_of(ch))] = ch

    def dispatch_all() -> None:
        if probation > 0:
            # serial probation: at most one chunk in flight, so the
            # next crash convicts exactly one suspect
            if not inflight:
                for k in range(workers):
                    if pending[k]:
                        dispatch(k)
                        break
            return
        for k in range(workers):
            dispatch(k)

    def queue_fresh(k: int) -> None:
        ch = _Chunk(k, [i for i, _ in buffers[k]],
                    [p for _, p in buffers[k]], shard_path(k))
        buffers[k] = []
        pending[k].append(ch)

    def handle_casualty(ch: _Chunk) -> List[Tuple[int, Any]]:
        ch.retries += 1
        st["redispatches"] += 1
        budget = SOLO_RETRIES if ch.solo else max_retries
        if ch.retries <= budget:
            pending[ch.worker].appendleft(ch)
            return []
        if len(ch.indices) > 1:
            # the chunk keeps killing workers: bisect to singletons so
            # the poison chain convicts itself and the innocent
            # majority of the chunk completes normally
            st["isolated"] += len(ch.indices)
            for idx, pos in zip(reversed(ch.indices),
                                reversed(ch.positions)):
                pending[ch.worker].appendleft(
                    _Chunk(ch.worker, [idx], [pos], solo_path(idx),
                           solo=True))
            return []
        idx = ch.indices[0]
        msg = (f"chain {idx} killed worker slot {ch.worker} on every "
               f"attempt ({ch.retries} dispatches)")
        if on_error != "quarantine":
            raise WorkerCrashError(msg, worker=ch.worker,
                                   indices=ch.indices, retries=ch.retries)
        st["quarantined_worker"] += 1
        return [(idx, ChainOutcome(index=idx, error="WorkerCrashError",
                                   message=msg, stage="worker",
                                   retries=ch.retries, quarantined=True))]

    def drain(min_inflight: int, timeout: Optional[float] = None):
        nonlocal crashes, done, pool, probation
        while len(inflight) > min_inflight:
            ready, _ = wait(set(inflight), timeout=timeout,
                            return_when=FIRST_COMPLETED)
            if not ready:
                return                 # timed poll: nothing finished yet
            casualties: List[_Chunk] = []
            broke = False
            for fut in ready:
                ch = inflight.pop(fut)
                exc = fut.exception()
                if exc is None:
                    busy[ch.worker] = False
                    if probation > 0:
                        probation -= 1
                    for pair in fut.result():
                        done += 1
                        yield pair
                    if progress is not None:
                        progress(done, -1)
                elif isinstance(exc, (BrokenExecutor, EOFError, OSError)):
                    broke = True
                    casualties.append(ch)
                elif isinstance(exc, pickle.PicklingError):
                    # deterministic transport failure: retrying cannot
                    # help, but callers still get the taxonomy class
                    raise WorkerCrashError(
                        f"chunk for worker slot {ch.worker} failed to "
                        f"cross the process boundary: {exc}",
                        worker=ch.worker, indices=ch.indices,
                        retries=ch.retries) from exc
                else:
                    # the job itself failed (strict-mode chain error, a
                    # bug): not a worker death, no retry
                    raise exc
            if broke:
                # the pool is dead: every other in-flight future
                # resolves immediately — harvest the finished ones,
                # everything else is a casualty
                for fut, ch in list(inflight.items()):
                    del inflight[fut]
                    if fut.exception() is None:
                        busy[ch.worker] = False
                        for pair in fut.result():
                            done += 1
                            yield pair
                    else:
                        casualties.append(ch)
                crashes += 1
                st["worker_crashes"] += 1
                pool.shutdown(wait=False, cancel_futures=True)
                time.sleep(min(backoff * (2 ** (crashes - 1)), 2.0))
                pool = ProcessPoolExecutor(max_workers=workers)
                for k in range(workers):
                    busy[k] = False
                if len(casualties) == 1:
                    # alone in flight: the crash is this chunk's fault
                    for pair in handle_casualty(casualties[0]):
                        done += 1
                        yield pair
                else:
                    # several suspects — the killer is unidentifiable,
                    # so nobody's budget is charged; requeue and let
                    # probation re-run them one at a time
                    for ch in casualties:
                        st["redispatches"] += 1
                        pending[ch.worker].appendleft(ch)
                # everything queued right now re-runs serially so the
                # next crash has exactly one possible culprit
                probation = sum(len(q) for q in pending)
            dispatch_all()

    take = getattr(stream, "take", None)
    if take is not None and not callable(take):
        take = None
    it = iter(stream)
    try:
        i = -1
        while True:
            if take is None:
                try:
                    c = next(it)
                except StopIteration:
                    break
            else:
                # admission-source intake (§2.15): starvation flushes
                # the partial buffers as chunks — queued submissions
                # must not wait for chunk_size while the wire is idle
                # — then keeps in-flight results draining on a short
                # poll until the next submission or close
                try:
                    c = take()
                except StopIteration:
                    break
                except Starved:
                    flushed = False
                    for k in range(workers):
                        if buffers[k]:
                            queue_fresh(k)
                            flushed = True
                    if flushed:
                        dispatch_all()
                    if inflight:
                        yield from drain(0, timeout=0.02)
                        dispatch_all()
                        continue
                    try:
                        c = take(block=True, timeout=0.1)
                    except Starved:
                        continue
                    except StopIteration:
                        break
            i += 1
            if faults is not None:
                kind = faults.decide(i)
                if kind == "crash":
                    st["fault_crashed"] += 1
                    continue
                if kind == "perturb":
                    c = faults.mutate(i, as_positions(c))
                    st["fault_perturbed"] += 1
            k = i % workers
            buffers[k].append((i, as_positions(c)))
            if len(buffers[k]) >= chunk_size:
                queue_fresh(k)
                dispatch_all()
                # bounded pipeline: park intake while every slot is
                # busy (or probation serialises them) and work is
                # still queued behind them
                while any(pending) and (all(busy) or probation > 0):
                    if not inflight:
                        dispatch_all()
                    yield from drain(max(len(inflight) - 1, 0))
        for k in range(workers):
            if buffers[k]:
                queue_fresh(k)
        dispatch_all()
        while any(pending) or inflight:
            yield from drain(0)
            dispatch_all()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    if progress is not None:
        progress(done, done)


# ----------------------------------------------------------------------
# dead-letter ledger
# ----------------------------------------------------------------------
class DeadLetterWriter:
    """Append-only NDJSON ledger of quarantined work.

    One line per quarantined chain (or rejected intake line), flushed
    per record; the file is opened in append mode so successive
    supervised runs accumulate into one ledger.
    """

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        self.count = 0

    def write(self, doc: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
        self._fh.flush()
        self.count += 1

    def write_outcome(self, outcome: ChainOutcome) -> None:
        self.write(outcome.to_doc())

    def close(self) -> None:
        self._fh.close()


# ----------------------------------------------------------------------
# the user-facing supervisor
# ----------------------------------------------------------------------
class StreamSupervisor:
    """Run a chain stream under full supervision.

    The library face of the supervision tier: wraps
    :meth:`BatchSimulator.run_stream` in quarantine mode (in-process
    or supervised pool, by ``workers``), normalises every delivery to
    a :class:`ChainOutcome`, and appends quarantined outcomes to the
    ``dead_letter`` ledger.  After the stream drains, :attr:`stats`
    holds the merged scheduler + supervision telemetry.
    """

    def __init__(self, params: Parameters = DEFAULT_PARAMETERS,
                 workers: Optional[int] = None,
                 slots: int = 256,
                 max_rounds: Optional[int] = None,
                 check_invariants: bool = False,
                 keep_reports: bool = False,
                 validate_initial: bool = True,
                 max_retries: int = 3,
                 backoff: float = 0.05,
                 wal_dir: Optional[str] = None,
                 snapshot_every: int = 512,
                 faults=None,
                 dead_letter: Optional[str] = None,
                 resume: bool = False):
        self.params = params
        self.workers = int(workers) if workers else 1
        self.slots = slots
        self.max_rounds = max_rounds
        self.check_invariants = check_invariants
        self.keep_reports = keep_reports
        self.validate_initial = validate_initial
        self.max_retries = max_retries
        self.backoff = backoff
        self.wal_dir = wal_dir
        self.snapshot_every = snapshot_every
        self.faults = faults
        self.dead_letter = dead_letter
        self.resume = resume
        self.stats: Dict[str, int] = {}

    def run(self, chains: Iterable = (),
            progress: Optional[Callable[[int, int], None]] = None
            ) -> Iterator[ChainOutcome]:
        """Stream ``chains``; yield one :class:`ChainOutcome` per entry
        (injected intake crashes excepted — they are gaps, as always).
        """
        from repro.core.batch import BatchSimulator
        sim = BatchSimulator([], params=self.params, engine="kernel",
                             check_invariants=self.check_invariants,
                             workers=self.workers,
                             keep_reports=self.keep_reports,
                             validate_initial=self.validate_initial,
                             backend="fleet")
        dl = DeadLetterWriter(self.dead_letter) if self.dead_letter else None
        quarantined = 0
        try:
            for ext, payload in sim.run_stream(
                    chains, slots=self.slots, max_rounds=self.max_rounds,
                    progress=progress, wal_dir=self.wal_dir,
                    snapshot_every=self.snapshot_every, faults=self.faults,
                    resume=self.resume, on_error="quarantine",
                    max_retries=self.max_retries, backoff=self.backoff):
                if isinstance(payload, ChainOutcome):
                    outcome = payload
                else:
                    outcome = ChainOutcome(index=ext, result=payload)
                if not outcome.ok:
                    quarantined += 1
                    if dl is not None:
                        dl.write_outcome(outcome)
                yield outcome
        finally:
            if dl is not None:
                dl.close()
        self.stats = dict(sim.last_stream_stats or {})
        self.stats["quarantined_total"] = quarantined


def supervise_stream(chains: Iterable, **kwargs) -> Iterator[ChainOutcome]:
    """One-call supervised streaming (see :class:`StreamSupervisor`)."""
    progress = kwargs.pop("progress", None)
    return StreamSupervisor(**kwargs).run(chains, progress=progress)
