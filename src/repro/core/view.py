"""Local views: what a single robot is allowed to see.

The paper's locality model is the heart of the contribution: a robot
sees only its next ``V`` chain neighbours in each direction (their
relative positions, plus — for the run mechanics — the run states they
carry, since run states are handed between neighbours and a runner can
"see the next sequent run in front of it").

:class:`ChainWindow` is the only interface through which the policy
code reads the chain.  Any access beyond ±``V`` raises
:class:`~repro.errors.LocalityViolation`, which makes locality a
structural property of the implementation rather than a convention.

The window binds the chain's zero-copy position/id views at
construction (windows are per-round temporaries built from one FSYNC
snapshot, see DESIGN.md §2.8), so the per-offset reads on the measured
hot path are plain list indexing.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import LocalityViolation
from repro.grid.lattice import Vec


class ChainWindow:
    """A robot-centred sliding window over the chain.

    Offsets are chain offsets relative to the anchor robot; positive
    offsets follow increasing chain index.  ``runs_at`` exposes the
    directions of run states carried by visible robots (empty when no
    run registry is attached).
    """

    __slots__ = ("_chain", "_anchor", "_limit", "_runs_of", "_pos", "_ids",
                 "_n", "_carriers")

    def __init__(self, chain, anchor_index: int, viewing_path_length: int,
                 runs_of: Optional[Callable[[int], Sequence[int]]] = None,
                 carriers: Optional[Tuple[List[int], List[int]]] = None):
        self._chain = chain
        self._pos = chain.positions_view()
        self._ids = chain.ids_view()
        self._n = len(self._pos)
        self._anchor = anchor_index % self._n
        self._limit = viewing_path_length
        self._runs_of = runs_of
        self._carriers = carriers

    def reanchor(self, anchor_index: int) -> "ChainWindow":
        """Move the window to another robot of the same snapshot.

        The engine slides one window over all deciding robots per round
        instead of allocating one each (windows are immutable snapshots
        otherwise; the chain must not have mutated since construction).
        """
        self._anchor = anchor_index % self._n
        return self

    @property
    def anchor_index(self) -> int:
        """Chain index of the anchored robot."""
        return self._anchor

    @property
    def limit(self) -> int:
        """Viewing path length ``V``."""
        return self._limit

    def _check(self, offset: int) -> None:
        limit = self._limit
        if offset > limit or -offset > limit:
            raise LocalityViolation(
                f"offset {offset} exceeds viewing path length {limit}")

    def pos(self, offset: int) -> Vec:
        """Absolute position of the robot ``offset`` steps along the chain.

        The policy only ever uses *differences* of these values, so the
        absolute frame does not leak global information.
        """
        self._check(offset)
        return self._pos[(self._anchor + offset) % self._n]

    def rel(self, offset: int) -> Vec:
        """Position of a visible robot relative to the anchor."""
        self._check(offset)
        pos = self._pos
        a = pos[self._anchor]
        b = pos[(self._anchor + offset) % self._n]
        return (b[0] - a[0], b[1] - a[1])

    def edge(self, offset: int, direction: int) -> Vec:
        """Edge vector from robot at ``offset`` to the next one toward ``direction``.

        ``direction`` must be +1 or -1.  Both endpoints must be within
        the window.
        """
        limit = self._limit
        far = offset + direction
        if abs(offset) > limit or abs(far) > limit:
            self._check(offset)
            self._check(far)
        pos = self._pos
        n = self._n
        a = pos[(self._anchor + offset) % n]
        b = pos[(self._anchor + far) % n]
        return (b[0] - a[0], b[1] - a[1])

    def id_at(self, offset: int) -> int:
        """Stable id of a visible robot (used to track travel targets).

        Identity here is positional bookkeeping for the simulator; the
        modelled robots remain anonymous — no rule compares ids of
        distinct robots.
        """
        self._check(offset)
        return self._ids[(self._anchor + offset) % self._n]

    def run_directions_at(self, offset: int) -> Tuple[int, ...]:
        """Chain directions (+1/-1) of run states on a visible robot."""
        self._check(offset)
        if self._runs_of is None:
            return ()
        dirs = self._runs_of(self._ids[(self._anchor + offset) % self._n])
        return tuple(dirs) if dirs else ()

    def runs_ahead(self, direction: int, limit: int) -> Tuple[Optional[int], Optional[int]]:
        """Nearest sequent and oncoming runs ahead (bulk scan).

        Returns ``(sequent_offset, oncoming_offset)`` — the smallest
        1-based offsets toward ``direction`` carrying a run moving with
        resp. against ``direction`` (``None`` when absent).  Semantically
        identical to probing :meth:`run_directions_at` offset by offset;
        implemented as one pass because this scan dominates the round
        cost (see bench_engines).
        """
        self._check(limit * direction)
        n = self._n
        carriers = self._carriers
        if carriers is not None:
            # per-round carrier index lists split by run direction: visit
            # the few run-carrying robots instead of probing every offset
            fwd, bwd = carriers
            anchor = self._anchor
            sequent = oncoming = None
            for ci in (fwd if direction == 1 else bwd):
                off = ((ci - anchor) * direction) % n
                if off == 0:
                    off = n                # the anchor re-appears after a lap
                if off <= limit and (sequent is None or off < sequent):
                    sequent = off
            for ci in (bwd if direction == 1 else fwd):
                off = ((ci - anchor) * direction) % n
                if off == 0:
                    off = n
                if off <= limit and (oncoming is None or off < oncoming):
                    oncoming = off
            return (sequent, oncoming)
        if self._runs_of is None:
            return (None, None)
        ids = self._ids
        runs_of = self._runs_of
        sequent = oncoming = None
        i = self._anchor
        for off in range(1, limit + 1):
            i += direction
            if i >= n:
                i -= n
            elif i < 0:
                i += n
            dirs = runs_of(ids[i])
            if dirs:
                if sequent is None and direction in dirs:
                    sequent = off
                if oncoming is None and -direction in dirs:
                    oncoming = off
                if sequent is not None and oncoming is not None:
                    break
        return (sequent, oncoming)

    # convenience predicates used by the policy ------------------------------
    def ahead_edges(self, direction: int, count: int) -> List[Vec]:
        """The first ``count`` edge vectors ahead in ``direction``.

        Edge ``j`` (1-based) points from the robot at offset
        ``(j-1)*direction`` to the robot at ``j*direction``.
        """
        self._check(count * direction)
        pos = self._pos
        n = self._n
        anchor = self._anchor
        prev = pos[anchor]
        out: List[Vec] = []
        for j in range(1, count + 1):
            cur = pos[(anchor + j * direction) % n]
            out.append((cur[0] - prev[0], cur[1] - prev[1]))
            prev = cur
        return out

    def ahead_codes(self, direction: int, count: int) -> List[int]:
        """Direction codes of the first ``count`` edges ahead.

        Code semantics follow :meth:`ClosedChain.edge_codes` (0=E, 1=N,
        2=W, 3=S, -1=zero edge); toward ``direction = -1`` the chain's
        forward codes are flipped to the walking direction (the opposite
        of a valid code is ``code ^ 2``).  Against a connected chain this
        is the integer rendering of :meth:`ahead_edges`; the policy's
        shape checks parse these codes on the measured hot path.
        """
        self._check(count * direction)
        codes = self._chain.edge_codes_list()
        n = self._n
        anchor = self._anchor
        if count > n:                      # window laps the (short) chain
            if direction == 1:
                return [codes[(anchor + j) % n] for j in range(count)]
            return [c ^ 2 if c >= 0 else c
                    for j in range(1, count + 1)
                    for c in (codes[(anchor - j) % n],)]
        if direction == 1:
            end = anchor + count
            if end <= n:
                return codes[anchor:end]
            return codes[anchor:] + codes[:end - n]
        start = anchor - count
        if start >= 0:
            seg = codes[start:anchor]
        else:
            seg = codes[start + n:] + codes[:anchor]
        return [c ^ 2 if c >= 0 else c for c in reversed(seg)]

    def code_toward(self, direction: int) -> int:
        """Code of the anchor's first edge toward ``direction``.

        Scalar fast path for ``ahead_codes(direction, 1)[0]``.
        """
        self._check(direction)
        codes = self._chain.edge_codes_list()
        if direction == 1:
            return codes[self._anchor]
        c = codes[self._anchor - 1]
        return c ^ 2 if c >= 0 else c

    def wraps(self) -> bool:
        """True when the window covers the entire (short) chain.

        Robots cannot *detect* this — it is used only by tests and
        analysis tooling, never by the policy.
        """
        return 2 * self._limit + 1 >= self._n
