"""Local views: what a single robot is allowed to see.

The paper's locality model is the heart of the contribution: a robot
sees only its next ``V`` chain neighbours in each direction (their
relative positions, plus — for the run mechanics — the run states they
carry, since run states are handed between neighbours and a runner can
"see the next sequent run in front of it").

:class:`ChainWindow` is the only interface through which the policy
code reads the chain.  Any access beyond ±``V`` raises
:class:`~repro.errors.LocalityViolation`, which makes locality a
structural property of the implementation rather than a convention.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import LocalityViolation
from repro.grid.lattice import Vec, sub


class ChainWindow:
    """A robot-centred sliding window over the chain.

    Offsets are chain offsets relative to the anchor robot; positive
    offsets follow increasing chain index.  ``runs_at`` exposes the
    directions of run states carried by visible robots (empty when no
    run registry is attached).
    """

    __slots__ = ("_chain", "_anchor", "_limit", "_runs_of")

    def __init__(self, chain, anchor_index: int, viewing_path_length: int,
                 runs_of: Optional[Callable[[int], Sequence[int]]] = None):
        self._chain = chain
        self._anchor = anchor_index % chain.n
        self._limit = viewing_path_length
        self._runs_of = runs_of

    @property
    def anchor_index(self) -> int:
        """Chain index of the anchored robot."""
        return self._anchor

    @property
    def limit(self) -> int:
        """Viewing path length ``V``."""
        return self._limit

    def _check(self, offset: int) -> None:
        if abs(offset) > self._limit:
            raise LocalityViolation(
                f"offset {offset} exceeds viewing path length {self._limit}")

    def pos(self, offset: int) -> Vec:
        """Absolute position of the robot ``offset`` steps along the chain.

        The policy only ever uses *differences* of these values, so the
        absolute frame does not leak global information.
        """
        self._check(offset)
        return self._chain.position(self._anchor + offset)

    def rel(self, offset: int) -> Vec:
        """Position of a visible robot relative to the anchor."""
        self._check(offset)
        return sub(self._chain.position(self._anchor + offset),
                   self._chain.position(self._anchor))

    def edge(self, offset: int, direction: int) -> Vec:
        """Edge vector from robot at ``offset`` to the next one toward ``direction``.

        ``direction`` must be +1 or -1.  Both endpoints must be within
        the window.
        """
        self._check(offset)
        self._check(offset + direction)
        a = self._chain.position(self._anchor + offset)
        b = self._chain.position(self._anchor + offset + direction)
        return sub(b, a)

    def id_at(self, offset: int) -> int:
        """Stable id of a visible robot (used to track travel targets).

        Identity here is positional bookkeeping for the simulator; the
        modelled robots remain anonymous — no rule compares ids of
        distinct robots.
        """
        self._check(offset)
        return self._chain.id_at(self._anchor + offset)

    def run_directions_at(self, offset: int) -> Tuple[int, ...]:
        """Chain directions (+1/-1) of run states on a visible robot."""
        self._check(offset)
        if self._runs_of is None:
            return ()
        return tuple(self._runs_of(self._chain.id_at(self._anchor + offset)))

    def runs_ahead(self, direction: int, limit: int) -> Tuple[Optional[int], Optional[int]]:
        """Nearest sequent and oncoming runs ahead (bulk scan).

        Returns ``(sequent_offset, oncoming_offset)`` — the smallest
        1-based offsets toward ``direction`` carrying a run moving with
        resp. against ``direction`` (``None`` when absent).  Semantically
        identical to probing :meth:`run_directions_at` offset by offset;
        implemented as one pass because this scan dominates the round
        cost (see bench_engines).
        """
        self._check(limit * direction)
        if self._runs_of is None:
            return (None, None)
        ids = self._chain._ids
        n = len(ids)
        anchor = self._anchor
        runs_of = self._runs_of
        sequent = oncoming = None
        for off in range(1, limit + 1):
            dirs = runs_of(ids[(anchor + off * direction) % n])
            if dirs:
                if sequent is None and direction in dirs:
                    sequent = off
                if oncoming is None and -direction in dirs:
                    oncoming = off
                if sequent is not None and oncoming is not None:
                    break
        return (sequent, oncoming)

    # convenience predicates used by the policy ------------------------------
    def ahead_edges(self, direction: int, count: int) -> List[Vec]:
        """The first ``count`` edge vectors ahead in ``direction``.

        Edge ``j`` (1-based) points from the robot at offset
        ``(j-1)*direction`` to the robot at ``j*direction``.
        """
        self._check(count * direction)
        chain = self._chain
        anchor = self._anchor
        prev = chain.position(anchor)
        out: List[Vec] = []
        for j in range(1, count + 1):
            cur = chain.position(anchor + j * direction)
            out.append((cur[0] - prev[0], cur[1] - prev[1]))
            prev = cur
        return out

    def wraps(self) -> bool:
        """True when the window covers the entire (short) chain.

        Robots cannot *detect* this — it is used only by tests and
        analysis tooling, never by the policy.
        """
        return 2 * self._limit + 1 >= self._chain.n
