"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ChainError(ReproError):
    """An invalid closed chain (connectivity, parity, coincident neighbours)."""


class InvariantViolation(ReproError):
    """A model invariant was broken during simulation.

    Raised by :mod:`repro.core.invariants` when invariant checking is
    enabled; indicates a bug in the algorithm implementation rather than
    a property of the input.
    """


class StallError(ReproError):
    """The simulation exceeded its round budget without gathering.

    Carries diagnostic information so stalls can be reproduced and
    analysed (the configuration, round counts and run census).
    """

    def __init__(self, message: str, round_index: int, n: int, positions=None):
        super().__init__(message)
        self.round_index = round_index
        self.n = n
        self.positions = list(positions) if positions is not None else None


class LocalityViolation(ReproError):
    """A decision procedure read beyond the viewing path length."""


class WalError(ReproError):
    """A write-ahead log or snapshot could not be written, read or resumed.

    Raised by :mod:`repro.io.wal` for structural problems — a missing
    or corrupt log, a broken LSN sequence, a snapshot whose file is
    gone, or a resume whose chain stream is shorter than the recorded
    admission cursor.  (Unknown record *versions* raise
    :class:`ChainError` through the shared document validation, like
    every other serialized format.)
    """
