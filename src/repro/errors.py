"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ChainError(ReproError):
    """An invalid closed chain (connectivity, parity, coincident neighbours)."""


class InvariantViolation(ReproError):
    """A model invariant was broken during simulation.

    Raised by :mod:`repro.core.invariants` when invariant checking is
    enabled; indicates a bug in the algorithm implementation rather than
    a property of the input.
    """


class StallError(ReproError):
    """The simulation exceeded its round budget without gathering.

    Carries diagnostic information so stalls can be reproduced and
    analysed (the configuration, round counts and run census).
    """

    def __init__(self, message: str, round_index: int, n: int, positions=None):
        super().__init__(message)
        self.round_index = round_index
        self.n = n
        self.positions = list(positions) if positions is not None else None


class LocalityViolation(ReproError):
    """A decision procedure read beyond the viewing path length."""


class WorkerCrashError(ReproError):
    """A pool worker died (SIGKILL, OOM, broken pipe) or a job failed
    to cross the process boundary (pickling).

    Carries enough context to re-dispatch or quarantine: the worker
    slot, the stream indices of the chunk that was in flight, and how
    many re-dispatch attempts had been made when the supervisor gave
    up.  Raised by :mod:`repro.core.supervisor` and the pool paths of
    :class:`repro.core.batch.BatchSimulator` in strict mode; in
    quarantine mode the same information rides in a
    :class:`~repro.core.results.ChainOutcome` instead.
    """

    def __init__(self, message: str, worker: int = -1,
                 indices=None, retries: int = 0):
        super().__init__(message)
        self.worker = worker
        self.indices = list(indices) if indices is not None else []
        self.retries = retries


class QuarantinedChainError(ReproError):
    """A stream entry was quarantined but the caller demanded a result.

    Raised by :meth:`repro.core.results.ChainOutcome.unwrap` (and the
    strict-mode streaming paths built on it) when a chain's outcome is
    an error record — poisoned input, an invariant violation pinned to
    the chain, or worker-crash retry exhaustion.
    """

    def __init__(self, message: str, index: int = -1, stage: str = ""):
        super().__init__(message)
        self.index = index
        self.stage = stage


class WalError(ReproError):
    """A write-ahead log or snapshot could not be written, read or resumed.

    Raised by :mod:`repro.io.wal` for structural problems — a missing
    or corrupt log, a broken LSN sequence, a snapshot whose file is
    gone, or a resume whose chain stream is shorter than the recorded
    admission cursor.  (Unknown record *versions* raise
    :class:`ChainError` through the shared document validation, like
    every other serialized format.)
    """
