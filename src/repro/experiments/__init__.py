"""Experiments: one module per paper artifact (DESIGN.md §4).

``run_experiments()`` executes the registered experiments;
``python -m repro.experiments.report`` regenerates EXPERIMENTS.md.
"""

from repro.experiments.harness import (
    ExperimentResult,
    format_markdown_report,
    registered_ids,
    run_experiments,
)

__all__ = [
    "ExperimentResult",
    "run_experiments",
    "registered_ids",
    "format_markdown_report",
]
