"""EXP-A1..A3 — ablations over the paper's constants.

The paper fixes L = 13 and viewing path length 11 and argues (Lemma 3)
these suffice; the proof of Lemma 1 additionally restricts merges to
k <= 2.  The ablations measure what actually happens when the knobs
move — including the liveness loss at k_max = 2 that motivates the
default k_max = V - 1 (DESIGN.md §2.2).
"""

from __future__ import annotations

from typing import List

from repro.core.config import Parameters
from repro.chains import square_ring, stairway_octagon
from repro.analysis import format_table
from repro.experiments.harness import ExperimentResult, register, sweep_gather


def _grid(quick: bool):
    sides = [16, 24] if quick else [16, 24, 40]
    return [("square", square_ring(s)) for s in sides] + \
           [("octagon", stairway_octagon(s, 2)) for s in ([12] if quick else [12, 20])]


@register("EXP-A1")
def run_start_interval(quick: bool = False) -> ExperimentResult:
    rows: List[dict] = []
    ok_all = True
    cases = _grid(quick)
    for L in (7, 13, 21):
        params = Parameters(start_interval=L)
        batch = sweep_gather([pts for _, pts in cases], params=params,
                             keep_reports=False)
        for (name, _), res in zip(cases, batch):
            rows.append({"L": L, "chain": name, "n": res.initial_n,
                         "rounds": res.rounds, "gathered": res.gathered})
            if L >= 13:
                ok_all &= res.gathered
    table = format_table(rows, title="rounds vs start interval L")
    return ExperimentResult(
        experiment_id="EXP-A1",
        title="Ablation: start interval L",
        paper_claim=("L = 13 guarantees sequent runs never interfere "
                     "(proof of Lemma 3 requires L >= 13)"),
        measured=("gathering succeeds for L in {7, 13, 21}; smaller L "
                  "starts waves more often, larger L wastes idle rounds "
                  "(see table)"),
        passed=ok_all,
        table=table,
    )


@register("EXP-A2")
def run_k_max(quick: bool = False) -> ExperimentResult:
    rows: List[dict] = []
    # the 24-point square ring is mergeless for every k_max below 23,
    # but quasi lines of 24 robots are long enough for runs at any k_max;
    # the 12-point ring needs k_max > 2 to make progress at its scale.
    cases = [("square 12", square_ring(12)), ("square 16", square_ring(16)),
             ("square 24", square_ring(24))]
    default_ok = True
    small_k_limited = False
    for k in (2, 3, 4, 10):
        params = Parameters(k_max=k)
        batch = sweep_gather([pts for _, pts in cases], params=params,
                             keep_reports=False, max_rounds=3000)
        for (name, _), res in zip(cases, batch):
            rows.append({"k_max": k, "chain": name, "n": res.initial_n,
                         "rounds": res.rounds, "gathered": res.gathered})
            if k == 10:
                default_ok &= res.gathered
            if k == 2 and not res.gathered:
                small_k_limited = True
    table = format_table(rows, title="gathering vs merge length cap k_max")
    return ExperimentResult(
        experiment_id="EXP-A2",
        title="Ablation: merge length cap k_max",
        paper_claim=("the proof of Lemma 1 only uses merges up to k = 2; "
                     "the algorithm itself may merge anything its view covers"),
        measured=("k_max = 10 (the visibility limit) gathers everything; "
                  "k_max = 2 alone loses liveness on small symmetric rings — "
                  "the algorithm needs the full merge range, the proof does not"
                  if small_k_limited else
                  "all tested k_max values gathered the test rings"),
        passed=default_ok,
        table=table,
    )


@register("EXP-A3")
def run_viewing_range(quick: bool = False) -> ExperimentResult:
    rows: List[dict] = []
    ok_all = True
    cases = _grid(quick)
    for v in (7, 11, 15):
        params = Parameters(viewing_path_length=v)
        batch = sweep_gather([pts for _, pts in cases], params=params,
                             keep_reports=False, max_rounds=6000)
        for (name, _), res in zip(cases, batch):
            rows.append({"V": v, "chain": name, "n": res.initial_n,
                         "rounds": res.rounds, "gathered": res.gathered})
            if v == 11:
                ok_all &= res.gathered
    table = format_table(rows, title="rounds vs viewing path length V")
    return ExperimentResult(
        experiment_id="EXP-A3",
        title="Ablation: viewing path length V",
        paper_claim=("viewing path length 11 suffices for all detections "
                     "(merge visibility, passing, termination conditions)"),
        measured="V = 11 gathers all cases; larger V merges longer subchains "
                 "directly, smaller V leans harder on runs (see table)",
        passed=ok_all,
        table=table,
    )
