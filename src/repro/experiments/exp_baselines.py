"""EXP-B1/B2 — baselines: global knowledge and the open-chain ancestor.

EXP-B1 quantifies the paper's introductory remark that global vision or
a global compass makes gathering easy: both baselines finish in
~diameter rounds, while the local algorithm pays a constant-factor
price for strict locality yet stays linear.

EXP-B2 reproduces the Manhattan-Hopper behaviour of [KM09] (open chain,
distinguishable fixed endpoints): linear-time shortening to the optimal
relay count — the result the closed-chain paper generalises.
"""

from __future__ import annotations

import random
from typing import List

from repro.grid.lattice import bounding_box
from repro.chains import random_chain, square_ring
from repro.baselines import (
    gather_compass, gather_global_vision, shorten_open_chain,
)
from repro.analysis import fit_rounds, format_table
from repro.experiments.harness import ExperimentResult, register, sweep_gather


@register("EXP-B1")
def run_baselines(quick: bool = False) -> ExperimentResult:
    rows: List[dict] = []
    ok_all = True
    sides = [12, 20, 32] if quick else [12, 20, 32, 48, 64]
    rings = [square_ring(side) for side in sides]
    locals_ = sweep_gather(rings, keep_reports=False)
    for pts, local in zip(rings, locals_):
        diameter = bounding_box(pts).diameter
        vision = gather_global_vision(list(pts))
        compass = gather_compass(list(pts))
        ok_all &= local.gathered and vision.gathered and compass.gathered
        rows.append({
            "n": local.initial_n, "diameter": diameter,
            "local_rounds": local.rounds,
            "global_vision_rounds": vision.rounds,
            "compass_rounds": compass.rounds,
        })
    # shape check: baselines track the diameter, the local algorithm is
    # linear in n with a larger constant
    last = rows[-1]
    ordering_ok = (last["global_vision_rounds"] <= last["local_rounds"]
                   and last["compass_rounds"] <= last["local_rounds"])
    ok_all &= ordering_ok
    table = format_table(rows, title="local algorithm vs global-knowledge baselines")
    return ExperimentResult(
        experiment_id="EXP-B1",
        title="Baselines: global vision / global compass (paper §1)",
        paper_claim=("with global vision or a compass the gathering problem "
                     "is easy (move to the enclosing-square centre / a "
                     "common direction); locality is the hard part"),
        measured=("baselines finish in ~diameter rounds and beat the local "
                  "algorithm on every size; the local algorithm stays linear "
                  "in n (see table)"),
        passed=ok_all,
        table=table,
    )


def _random_open_chain(n: int, rng: random.Random) -> List[tuple]:
    pts = [(0, 0)]
    for _ in range(n - 1):
        x, y = pts[-1]
        dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
        pts.append((x + dx, y + dy))
    return pts


@register("EXP-B2")
def run_manhattan_hopper(quick: bool = False) -> ExperimentResult:
    rng = random.Random(9)
    rows: List[dict] = []
    ok_all = True
    ns = [32, 64, 128] if quick else [32, 64, 128, 256, 512]
    for n in ns:
        pts = _random_open_chain(n, rng)
        ok, rounds, chain = shorten_open_chain(pts)
        ok_all &= ok and chain.is_taut()
        rows.append({"n": n, "rounds": rounds,
                     "final_robots": chain.n,
                     "optimal_robots": chain.optimal_length(),
                     "optimal": chain.n == chain.optimal_length()})
    fit = fit_rounds([r["n"] for r in rows], [r["rounds"] for r in rows])
    ok_all &= fit.r_squared >= 0.9
    table = format_table(rows, title="Manhattan-Hopper open-chain shortening")
    return ExperimentResult(
        experiment_id="EXP-B2",
        title="Manhattan Hopper [KM09] (open chain, fixed endpoints)",
        paper_claim=("the Manhattan Hopper shortens an open chain between "
                     "fixed endpoints to the optimum in O(n) rounds; the "
                     "closed-chain algorithm generalises it to "
                     "indistinguishable robots"),
        measured=f"optimal shortening on all sizes; {fit.describe()}",
        passed=ok_all,
        table=table,
    )
