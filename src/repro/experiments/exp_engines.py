"""EXP-P1 — engineering: reference vs vectorised engine.

Not a paper artifact, but a reproduction-quality requirement: the
NumPy-vectorised merge detector must be behaviourally identical to the
reference scanner (checked trace-by-trace here and property-tested in
the test suite) and measurably faster on large chains (benchmarked in
``benchmarks/bench_engines.py``).
"""

from __future__ import annotations

import random
import time
from typing import List

from repro.core.simulator import Simulator
from repro.chains import random_chain, square_ring
from repro.analysis import format_table
from repro.experiments.harness import ExperimentResult, register


def _identical_traces(pts, rounds: int) -> bool:
    a = Simulator(list(pts), engine="reference", check_invariants=False)
    b = Simulator(list(pts), engine="vectorized", check_invariants=False)
    for _ in range(rounds):
        if a.is_gathered() or b.is_gathered():
            break
        a.step()
        b.step()
        if a.chain.positions != b.chain.positions:
            return False
    return a.chain.positions == b.chain.positions


@register("EXP-P1")
def run(quick: bool = False) -> ExperimentResult:
    rng = random.Random(4)
    cases = [square_ring(20)] + [random_chain(n, rng) for n in (48, 96)]
    if not quick:
        cases += [square_ring(48), random_chain(192, rng)]
    equal = all(_identical_traces(pts, 200) for pts in cases)

    rows: List[dict] = []
    for side in ([40] if quick else [40, 80, 120]):
        pts = square_ring(side)
        t0 = time.perf_counter()
        Simulator(list(pts), engine="reference", check_invariants=False).run()
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        Simulator(list(pts), engine="vectorized", check_invariants=False).run()
        t_vec = time.perf_counter() - t0
        rows.append({"n": 4 * (side - 1), "reference_s": round(t_ref, 3),
                     "vectorized_s": round(t_vec, 3),
                     "speedup": round(t_ref / max(t_vec, 1e-9), 2)})
    table = format_table(rows, title="wall time per full gathering")
    return ExperimentResult(
        experiment_id="EXP-P1",
        title="Engine equivalence and speedup",
        paper_claim="(engineering) the vectorised engine must match the reference",
        measured=(f"traces identical on {len(cases)} chains; speedups: "
                  + ", ".join(f"n={r['n']}: {r['speedup']}x" for r in rows)),
        passed=equal,
        table=table,
    )
