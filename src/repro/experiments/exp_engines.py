"""EXP-P1 — engineering: reference vs vectorised vs kernel engine.

Not a paper artifact, but a reproduction-quality requirement: the
NumPy-vectorised and array-native kernel engines must be behaviourally
identical to the reference engine (checked trace-by-trace here and
property-tested in the test suite) and measurably faster on large
chains (benchmarked in ``benchmarks/bench_engines.py``).
"""

from __future__ import annotations

import random
import time
from typing import List

from repro.core.simulator import ENGINES, Simulator
from repro.chains import random_chain, square_ring
from repro.analysis import format_table
from repro.experiments.harness import ExperimentResult, register

_FAST_ENGINES = tuple(e for e in ENGINES if e != "reference")


def _identical_traces(pts, rounds: int) -> bool:
    sims = [Simulator(list(pts), engine=e, check_invariants=False)
            for e in ENGINES]
    for _ in range(rounds):
        if any(s.is_gathered() for s in sims):
            break
        for s in sims:
            s.step()
        ref = sims[0].chain.positions
        if any(s.chain.positions != ref for s in sims[1:]):
            return False
    ref = sims[0].chain.positions
    return all(s.chain.positions == ref for s in sims[1:])


@register("EXP-P1")
def run(quick: bool = False) -> ExperimentResult:
    rng = random.Random(4)
    cases = [square_ring(20)] + [random_chain(n, rng) for n in (48, 96)]
    if not quick:
        cases += [square_ring(48), random_chain(192, rng)]
    equal = all(_identical_traces(pts, 200) for pts in cases)

    rows: List[dict] = []
    for side in ([40] if quick else [40, 80, 120]):
        pts = square_ring(side)
        timings = {}
        for engine in ENGINES:
            t0 = time.perf_counter()
            Simulator(list(pts), engine=engine, check_invariants=False).run()
            timings[engine] = time.perf_counter() - t0
        rows.append({
            "n": 4 * (side - 1),
            "reference_s": round(timings["reference"], 3),
            "vectorized_s": round(timings["vectorized"], 3),
            "kernel_s": round(timings["kernel"], 3),
            "kernel_speedup": round(
                timings["reference"] / max(timings["kernel"], 1e-9), 2),
        })
    table = format_table(rows, title="wall time per full gathering")
    return ExperimentResult(
        experiment_id="EXP-P1",
        title="Engine equivalence and speedup",
        paper_claim="(engineering) all engine variants must match the reference",
        measured=(f"traces identical on {len(cases)} chains x {len(ENGINES)} "
                  "engines; kernel speedups vs reference: "
                  + ", ".join(f"n={r['n']}: {r['kernel_speedup']}x"
                              for r in rows)),
        passed=equal,
        table=table,
    )
