"""EXP-F1..F16 — every algorithm figure of the paper as an executable scenario.

Each scenario rebuilds the figure's configuration, runs the relevant
mechanism (merge planner, run machinery, or a full simulation) and
checks the outcome the figure depicts.  The scenarios double as the
per-figure rows of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.grid.lattice import EAST, NORTH, SOUTH, WEST
from repro.grid.transforms import DIHEDRAL_GROUP
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS
from repro.core.engine import Engine
from repro.core.merges import plan_merges
from repro.core.patterns import find_merge_patterns, run_start_decisions, is_quasi_line, is_stairway
from repro.core.runs import RunMode, StopReason
from repro.core.simulator import Simulator, gather
from repro.core.view import ChainWindow
from repro.chains import (
    comb, crenellation, fig16_fragment, rectangle_ring, square_ring,
    stairway_octagon, outline,
)
from repro.analysis import format_table
from repro.experiments.harness import ExperimentResult, register

P = DEFAULT_PARAMETERS


# ---------------------------------------------------------------------------
# figure scenarios (each returns (description, expectation, passed))
# ---------------------------------------------------------------------------

def fig1_merge_example():
    """Fig. 1: a width-2 bump hops down; outer blacks merge with the whites."""
    cells = {(x, y) for x in range(13) for y in range(13)}
    cells.add((5, 13))                       # a one-cell tooth on the top side
    ring = outline(cells)
    chain = ClosedChain(ring)
    plan = plan_merges(chain.positions, chain.ids, P.effective_k_max)
    ok = len(plan.patterns) == 1 and plan.patterns[0].k == 2
    sim = Simulator(chain, check_invariants=True, validate_initial=False)
    rep = sim.step()
    pos = sim.chain.positions
    ok &= rep.robots_removed == 2            # exactly the two whites vanish
    ok &= (5, 14) not in pos and (6, 14) not in pos
    ok &= (5, 13) in pos and (6, 13) in pos  # blacks landed on the whites
    return ("one-tooth block: black pair hops down onto the whites",
            "exactly 2 robots removed, blacks land on white positions", ok)


def _with_bump(side: int, bump) -> list:
    """A big square ring with a bottom-side fragment replaced by ``bump``."""
    ring = square_ring(side)
    i = ring.index(bump[0])
    j = ring.index(bump[-1])
    return ring[:i + 1] + list(bump[1:-1]) + ring[j:]


def fig2_merge_lengths():
    """Fig. 2: merge operations for k = 1 and k > 1, all rotations."""
    ok = True
    # k = 1 spike on an otherwise mergeless square ring (spike placed
    # mid-side so the flanking straight segments stay longer than k_max)
    spike_ring = _with_bump(24, [(12, 0), (12, 1), (12, 0)])
    chain = ClosedChain(spike_ring)
    plan = plan_merges(chain.positions, chain.ids, P.effective_k_max)
    ok &= len(plan.patterns) == 1 and plan.patterns[0].k == 1
    spike_black = chain.positions.index((12, 1))
    ok &= plan.hops.get(chain.ids[spike_black]) == SOUTH
    sim = Simulator(chain, check_invariants=True, validate_initial=False)
    rep = sim.step()
    ok &= rep.robots_removed == 2            # k=1: both whites removed

    # k = 3 bump under all 8 symmetries
    base = _with_bump(24, [(11, 0), (11, 1), (12, 1), (13, 1), (13, 0)])
    for t in DIHEDRAL_GROUP:
        ring = [t.apply(p) for p in base]
        chain = ClosedChain(ring)
        plan = plan_merges(chain.positions, chain.ids, P.effective_k_max)
        k3 = [p for p in plan.patterns if p.k == 3]
        ok &= len(plan.patterns) == 1 and len(k3) == 1
        sim = Simulator(chain, check_invariants=True, validate_initial=False)
        rep = sim.step()
        ok &= rep.robots_removed == 2        # outermost blacks merge
    return ("spike and k=3 bump embedded in a mergeless square ring",
            "blacks hop onto whites; exactly 2 robots removed per merge", ok)


def fig3a_overlap_two():
    """Fig. 3a: patterns overlapping by two robots — ends merge, middle swaps."""
    ring = crenellation(teeth=6, tooth_width=1, base_height=13)
    chain = ClosedChain(ring)
    plan = plan_merges(chain.positions, chain.ids, P.effective_k_max)
    # interleaved up/down U-patterns along the crenellated top: robots
    # that are black in one pattern and white in its neighbour still hop
    overlapping = sum(
        1 for rid, d in plan.hops.items()
        if rid in plan.participants and d in (NORTH, SOUTH))
    ok = len(plan.patterns) >= 8 and overlapping >= 8
    top = max(p[1] for p in chain.positions)
    before_top = {p for p in chain.positions if p[1] >= top - 1}
    sim = Simulator(chain, check_invariants=True, validate_initial=False)
    rep = sim.step()
    # the outermost whites absorb merges; interior teeth swap rows only
    ok &= rep.robots_removed == 2
    after_top = {p for p in sim.chain.positions if p[1] >= top - 1}
    ok &= len(after_top) >= len(before_top) - 3
    return ("crenellated block (interleaved overlapping U-patterns)",
            "only the outermost whites merge; interior teeth swap levels", ok)


def fig3b_overlap_three():
    """Fig. 3b: a robot black in two perpendicular patterns hops diagonally."""
    ring = [(0, 0), (0, 1), (1, 1), (1, 0), (0, 0), (0, -1), (-1, -1), (-1, 0)]
    chain = ClosedChain(ring, validate=True)
    plan = plan_merges(chain.positions, chain.ids, P.effective_k_max)
    # robot 2 at (1,1) is black in the horizontal (hop S) and the vertical
    # (hop W) pattern -> diagonal SW hop
    ok = plan.hops.get(2) == (-1, -1)
    ok &= 0 not in plan.hops and 4 not in plan.hops   # a, b are pure whites
    sim = Simulator(chain, check_invariants=True, validate_initial=False)
    sim.step()
    ok &= sim.chain.is_gathered()
    return ("two perpendicular patterns sharing a corner robot r",
            "r hops diagonally; r, a, b coincide; whites removed", ok)


def _manual_run_engine(positions, runner_index, direction):
    """Build an engine with one manually injected run (test rig)."""
    chain = ClosedChain(positions)
    engine = Engine(chain, P, check_invariants=True)
    window = ChainWindow(chain, runner_index, P.viewing_path_length)
    axis = window.edge(0, direction)
    run = engine.registry.start(chain.id_at(runner_index), direction, axis, 0)
    assert run is not None
    return engine, run


def fig6_reshapement_hop():
    """Fig. 6/11a: runner on a straight line hops diagonally, run advances."""
    ring = rectangle_ring(20, 13)            # both sides unmergeable
    # a manual run at the corner (0,0): behind is (0,1) (perpendicular),
    # ahead (1,0)..(3,0) — the operation (a) shape
    engine, run = _manual_run_engine(ring, 0, 1)
    # corner (0,0): behind is (0,1) (perpendicular), ahead (1,0)..(3,0)
    start_pos = engine.chain.position_of_id(run.robot_id)
    carrier = run.robot_id
    engine.step()
    moved_to = engine.chain.position_of_id(carrier)
    ok = moved_to == (1, 1) and run.hops == 1
    ok &= engine.chain.has_id(run.robot_id) and run.robot_id != carrier
    return ("runner at a corner of a straight line",
            "diagonal hop p -> p+d+e, run moves to next robot", ok)


def fig5_run_starts():
    """Fig. 5: run-start shapes (i) at stairway junctions, (ii) at corners."""
    # (ii): the four corners of a large square start two runs each
    chain = ClosedChain(square_ring(16))
    corner_positions = {(0, 0), (15, 0), (15, 15), (0, 15)}
    starts: Dict[int, List[int]] = {}
    for i in range(chain.n):
        w = ChainWindow(chain, i, P.viewing_path_length)
        ds = run_start_decisions(w)
        if ds:
            starts[i] = [d.direction for d in ds]
    fired = {chain.position(i) for i in starts}
    ok = fired == corner_positions
    ok &= all(sorted(v) == [-1, 1] for v in starts.values())
    ok &= all(rs.kind == "ii" for i in starts
              for rs in run_start_decisions(ChainWindow(chain, i, 11)))

    # (i): the octagon junction robots (quasi line meets stairway)
    chain2 = ClosedChain(stairway_octagon(16, steps=3))
    count_i = 0
    for i in range(chain2.n):
        w = ChainWindow(chain2, i, P.viewing_path_length)
        for rs in run_start_decisions(w):
            ok &= rs.kind == "i"
            count_i += 1
    ok &= count_i == 8        # one per quasi-line endpoint, 4 lines x 2 ends
    return ("square corners and octagon stairway junctions",
            "(ii) corners fire two runs; (i) junctions fire one", ok)


def fig7_good_pair_merges():
    """Fig. 7a: a good pair shortens its line until a merge happens."""
    sim = Simulator(square_ring(20), check_invariants=True, record_trace=True)
    first_merge_round = None
    for _ in range(60):
        rep = sim.step()
        if rep.robots_removed:
            first_merge_round = rep.round_index
            break
    ok = first_merge_round is not None and first_merge_round <= 13
    return ("mergeless 20x20 ring (quasi lines of 20 robots)",
            "runs reshape the lines until merges fire within one wave", ok)


def fig8_run_passing():
    """Fig. 8: oncoming non-partner runs pass without reshapement hops."""
    ring = rectangle_ring(40, 13)
    chain = ClosedChain(ring)
    engine = Engine(chain, P, check_invariants=True)
    # two manual runs on the bottom side, 5 robots apart, facing each other
    ida, idb = chain.id_at(10), chain.id_at(15)
    run_a = engine.registry.start(ida, 1, EAST, 0)
    run_b = engine.registry.start(idb, -1, WEST, 0)
    assert run_a and run_b
    passed = set()
    resumed = set()
    hops_during_passing = 0
    for _ in range(8):
        engine.step()
        for run in (run_a, run_b):
            if run.mode is RunMode.PASSING:
                passed.add(run.run_id)
                hops_during_passing += run.hops
            elif run.active and run.run_id in passed:
                resumed.add(run.run_id)   # crossed and back to normal ops
    ok = passed == {run_a.run_id, run_b.run_id} == resumed
    ok &= hops_during_passing == 0
    return ("straight corridor, two oncoming runs 5 apart",
            "both enter passing at distance <= 3, cross hop-less, resume", ok)


def fig9_pipelining():
    """Fig. 9: new runs start every L = 13 rounds; waves yield distinct merges."""
    sim = Simulator(square_ring(40), check_invariants=False, record_trace=True)
    res = sim.run()
    ok = res.gathered
    start_rounds = {r.round_index for r in res.reports if r.runs_started > 0}
    ok &= all(r % P.start_interval == 0 for r in start_rounds)
    ok &= len(start_rounds) >= 3                      # several waves ran
    merge_rounds = [r.round_index for r in res.reports if r.robots_removed > 0]
    ok &= len(merge_rounds) >= 3
    spread = max(merge_rounds) - min(merge_rounds) if merge_rounds else 0
    ok &= spread > P.start_interval                   # distinct waves merged
    return ("40x40 ring over full gathering",
            "waves start only at rounds = 0 mod 13; merges span many waves", ok)


def fig10_quasi_line():
    """Fig. 10/Def. 1: quasi-line recognition."""
    good = [(0, 0), (1, 0), (2, 0), (3, 0), (3, 1), (4, 1), (5, 1), (6, 1),
            (6, 0), (7, 0), (8, 0), (9, 0)]
    ok = is_quasi_line(good, "x")
    bad_short_segment = [(0, 0), (1, 0), (2, 0), (2, 1), (3, 1), (3, 2),
                         (4, 2), (5, 2), (6, 2)]
    ok &= not is_quasi_line(bad_short_segment, "x")    # 2-robot axis segment
    bad_tall_jog = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2), (3, 2), (4, 2), (5, 2)]
    ok &= not is_quasi_line(bad_tall_jog, "x")         # 3-robot perpendicular
    ok &= is_stairway([(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 3)])
    ok &= not is_stairway([(0, 0), (0, 1), (1, 1), (1, 0)])   # U turn
    return ("Def. 1 exemplars and counterexamples",
            "quasi lines and stairways recognised exactly", ok)


def fig11b_travel():
    """Fig. 11b: runner with only 2 aligned ahead travels 3 hop-less moves."""
    # bottom side with a jog: two fat (unmergeable) blocks of different heights
    cells = {(x, y) for x in range(13) for y in range(13)}
    cells |= {(x, y) for x in range(13, 26) for y in range(1, 13)}
    ring = outline(cells)
    chain = ClosedChain(ring)
    idx = chain.positions.index((10, 0))
    direction = 1 if chain.position(idx + 1) == (11, 0) else -1
    engine = Engine(chain, P, check_invariants=True)
    run = engine.registry.start(chain.id_at(idx), direction, EAST, 0)
    assert run is not None
    saw_travel = False
    arrived_at_corner = False
    hops_during_travel = 0
    for _ in range(8):
        engine.step()
        if not run.active:
            break
        if run.mode is RunMode.TRAVEL:
            saw_travel = True
            hops_during_travel += run.hops
        elif saw_travel and chain.has_id(run.robot_id):
            arrived_at_corner = True
            break
    ok = saw_travel and hops_during_travel == 0 and arrived_at_corner
    return ("jogged bottom line, runner approaching the corner",
            "run enters hop-less travel and reaches the far corner", ok)


def fig11c_corner_cut():
    """Fig. 11c: a fresh (ii) corner run performs one diagonal corner-cut."""
    chain = ClosedChain(square_ring(16))
    sim = Simulator(chain, check_invariants=True, record_trace=True,
                    validate_initial=False)
    sim.step()      # wave starts at round 0 (runs created, no action yet)
    corners_before = {(0, 0), (15, 0), (15, 15), (0, 15)}
    sim.step()      # first acting round: corner-cut hops
    pos = set(sim.chain.positions)
    cut_targets = {(1, 1), (14, 1), (14, 14), (1, 14)}
    ok = cut_targets <= pos and not (corners_before & pos)
    return ("square corners after the first acting round",
            "every corner hopped diagonally inward (corner cut)", ok)


def fig12_13_good_pair_on_quasi_line():
    """Fig. 12/13: a good pair over a jogged quasi line still earns a merge."""
    cells = {(x, y) for x in range(12) for y in range(13)}
    cells |= {(x, y) for x in range(12, 24) for y in range(1, 13)}
    ring = outline(cells)
    res = gather(ring, check_invariants=True)
    ok = res.gathered
    return ("two fat blocks of different heights (jogged quasi lines)",
            "gathering completes despite jogs (runs use op b over corners)", ok)


def fig14_passing_keeps_travel_target():
    """Fig. 14: passing during op (b) keeps the already-settled target."""
    cells = {(x, y) for x in range(13) for y in range(13)}
    cells |= {(x, y) for x in range(13, 27) for y in range(1, 13)}
    ring = outline(cells)
    chain = ClosedChain(ring)
    idx = chain.positions.index((10, 0))
    direction = 1 if chain.position(idx + 1) == (11, 0) else -1
    engine = Engine(chain, P, check_invariants=True)
    run_a = engine.registry.start(chain.id_at(idx), direction, EAST, 0)
    # oncoming run ahead on the upper line, moving toward the jog
    j = chain.positions.index((17, 1))
    dir_b = -1 if chain.position(j - 1)[0] < 17 else 1
    run_b = engine.registry.start(chain.id_at(j), dir_b, WEST, 0)
    assert run_a and run_b
    travel_target = None
    kept = True
    for _ in range(10):
        engine.step()
        if run_a.mode is RunMode.TRAVEL and travel_target is None:
            travel_target = run_a.target_id
        if (run_a.mode is RunMode.PASSING and travel_target is not None
                and run_a.target_id != travel_target):
            kept = False
        if not (run_a.active and run_b.active):
            break
    ok = travel_target is not None and kept
    return ("run interrupted by passing while travelling to a corner",
            "the settled travel target remains the passing target", ok)


def fig16_structure():
    """Fig. 16: quasi lines connected by a stairway are recognised."""
    frag = fig16_fragment(line1=5, stair_steps=3, line2=5)
    line1 = frag[:6]
    stair = frag[5:13]
    line2 = frag[-6:]
    ok = is_quasi_line(line1, "x") and is_quasi_line(line2, "x")
    ok &= is_stairway(stair)
    ok &= not find_merge_patterns(
        ClosedChain(stairway_octagon(16, 3)).positions, P.effective_k_max)
    return ("Fig. 16 fragment + mergeless octagon",
            "quasi lines/stairway recognised; octagon has no merge", ok)


_SCENARIOS: List = [
    ("EXP-F1", "Fig. 1 merge example", fig1_merge_example),
    ("EXP-F2", "Fig. 2 merge operations", fig2_merge_lengths),
    ("EXP-F3a", "Fig. 3a overlap by two", fig3a_overlap_two),
    ("EXP-F3b", "Fig. 3b overlap by three", fig3b_overlap_three),
    ("EXP-F5", "Fig. 5 run starts", fig5_run_starts),
    ("EXP-F6", "Fig. 6/11a reshapement hop", fig6_reshapement_hop),
    ("EXP-F7", "Fig. 7 good pair", fig7_good_pair_merges),
    ("EXP-F8", "Fig. 8 run passing", fig8_run_passing),
    ("EXP-F9", "Fig. 9 pipelining", fig9_pipelining),
    ("EXP-F10", "Fig. 10 quasi lines", fig10_quasi_line),
    ("EXP-F11b", "Fig. 11b travel", fig11b_travel),
    ("EXP-F11c", "Fig. 11c corner cut", fig11c_corner_cut),
    ("EXP-F12", "Fig. 12/13 good pair on quasi line", fig12_13_good_pair_on_quasi_line),
    ("EXP-F14", "Fig. 14 passing during op b", fig14_passing_keeps_travel_target),
    ("EXP-F16", "Fig. 16 stairway structure", fig16_structure),
]


@register("EXP-FIG")
def run(quick: bool = False) -> ExperimentResult:
    rows = []
    all_ok = True
    for fid, title, fn in _SCENARIOS:
        desc, expect, ok = fn()
        all_ok &= bool(ok)
        rows.append({"figure": fid, "scenario": desc,
                     "expected": expect, "status": "PASS" if ok else "FAIL"})
    table = format_table(rows, columns=["figure", "status", "scenario", "expected"],
                         title="per-figure scenario results")
    n_pass = sum(1 for r in rows if r["status"] == "PASS")
    return ExperimentResult(
        experiment_id="EXP-FIG",
        title="Figures 1-16 (algorithm mechanics)",
        paper_claim="each figure depicts a local operation of the algorithm",
        measured=f"{n_pass}/{len(rows)} figure scenarios reproduce the depicted behaviour",
        passed=all_ok,
        table=table,
    )


def scenario_functions():
    """Expose the scenario list for the unit tests."""
    return list(_SCENARIOS)
