"""EXP-F17/18 and EXP-L1..L3 — the paper's lemmas, checked empirically.

* Lemma 1 (via the Fig. 17/18 construction): a mergeless chain always
  exposes at least one good pair; and over whole traces, every L-round
  window contains a merge or a fresh run wave.
* Lemma 2: progress pairs enable merges — merge-free stretches stay
  bounded, so the per-interval accounting of Theorem 1 holds.
* Lemma 3: run invariants — speed one (checked structurally every round
  by the engine), bounded run count per robot, and run states living
  only on quasi-line interiors.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS
from repro.core.patterns import find_merge_patterns
from repro.core.simulator import Simulator
from repro.chains import (
    rectangle_ring, square_ring, staircase_ring, stairway_octagon,
)
from repro.analysis import (
    classify_pairs, format_table, lemma1_windows, merge_free_intervals,
)
from repro.analysis.good_pairs import good_pair_exists
from repro.experiments.harness import ExperimentResult, register

P = DEFAULT_PARAMETERS


def _mergeless_zoo(quick: bool) -> List[tuple]:
    zoo = [
        ("square 16", square_ring(16)),
        ("square 24", square_ring(24)),
        ("rect 40x13", rectangle_ring(40, 13)),
        ("octagon 12", stairway_octagon(12, 2)),
        ("octagon 16", stairway_octagon(16, 3)),
    ]
    if not quick:
        zoo += [
            ("square 48", square_ring(48)),
            ("rect 64x20", rectangle_ring(64, 20)),
            ("octagon 24", stairway_octagon(24, 4)),
            ("staircase 2", staircase_ring(2)),
            ("staircase 3", staircase_ring(3)),
        ]
    return zoo


@register("EXP-L1")
def run_lemma1(quick: bool = False) -> ExperimentResult:
    rows = []
    all_ok = True
    for name, pts in _mergeless_zoo(quick):
        chain = ClosedChain(pts)
        mergeless = not find_merge_patterns(chain.positions, P.effective_k_max)
        pairs = classify_pairs(chain, P)
        has_good = good_pair_exists(chain, P)
        ok = mergeless and has_good
        all_ok &= ok
        rows.append({"chain": name, "n": chain.n,
                     "mergeless": mergeless,
                     "pairs": len(pairs),
                     "good_pairs": sum(1 for p in pairs if p.good),
                     "status": "PASS" if ok else "FAIL"})
    # trace-level check: every L-window has a merge or a new wave
    sim = Simulator(square_ring(32), check_invariants=False, record_trace=True)
    res = sim.run()
    windows = lemma1_windows(res.reports, P.start_interval)
    trace_ok = res.gathered and windows["windows_with_neither"] == 0
    all_ok &= trace_ok
    table = format_table(rows, title="good pairs on mergeless chains (Fig. 17/18)")
    return ExperimentResult(
        experiment_id="EXP-L1",
        title="Lemma 1 / Fig. 17-18 (good pairs always exist)",
        paper_claim=("every L = 13 rounds either a merge happens or a new "
                     "progress pair starts; mergeless chains always contain "
                     "a good pair"),
        measured=(f"{sum(1 for r in rows if r['status'] == 'PASS')}/{len(rows)} "
                  f"mergeless chains expose a good pair; full-trace windows: "
                  f"{windows}"),
        passed=all_ok,
        table=table,
    )


@register("EXP-L2")
def run_lemma2(quick: bool = False) -> ExperimentResult:
    cases = [square_ring(24), stairway_octagon(16, 3), rectangle_ring(48, 13)]
    if not quick:
        cases += [square_ring(48), stairway_octagon(24, 4)]
    rows = []
    all_ok = True
    for pts in cases:
        sim = Simulator(pts, check_invariants=False, record_trace=True)
        res = sim.run()
        gaps = merge_free_intervals(res.reports)
        # Lemma 2: each progress pair needs at most n rounds to earn its
        # merge, so merge-free stretches are bounded by ~n + L.
        bound = res.initial_n + 2 * P.start_interval
        longest = max(gaps) if gaps else 0
        ok = res.gathered and longest <= bound
        all_ok &= ok
        rows.append({"n": res.initial_n, "rounds": res.rounds,
                     "merge_rounds": sum(1 for r in res.reports if r.robots_removed),
                     "longest_gap": longest, "bound": bound,
                     "status": "PASS" if ok else "FAIL"})
    table = format_table(rows, title="merge-free stretches vs the Lemma-2 bound")
    return ExperimentResult(
        experiment_id="EXP-L2",
        title="Lemma 2 (progress pairs enable distinct merges)",
        paper_claim=("every progress pair enables a merge within n rounds; "
                     "different progress pairs enable different merges"),
        measured=(f"longest merge-free stretch stayed within n + 2L on "
                  f"{sum(1 for r in rows if r['status'] == 'PASS')}/{len(rows)} chains"),
        passed=all_ok,
        table=table,
    )


@register("EXP-L3")
def run_lemma3(quick: bool = False) -> ExperimentResult:
    # Speed-1 movement and the 2-runs-per-robot bound are enforced by the
    # engine's invariant checker on every round; run a mergeless case with
    # checking enabled and additionally audit the trace for run residency.
    sim = Simulator(stairway_octagon(16, 3), check_invariants=True,
                    record_trace=True)
    res = sim.run()
    ok = res.gathered
    max_runs_per_robot = 0
    speed_violations = 0
    prev = {}
    for snap in (res.trace.snapshots if res.trace else []):
        per_robot = {}
        for r in snap.runs:
            per_robot[r.robot_id] = per_robot.get(r.robot_id, 0) + 1
        if per_robot:
            max_runs_per_robot = max(max_runs_per_robot, max(per_robot.values()))
        ids = set(snap.ids)
        for r in snap.runs:
            if r.run_id in prev and prev[r.run_id] == r.robot_id and r.robot_id in ids:
                speed_violations += 1        # a surviving run failed to move
        prev = {r.run_id: r.robot_id for r in snap.runs}
    ok &= max_runs_per_robot <= 2 and speed_violations == 0
    return ExperimentResult(
        experiment_id="EXP-L3",
        title="Lemma 3 (run invariants)",
        paper_claim=("every run moves one robot per round; robots store at "
                     "most two runs; reshapements preserve quasi lines"),
        measured=(f"gathered with invariant checking on; max runs/robot = "
                  f"{max_runs_per_robot}; stationary-run violations = "
                  f"{speed_violations}"),
        passed=ok,
        details=["connectivity, hop length, run residency and speed are "
                 "checked by repro.core.invariants on every round of every "
                 "invariant-enabled simulation"],
    )
