"""EXP-S1 — the FSYNC assumption is load-bearing.

The paper states its algorithm for the fully synchronous FSYNC model.
This ablation runs the identical per-robot rules under SSYNC-style
partial activation and measures rounds-until-connectivity-break: merge
safety requires all blacks of a pattern to hop in the same instant, so
any scheduler that can split a pattern disconnects the chain almost
immediately — evidence that FSYNC is a necessary model assumption, not
a convenience.
"""

from __future__ import annotations

from typing import List

from repro.chains import crenellation, needle, square_ring
from repro.schedulers import (
    AlternatingActivation,
    FullActivation,
    RandomActivation,
    SplitPatternAdversary,
    run_ssync,
)
from repro.analysis import format_table
from repro.experiments.harness import ExperimentResult, register


@register("EXP-S1")
def run(quick: bool = False) -> ExperimentResult:
    chains = [("needle", needle(30)), ("crenellation", crenellation(6))]
    if not quick:
        chains.append(("square", square_ring(16)))
    policies = [
        ("FSYNC (full)", lambda: FullActivation()),
        ("random p=0.9", lambda: RandomActivation(0.9, seed=1)),
        ("random p=0.5", lambda: RandomActivation(0.5, seed=1)),
        ("alternating", lambda: AlternatingActivation()),
        ("adversary", lambda: SplitPatternAdversary()),
    ]
    rows: List[dict] = []
    ok = True
    for cname, pts in chains:
        for pname, mk in policies:
            out = run_ssync(list(pts), mk(), max_rounds=600)
            rows.append({"chain": cname, "policy": pname,
                         "gathered": out.gathered, "broke": out.broke,
                         "rounds": out.rounds})
            if pname.startswith("FSYNC"):
                ok &= out.gathered and not out.broke
            else:
                ok &= out.broke          # partial activation must break
    table = format_table(rows, title="SSYNC ablation: survival by policy")
    return ExperimentResult(
        experiment_id="EXP-S1",
        title="FSYNC necessity (SSYNC ablation)",
        paper_claim=("the algorithm is stated for FSYNC; simultaneous "
                     "movement of all pattern blacks is what keeps merges "
                     "connectivity-safe"),
        measured=("full activation gathers every chain; every partial "
                  "activation policy breaks chain connectivity within a "
                  "few rounds (see table)"),
        passed=ok,
        table=table,
    )
