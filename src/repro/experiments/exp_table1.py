"""EXP-TBL1 — Table 1: each run-termination condition fires as specified.

One staged scenario per condition.  Conditions 1-3 are produced purely
by the dynamics; conditions 4 and 5 (target corner removed by a merge
elsewhere) are staged by removing the target robot between rounds —
the same effect a concurrent merge has, without needing a fragile
multi-run choreography (their natural occurrence is additionally
counted over a batch of random gatherings).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.grid.lattice import EAST, WEST
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS
from repro.core.engine import Engine
from repro.core.runs import RunMode, StopReason
from repro.core.simulator import Simulator
from repro.chains import outline, random_chain, rectangle_ring, square_ring
from repro.analysis import format_table
from repro.experiments.harness import ExperimentResult, register, sweep_gather

P = DEFAULT_PARAMETERS


def cond1_sequent_run() -> bool:
    """A rear run terminates when it sees a same-direction run ahead."""
    ring = rectangle_ring(40, 13)
    chain = ClosedChain(ring)
    engine = Engine(chain, P, check_invariants=True)
    front = engine.registry.start(chain.id_at(20), 1, EAST, 0)
    rear = engine.registry.start(chain.id_at(14), 1, EAST, 0)
    assert front and rear
    engine.step()
    return (rear.stop_reason is StopReason.SEQUENT_RUN_AHEAD
            and front.active)


def cond2_endpoint() -> bool:
    """A lone run terminates when the quasi-line endpoint becomes visible."""
    ring = rectangle_ring(40, 13)
    chain = ClosedChain(ring)
    engine = Engine(chain, P, check_invariants=True)
    run = engine.registry.start(chain.id_at(20), 1, EAST, 0)
    assert run is not None
    for _ in range(20):
        engine.step()
        if not run.active:
            break
    return run.stop_reason is StopReason.ENDPOINT_VISIBLE


def cond3_merge_participation() -> bool:
    """A run dissolves when its carrier takes part in a merge."""
    ring = square_ring(24)
    bump = [(11, 0), (11, 1), (12, 1), (13, 1), (13, 0)]
    i = ring.index(bump[0])
    j = ring.index(bump[-1])
    ring = ring[:i + 1] + bump[1:-1] + ring[j:]
    chain = ClosedChain(ring)
    engine = Engine(chain, P, check_invariants=True)
    carrier = chain.positions.index((12, 1))      # a black of the k=3 bump
    run = engine.registry.start(chain.id_at(carrier), 1, EAST, 0)
    assert run is not None
    engine.step()
    return run.stop_reason is StopReason.MERGE_PARTICIPATION


def _reason_occurs(pts, reason: StopReason, max_rounds: int = 4000) -> bool:
    """Run a configuration to completion and look for a stop reason.

    Used for conditions 4 and 5, which arise from the interplay of
    passing/travelling runs with merges elsewhere — exactly the
    situations the paper describes in §3.4.  The chains below are
    deterministic constructions on which the condition reliably fires.
    """
    sim = Simulator(pts, check_invariants=True)
    res = sim.run(max_rounds=max_rounds)
    hits = sum(rep.runs_terminated.get(reason, 0) for rep in res.reports)
    return res.gathered and hits > 0


def cond4_passing_target_removed() -> bool:
    """Fig. 8 interruption: a merge removes the passing target corner.

    On the thick L outline, good-pair merges around the inner corner
    remove corners that concurrent passing runs have targeted.
    """
    from repro.chains import l_shape
    return _reason_occurs(l_shape(30, 30, 13),
                          StopReason.PASSING_TARGET_REMOVED)


def cond5_travel_target_removed() -> bool:
    """Fig. 11b interruption: a merge removes the travel target corner.

    Uses a pinned witness configuration (found by sweeping random
    polyomino outlines and stored under ``experiments/data/``) on which
    a jog corner reliably merges away mid-travel.
    """
    import json
    import os
    path = os.path.join(os.path.dirname(__file__), "data",
                        "cond5_witness.json")
    with open(path, "r", encoding="utf-8") as fh:
        pts = [tuple(p) for p in json.load(fh)["positions"]]
    return _reason_occurs(pts, StopReason.TRAVEL_TARGET_REMOVED)


def natural_occurrences(quick: bool) -> Dict[str, int]:
    """Count every stop reason over a batch of random gatherings."""
    rng = random.Random(1)
    chains = [random_chain(rng.choice([48, 96, 160]), rng)
              for _ in range(6 if quick else 24)]
    # kernel engine + fleet backend: bit-identical reports to the
    # reference engine (property-tested), at sweep throughput
    batch = sweep_gather(chains)
    counts: Dict[str, int] = {}
    for res in batch:
        for rep in res.reports:
            for reason, k in rep.runs_terminated.items():
                counts[reason.name] = counts.get(reason.name, 0) + k
    return counts


_CONDITIONS = [
    ("1 sequent run ahead", cond1_sequent_run),
    ("2 endpoint visible", cond2_endpoint),
    ("3 merge participation", cond3_merge_participation),
    ("4 passing target removed", cond4_passing_target_removed),
    ("5 travel target removed", cond5_travel_target_removed),
]


@register("EXP-TBL1")
def run(quick: bool = False) -> ExperimentResult:
    rows = []
    all_ok = True
    for name, fn in _CONDITIONS:
        ok = bool(fn())
        all_ok &= ok
        rows.append({"condition": name, "status": "PASS" if ok else "FAIL"})
    nat = natural_occurrences(quick)
    table = format_table(rows, title="Table 1 termination conditions")
    return ExperimentResult(
        experiment_id="EXP-TBL1",
        title="Table 1 (run termination conditions)",
        paper_claim="a run terminates exactly under conditions 1-5 of Table 1",
        measured=(f"{sum(1 for r in rows if r['status'] == 'PASS')}/5 staged "
                  f"conditions fire; natural occurrences over random chains: {nat}"),
        passed=all_ok,
        table=table,
    )


def condition_functions():
    """Expose the staged conditions for the unit tests."""
    return list(_CONDITIONS)
