"""EXP-T1 — Theorem 1: gathering takes O(n) rounds (and Ω(n) is forced).

Measures round counts over growing chains from several families, fits
``rounds ≈ slope·n + c`` and verifies (a) the fit is strongly linear,
(b) the slope stays far below the theorem's worst-case constant
``2·L + 1 = 27``, and (c) the diameter lower bound holds on every run.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.chain import ClosedChain
from repro.core.simulator import gather
from repro.grid.lattice import bounding_box
from repro.chains import (
    needle, square_ring, stairway_octagon, comb, spiral, random_chain,
)
from repro.analysis import fit_rounds, format_table
from repro.experiments.harness import ExperimentResult, register

import random


def _family_runs(quick: bool) -> List[Dict[str, object]]:
    rng = random.Random(20160523)     # IPDPS'16 vintage seed
    sizes = [16, 32, 64, 128] if quick else [16, 32, 64, 128, 256, 512]
    rows: List[Dict[str, object]] = []

    def record(family: str, pts) -> None:
        diameter = bounding_box(pts).diameter
        res = gather(pts, engine="vectorized")
        rows.append({
            "family": family,
            "n": res.initial_n,
            "rounds": res.rounds,
            "rounds_per_n": res.rounds_per_robot,
            "diameter": diameter,
            "gathered": res.gathered,
        })

    for n in sizes:
        record("needle", needle(n // 2))
        record("square", square_ring(n // 4 + 1))
        record("octagon", stairway_octagon(max(3, n // 8), steps=2))
        record("random", random_chain(n, rng))
    for teeth in ([2, 4, 8] if quick else [2, 4, 8, 16, 32]):
        record("comb", comb(teeth, tooth_height=6))
    for w in ([1, 2] if quick else [1, 2, 3, 4]):
        record("spiral", spiral(w))
    return rows


@register("EXP-T1")
def run(quick: bool = False) -> ExperimentResult:
    rows = _family_runs(quick)
    all_gathered = all(r["gathered"] for r in rows)
    lower_bound_ok = True
    for r in rows:
        # any strategy needs at least ~diameter/2 rounds to shrink the
        # bounding box to 2x2 (one cell of box shrink per side per round)
        if r["rounds"] < (r["diameter"] - 1) // 2 - 1:
            lower_bound_ok = False

    fits = {}
    families = sorted({r["family"] for r in rows})
    for fam in families:
        pts = [(r["n"], r["rounds"]) for r in rows if r["family"] == fam]
        if len(pts) >= 3:
            fits[fam] = fit_rounds([p[0] for p in pts], [p[1] for p in pts])

    slope_cap = 2 * 13 + 1
    slopes_ok = all(f.slope <= slope_cap for f in fits.values())
    linear_ok = all(f.r_squared >= 0.95 for f in fits.values()
                    if f.slope > 0.05)   # flat families trivially pass

    table = format_table(rows, columns=["family", "n", "rounds",
                                        "rounds_per_n", "diameter", "gathered"],
                         title="rounds vs n per family")
    fit_lines = [f"{fam}: {fit.describe()}" for fam, fit in sorted(fits.items())]
    worst = max(fits.values(), key=lambda f: f.slope)

    passed = all_gathered and slopes_ok and linear_ok and lower_bound_ok
    return ExperimentResult(
        experiment_id="EXP-T1",
        title="Theorem 1 (linear-time gathering)",
        paper_claim=("every closed chain of n robots gathers into a 2x2 square "
                     "within O(n) rounds; bound 2Ln + n with L = 13; "
                     "diameter forces Omega(n)"),
        measured=(f"all {len(rows)} runs gathered; worst family slope "
                  f"{worst.slope:.2f} rounds/robot (theorem cap {slope_cap}); "
                  f"linear fits R^2 >= 0.95"),
        passed=passed,
        table=table,
        details=fit_lines,
    )
