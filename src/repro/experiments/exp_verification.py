"""EXP-V1 — exhaustive verification of Theorem 1 for small n.

For small chain lengths the configuration space is finite; this
experiment enumerates *every* closed chain up to symmetry (translation,
the dihedral group, cyclic relabelling and traversal reversal) and
gathers each one — a model-checking-style complement to the randomized
property tests.  The sweep is what exposed the degenerate oscillators
that motivated the short-pattern priority rule (DESIGN.md §2.2 [D]).
"""

from __future__ import annotations

from typing import List

from repro.verification import verify_all
from repro.analysis import format_table
from repro.experiments.harness import ExperimentResult, register


@register("EXP-V1")
def run(quick: bool = False) -> ExperimentResult:
    sizes = [4, 6, 8, 10] if quick else [4, 6, 8, 10, 12]
    rows: List[dict] = []
    all_ok = True
    for n in sizes:
        rep = verify_all(n, engine="vectorized")
        ok = rep.complete
        all_ok &= ok
        rows.append({"n": n, "configurations": rep.total,
                     "gathered": rep.gathered,
                     "max_rounds": rep.max_rounds,
                     "status": "PASS" if ok else "FAIL"})
    table = format_table(rows, title="exhaustive sweep (one representative "
                                     "per symmetry class)")
    total = sum(r["configurations"] for r in rows)
    return ExperimentResult(
        experiment_id="EXP-V1",
        title="Exhaustive small-n verification of Theorem 1",
        paper_claim=("gathering succeeds from *every* initial closed chain "
                     "(Theorem 1 is universally quantified)"),
        measured=(f"all {total} distinct configurations with n <= {sizes[-1]} "
                  f"gather; worst case {max(r['max_rounds'] for r in rows)} "
                  f"rounds"),
        passed=all_ok,
        table=table,
        details=["offline sweep: all 53 709 classes of n = 14 gather "
                 "(max 3 rounds; ~4 min, not run in the report)",
                 "this sweep discovered the degenerate period-2 "
                 "oscillators fixed by the short-pattern priority rule "
                 "(DESIGN.md §2.2 [D])"],
    )
