"""Experiment harness: shared result type, registry, report generation.

Every paper artifact (theorem, lemma, table, figure) has an experiment
module exposing ``run(quick=False) -> ExperimentResult``.  The registry
maps experiment ids (DESIGN.md §4) to these runners;
:func:`run_experiments` executes a selection and
:func:`format_markdown_report` renders the EXPERIMENTS.md content.

Sweep-style experiments (Table 1 statistics, ablation grids, baseline
comparisons) route their fleets through :func:`sweep_gather`, the
harness front-end to :class:`repro.core.batch.BatchSimulator`: one
place controls the engine and the process-pool width (set globally by
the CLI's ``--workers``, see DESIGN.md §3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    measured: str
    passed: bool
    table: str = ""                  # optional plain-text data table
    details: List[str] = field(default_factory=list)
    wall_time: float = 0.0

    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"


#: Global registry: experiment id -> runner.
_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}

#: Process-pool width used by :func:`sweep_gather` (None = in-process).
_DEFAULT_WORKERS: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the fleet width for experiment sweeps (CLI ``--workers``)."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = workers


def default_workers() -> Optional[int]:
    """Current process-pool width for experiment sweeps."""
    return _DEFAULT_WORKERS


def sweep_gather(chains: Sequence, *,
                 params=None,
                 engine: str = "kernel",
                 check_invariants: bool = False,
                 keep_reports: bool = True,
                 max_rounds: Optional[int] = None,
                 workers: Optional[int] = None,
                 backend: str = "auto"):
    """Gather a fleet of chains for an experiment sweep.

    Thin wrapper over :func:`repro.core.batch.gather_batch` that applies
    the harness-wide worker default; returns a
    :class:`~repro.core.batch.BatchResult` (results in input order).
    With the defaults (kernel engine, ``backend="auto"``) sweeps run on
    the shared-array fleet backend — the Table 1 statistics and the
    ablation grids are exactly the many-small-chains workload it
    amortises (DESIGN.md §2.10).
    """
    from repro.core.batch import gather_batch
    from repro.core.config import DEFAULT_PARAMETERS
    return gather_batch(chains,
                        params=params if params is not None else DEFAULT_PARAMETERS,
                        engine=engine,
                        check_invariants=check_invariants,
                        keep_reports=keep_reports,
                        max_rounds=max_rounds,
                        workers=workers if workers is not None else _DEFAULT_WORKERS,
                        backend=backend)


def register(experiment_id: str):
    """Decorator adding a runner to the registry."""

    def deco(fn: Callable[..., ExperimentResult]):
        _REGISTRY[experiment_id] = fn
        return fn

    return deco


def registered_ids() -> List[str]:
    """All experiment ids in registration order."""
    return list(_REGISTRY)


def run_experiments(ids: Optional[Sequence[str]] = None,
                    quick: bool = False,
                    verbose: bool = False,
                    workers: Optional[int] = None) -> List[ExperimentResult]:
    """Run a selection of experiments (default: all registered).

    ``workers`` sets the process-pool width used by sweep-style
    experiments for the duration of the call (the previous default is
    restored afterwards).
    """
    previous_workers = default_workers()
    if workers is not None:
        set_default_workers(workers)
    try:
        return _run_experiments(ids, quick, verbose)
    finally:
        set_default_workers(previous_workers)


def _run_experiments(ids: Optional[Sequence[str]],
                     quick: bool, verbose: bool) -> List[ExperimentResult]:
    # importing the experiment modules populates the registry
    from repro.experiments import (  # noqa: F401
        exp_theorem1, exp_figures, exp_lemmas, exp_table1,
        exp_ablations, exp_baselines, exp_engines, exp_verification,
        exp_ssync)

    chosen = list(ids) if ids else registered_ids()
    results: List[ExperimentResult] = []
    for eid in chosen:
        if eid not in _REGISTRY:
            raise KeyError(f"unknown experiment id {eid!r}; "
                           f"known: {registered_ids()}")
        t0 = time.perf_counter()
        res = _REGISTRY[eid](quick=quick)
        res.wall_time = time.perf_counter() - t0
        results.append(res)
        if verbose:
            print(f"[{res.status()}] {eid}: {res.title} ({res.wall_time:.1f}s)")
    return results


def format_markdown_report(results: Sequence[ExperimentResult],
                           header: str = "") -> str:
    """Render experiment results as the EXPERIMENTS.md body."""
    lines: List[str] = []
    if header:
        lines.append(header.rstrip())
        lines.append("")
    lines.append("| id | artifact | status | paper claim | measured |")
    lines.append("|---|---|---|---|---|")
    for r in results:
        lines.append(f"| {r.experiment_id} | {r.title} | {r.status()} | "
                     f"{r.paper_claim} | {r.measured} |")
    lines.append("")
    for r in results:
        lines.append(f"## {r.experiment_id} — {r.title}")
        lines.append("")
        lines.append(f"**Paper claim.** {r.paper_claim}")
        lines.append("")
        lines.append(f"**Measured.** {r.measured}")
        lines.append("")
        if r.details:
            for d in r.details:
                lines.append(f"- {d}")
            lines.append("")
        if r.table:
            lines.append("```")
            lines.append(r.table.rstrip())
            lines.append("```")
            lines.append("")
    return "\n".join(lines)
