"""Experiment harness: shared result type, registry, report generation.

Every paper artifact (theorem, lemma, table, figure) has an experiment
module exposing ``run(quick=False) -> ExperimentResult``.  The registry
maps experiment ids (DESIGN.md §4) to these runners;
:func:`run_experiments` executes a selection and
:func:`format_markdown_report` renders the EXPERIMENTS.md content.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence


@dataclass
class ExperimentResult:
    """Outcome of one reproduction experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    measured: str
    passed: bool
    table: str = ""                  # optional plain-text data table
    details: List[str] = field(default_factory=list)
    wall_time: float = 0.0

    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"


#: Global registry: experiment id -> runner.
_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator adding a runner to the registry."""

    def deco(fn: Callable[..., ExperimentResult]):
        _REGISTRY[experiment_id] = fn
        return fn

    return deco


def registered_ids() -> List[str]:
    """All experiment ids in registration order."""
    return list(_REGISTRY)


def run_experiments(ids: Optional[Sequence[str]] = None,
                    quick: bool = False,
                    verbose: bool = False) -> List[ExperimentResult]:
    """Run a selection of experiments (default: all registered)."""
    # importing the experiment modules populates the registry
    from repro.experiments import (  # noqa: F401
        exp_theorem1, exp_figures, exp_lemmas, exp_table1,
        exp_ablations, exp_baselines, exp_engines, exp_verification,
        exp_ssync)

    chosen = list(ids) if ids else registered_ids()
    results: List[ExperimentResult] = []
    for eid in chosen:
        if eid not in _REGISTRY:
            raise KeyError(f"unknown experiment id {eid!r}; "
                           f"known: {registered_ids()}")
        t0 = time.perf_counter()
        res = _REGISTRY[eid](quick=quick)
        res.wall_time = time.perf_counter() - t0
        results.append(res)
        if verbose:
            print(f"[{res.status()}] {eid}: {res.title} ({res.wall_time:.1f}s)")
    return results


def format_markdown_report(results: Sequence[ExperimentResult],
                           header: str = "") -> str:
    """Render experiment results as the EXPERIMENTS.md body."""
    lines: List[str] = []
    if header:
        lines.append(header.rstrip())
        lines.append("")
    lines.append("| id | artifact | status | paper claim | measured |")
    lines.append("|---|---|---|---|---|")
    for r in results:
        lines.append(f"| {r.experiment_id} | {r.title} | {r.status()} | "
                     f"{r.paper_claim} | {r.measured} |")
    lines.append("")
    for r in results:
        lines.append(f"## {r.experiment_id} — {r.title}")
        lines.append("")
        lines.append(f"**Paper claim.** {r.paper_claim}")
        lines.append("")
        lines.append(f"**Measured.** {r.measured}")
        lines.append("")
        if r.details:
            for d in r.details:
                lines.append(f"- {d}")
            lines.append("")
        if r.table:
            lines.append("```")
            lines.append(r.table.rstrip())
            lines.append("```")
            lines.append("")
    return "\n".join(lines)
