"""Regenerate the pinned Table 1.5 witness configuration.

``exp_table1.cond5_travel_target_removed`` needs a configuration on
which a merge removes a travel target corner mid-travel
(``StopReason.TRAVEL_TARGET_REMOVED``) during a successful gathering
under default parameters with invariant checking on.  Such
configurations arise from the interplay of travelling runs with merges
elsewhere and are not easy to stage by hand, so the fixture is found by
a deterministic sweep over random polyomino outlines and pinned under
``experiments/data/cond5_witness.json``.

Regenerate (e.g. after a semantic change to the run mechanics) with::

    PYTHONPATH=src python -m repro.experiments.regen_cond5_witness

The sweep is fully deterministic — seeds are tried in a fixed order and
the first witness wins — so the committed fixture is reproducible.
"""

from __future__ import annotations

import json
import os
import random
from typing import List, Optional, Tuple

from repro.core.runs import StopReason
from repro.core.simulator import Simulator
from repro.chains import outline, random_polyomino

#: Sweep order: (polyomino cells, elongation) shapes per seed.
_SHAPES: Tuple[Tuple[int, float], ...] = ((40, 0.0), (40, 0.5), (60, 0.3), (80, 0.0))

_DATA_PATH = os.path.join(os.path.dirname(__file__), "data",
                          "cond5_witness.json")


def _witness_hits(pts: List[tuple]) -> Tuple[bool, int]:
    """Gather ``pts`` and count TRAVEL_TARGET_REMOVED terminations."""
    sim = Simulator(list(pts), check_invariants=True)
    res = sim.run(max_rounds=4000)
    hits = sum(rep.runs_terminated.get(StopReason.TRAVEL_TARGET_REMOVED, 0)
               for rep in res.reports)
    return res.gathered, hits


def find_witness(max_seeds: int = 400) -> Optional[dict]:
    """First deterministic witness configuration, with its provenance."""
    for seed in range(max_seeds):
        for cells, elongation in _SHAPES:
            pts = outline(random_polyomino(cells, random.Random(seed),
                                           elongation=elongation))
            gathered, hits = _witness_hits(pts)
            if gathered and hits > 0:
                return {
                    "positions": [list(p) for p in pts],
                    "provenance": {
                        "generator": "outline(random_polyomino(cells, "
                                     "Random(seed), elongation))",
                        "seed": seed,
                        "cells": cells,
                        "elongation": elongation,
                        "travel_target_removed_hits": hits,
                    },
                }
    return None


def main() -> int:
    witness = find_witness()
    if witness is None:
        print("no witness found in the sweep range")
        return 1
    os.makedirs(os.path.dirname(_DATA_PATH), exist_ok=True)
    with open(_DATA_PATH, "w", encoding="utf-8") as fh:
        json.dump(witness, fh, indent=1)
        fh.write("\n")
    prov = witness["provenance"]
    print(f"wrote {_DATA_PATH}: n={len(witness['positions'])} "
          f"(seed={prov['seed']}, cells={prov['cells']}, "
          f"elongation={prov['elongation']}, hits={prov['travel_target_removed_hits']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
