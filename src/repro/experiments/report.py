"""Regenerate EXPERIMENTS.md from a full experiment run.

Usage::

    python -m repro.experiments.report            # full run to stdout
    python -m repro.experiments.report --quick    # reduced sizes
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.harness import format_markdown_report, run_experiments

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of *Gathering a Closed Chain of Robots on a Grid*
(Abshoff, Cord-Landwehr, Fischer, Jung, Meyer auf der Heide, IPDPS 2016).

The paper is a theory paper: its evaluation artifacts are Theorem 1
(O(n)-round gathering), Lemmas 1-3, Table 1 (run termination
conditions) and Figures 1-18 (the algorithm's local operations).  Each
row below is produced by an executable experiment in
`src/repro/experiments/` (see DESIGN.md §4 for the index); regenerate
this file with `python -m repro.experiments.report > EXPERIMENTS.md`.

Absolute round counts depend on our pinned-down operational semantics
(DESIGN.md §2) — the paper gives no measured numbers — so the claims
checked are the paper's *shape* claims: who gathers, in how many rounds
asymptotically, which local operations fire, and which bounds hold.
"""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes (CI-friendly)")
    parser.add_argument("--ids", nargs="*", default=None,
                        help="subset of experiment ids to run")
    args = parser.parse_args(argv)
    results = run_experiments(ids=args.ids, quick=args.quick, verbose=False)
    sys.stdout.write(format_markdown_report(results, header=HEADER))
    sys.stdout.write("\n")
    return 0 if all(r.passed for r in results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
