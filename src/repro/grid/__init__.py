"""Grid substrate: integer lattice geometry for the robot chain model.

The paper's robots live on :math:`\\mathbb{Z}^2` and hop to one of the
eight surrounding cells.  This package provides the vector algebra,
direction sets, bounding boxes and the dihedral symmetry group used by
the pattern matchers (the paper's figures are "to be understood in a
mirrored or rotated manner").
"""

from repro.grid.lattice import (
    ZERO,
    NORTH,
    SOUTH,
    EAST,
    WEST,
    AXIS_DIRECTIONS,
    DIAGONAL_DIRECTIONS,
    ALL_DIRECTIONS,
    add,
    sub,
    neg,
    manhattan,
    chebyshev,
    is_axis_unit,
    is_unit_move,
    perpendicular,
    are_perpendicular,
    are_opposite,
    BoundingBox,
    bounding_box,
)
from repro.grid.transforms import (
    IDENTITY,
    DIHEDRAL_GROUP,
    Transform,
    rotations,
    reflections,
)

__all__ = [
    "ZERO",
    "NORTH",
    "SOUTH",
    "EAST",
    "WEST",
    "AXIS_DIRECTIONS",
    "DIAGONAL_DIRECTIONS",
    "ALL_DIRECTIONS",
    "add",
    "sub",
    "neg",
    "manhattan",
    "chebyshev",
    "is_axis_unit",
    "is_unit_move",
    "perpendicular",
    "are_perpendicular",
    "are_opposite",
    "BoundingBox",
    "bounding_box",
    "IDENTITY",
    "DIHEDRAL_GROUP",
    "Transform",
    "rotations",
    "reflections",
]
