"""Integer lattice primitives.

Positions and direction vectors are plain ``(x, y)`` tuples of ints.
Tuples keep the hot loops allocation-light and hashable (robot positions
are used as dict keys by the renderers and pattern tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

Vec = Tuple[int, int]

ZERO: Vec = (0, 0)
EAST: Vec = (1, 0)
WEST: Vec = (-1, 0)
NORTH: Vec = (0, 1)
SOUTH: Vec = (0, -1)

#: The four axis-parallel unit moves a chain edge may take.
AXIS_DIRECTIONS: Tuple[Vec, ...] = (EAST, NORTH, WEST, SOUTH)

#: The four diagonal unit moves (used by reshapement and corner-cut hops).
DIAGONAL_DIRECTIONS: Tuple[Vec, ...] = ((1, 1), (-1, 1), (-1, -1), (1, -1))

#: Every move a robot may perform in one round (excluding "stay").
ALL_DIRECTIONS: Tuple[Vec, ...] = AXIS_DIRECTIONS + DIAGONAL_DIRECTIONS


def add(a: Vec, b: Vec) -> Vec:
    """Component-wise vector sum."""
    return (a[0] + b[0], a[1] + b[1])


def sub(a: Vec, b: Vec) -> Vec:
    """Component-wise vector difference ``a - b``."""
    return (a[0] - b[0], a[1] - b[1])


def neg(a: Vec) -> Vec:
    """Additive inverse."""
    return (-a[0], -a[1])


def manhattan(a: Vec, b: Vec = ZERO) -> int:
    """L1 distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def chebyshev(a: Vec, b: Vec = ZERO) -> int:
    """L∞ distance between two points (one hop covers Chebyshev 1)."""
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


def is_axis_unit(v: Vec) -> bool:
    """True when ``v`` is one of the four axis-parallel unit vectors."""
    return (abs(v[0]) == 1 and v[1] == 0) or (v[0] == 0 and abs(v[1]) == 1)


def is_unit_move(v: Vec) -> bool:
    """True when ``v`` is a legal single-round displacement (Chebyshev ≤ 1)."""
    return max(abs(v[0]), abs(v[1])) <= 1


def perpendicular(v: Vec) -> Tuple[Vec, Vec]:
    """Both unit vectors perpendicular to an axis unit vector ``v``."""
    if not is_axis_unit(v):
        raise ValueError(f"perpendicular() needs an axis unit vector, got {v!r}")
    return ((-v[1], v[0]), (v[1], -v[0]))


def are_perpendicular(a: Vec, b: Vec) -> bool:
    """True when the two vectors have zero dot product (and are nonzero)."""
    if a == ZERO or b == ZERO:
        return False
    return a[0] * b[0] + a[1] * b[1] == 0


def are_opposite(a: Vec, b: Vec) -> bool:
    """True when ``a == -b`` and both are nonzero."""
    return a != ZERO and a == neg(b)


@dataclass(frozen=True)
class BoundingBox:
    """Closed axis-aligned box ``[min_x, max_x] × [min_y, max_y]``."""

    min_x: int
    min_y: int
    max_x: int
    max_y: int

    @property
    def width(self) -> int:
        """Number of grid columns covered."""
        return self.max_x - self.min_x + 1

    @property
    def height(self) -> int:
        """Number of grid rows covered."""
        return self.max_y - self.min_y + 1

    @property
    def area(self) -> int:
        """Number of grid cells covered."""
        return self.width * self.height

    def fits_in(self, width: int, height: int) -> bool:
        """True when the box fits inside a ``width × height`` window."""
        return self.width <= width and self.height <= height

    def contains(self, p: Vec) -> bool:
        """True when the point lies inside the box."""
        return self.min_x <= p[0] <= self.max_x and self.min_y <= p[1] <= self.max_y

    @property
    def diameter(self) -> int:
        """Chebyshev diameter of the box (lower-bound witness for Ω(n))."""
        return max(self.width, self.height) - 1


def bounding_box(points: Iterable[Vec]) -> BoundingBox:
    """Smallest :class:`BoundingBox` containing all points.

    Raises ``ValueError`` on an empty iterable.
    """
    it = iter(points)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("bounding_box() of empty point set") from None
    min_x = max_x = first[0]
    min_y = max_y = first[1]
    for x, y in it:
        if x < min_x:
            min_x = x
        elif x > max_x:
            max_x = x
        if y < min_y:
            min_y = y
        elif y > max_y:
            max_y = y
    return BoundingBox(min_x, min_y, max_x, max_y)


def path_is_connected(points: Sequence[Vec], closed: bool = True) -> bool:
    """True when consecutive points are identical or 4-adjacent.

    This is the paper's chain-connectivity condition.  ``closed`` also
    checks the wrap-around edge.
    """
    n = len(points)
    if n == 0:
        return True
    last = n if closed else n - 1
    for i in range(last):
        a = points[i]
        b = points[(i + 1) % n]
        if manhattan(a, b) > 1:
            return False
    return True
