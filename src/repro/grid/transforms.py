"""The dihedral group D4 acting on the integer lattice.

The paper's robots have no compass, so every local rule must be applied
"in a mirrored or rotated manner".  The pattern matchers iterate over
this group; the tests use it to assert equivariance of the policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.grid.lattice import Vec


@dataclass(frozen=True)
class Transform:
    """An orthogonal lattice map ``(x, y) -> (a*x + b*y, c*x + d*y)``.

    The eight instances with determinant ±1 and entries in {-1, 0, 1}
    form the dihedral group of the square.
    """

    a: int
    b: int
    c: int
    d: int
    name: str = ""

    def apply(self, v: Vec) -> Vec:
        """Image of a single vector."""
        return (self.a * v[0] + self.b * v[1], self.c * v[0] + self.d * v[1])

    def apply_all(self, vs: Iterable[Vec]) -> List[Vec]:
        """Image of a sequence of vectors."""
        return [self.apply(v) for v in vs]

    def compose(self, other: "Transform") -> "Transform":
        """``self ∘ other`` (apply ``other`` first)."""
        return Transform(
            self.a * other.a + self.b * other.c,
            self.a * other.b + self.b * other.d,
            self.c * other.a + self.d * other.c,
            self.c * other.b + self.d * other.d,
            name=f"{self.name}∘{other.name}",
        )

    def inverse(self) -> "Transform":
        """Group inverse (orthogonal, so the transpose)."""
        det = self.a * self.d - self.b * self.c
        if det not in (1, -1):
            raise ValueError("not an orthogonal lattice transform")
        return Transform(self.d * det, -self.b * det, -self.c * det, self.a * det, name=f"{self.name}⁻¹")

    @property
    def determinant(self) -> int:
        """+1 for rotations, -1 for reflections."""
        return self.a * self.d - self.b * self.c


IDENTITY = Transform(1, 0, 0, 1, "id")
ROT90 = Transform(0, -1, 1, 0, "rot90")
ROT180 = Transform(-1, 0, 0, -1, "rot180")
ROT270 = Transform(0, 1, -1, 0, "rot270")
FLIP_X = Transform(-1, 0, 0, 1, "flip_x")
FLIP_Y = Transform(1, 0, 0, -1, "flip_y")
FLIP_DIAG = Transform(0, 1, 1, 0, "flip_diag")
FLIP_ANTIDIAG = Transform(0, -1, -1, 0, "flip_antidiag")

#: All eight symmetries of the square lattice.
DIHEDRAL_GROUP: Tuple[Transform, ...] = (
    IDENTITY,
    ROT90,
    ROT180,
    ROT270,
    FLIP_X,
    FLIP_Y,
    FLIP_DIAG,
    FLIP_ANTIDIAG,
)


def rotations() -> Tuple[Transform, ...]:
    """The four pure rotations."""
    return (IDENTITY, ROT90, ROT180, ROT270)


def reflections() -> Tuple[Transform, ...]:
    """The four reflections."""
    return (FLIP_X, FLIP_Y, FLIP_DIAG, FLIP_ANTIDIAG)


def canonical_form(vs: Sequence[Vec]) -> Tuple[Vec, ...]:
    """Lexicographically smallest image of ``vs`` under D4.

    Used to compare local shapes up to the symmetries a compass-less
    robot cannot distinguish.
    """
    best = None
    for t in DIHEDRAL_GROUP:
        img = tuple(t.apply(v) for v in vs)
        if best is None or img < best:
            best = img
    assert best is not None
    return best
