"""Serialization: JSON chains, results and traces (replay support)."""

from repro.io.serialization import (
    chain_from_json,
    chain_to_json,
    load_chain,
    load_trace,
    result_to_json,
    save_chain,
    save_trace,
    trace_from_json,
    trace_to_json,
)

__all__ = [
    "chain_to_json",
    "chain_from_json",
    "save_chain",
    "load_chain",
    "result_to_json",
    "trace_to_json",
    "trace_from_json",
    "save_trace",
    "load_trace",
]
