"""Serialization: versioned JSON documents, WAL and fleet snapshots."""

from repro.io.serialization import (
    chain_from_json,
    chain_to_json,
    load_chain,
    load_trace,
    register_migration,
    result_from_json,
    result_to_json,
    save_chain,
    save_trace,
    trace_from_json,
    trace_to_json,
    validate_document,
)
from repro.io.wal import (
    WalReader,
    WalWriter,
    load_fleet_snapshot,
    pack_ints,
    save_fleet_snapshot,
    unpack_ints,
)

__all__ = [
    "chain_to_json",
    "chain_from_json",
    "save_chain",
    "load_chain",
    "result_to_json",
    "result_from_json",
    "trace_to_json",
    "trace_from_json",
    "save_trace",
    "load_trace",
    "validate_document",
    "register_migration",
    "WalWriter",
    "WalReader",
    "save_fleet_snapshot",
    "load_fleet_snapshot",
    "pack_ints",
    "unpack_ints",
]
