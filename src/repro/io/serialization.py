"""JSON (de)serialization for chains, results and traces.

The formats are deliberately simple and versioned so stall cases and
experiment outputs can be archived and replayed across library versions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import ChainError
from repro.core.chain import ClosedChain
from repro.core.events import RunSnapshot, Snapshot, Trace
from repro.core.simulator import GatheringResult

FORMAT_VERSION = 1


def chain_to_json(chain: ClosedChain) -> str:
    """Serialize a chain (positions in chain order)."""
    doc = {
        "format": "repro.chain",
        "version": FORMAT_VERSION,
        "positions": [list(p) for p in chain.positions],
    }
    return json.dumps(doc)


def chain_from_json(text: str) -> ClosedChain:
    """Deserialize a chain; validates connectivity."""
    doc = json.loads(text)
    if doc.get("format") != "repro.chain":
        raise ChainError("not a repro.chain document")
    positions = [tuple(p) for p in doc["positions"]]
    return ClosedChain(positions)


def save_chain(path: str, chain: ClosedChain) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chain_to_json(chain))
    return path


def load_chain(path: str) -> ClosedChain:
    with open(path, "r", encoding="utf-8") as fh:
        return chain_from_json(fh.read())


def result_to_json(result: GatheringResult) -> str:
    """Serialize the scalar outcome of a gathering run (no trace)."""
    doc = {
        "format": "repro.result",
        "version": FORMAT_VERSION,
        "gathered": result.gathered,
        "rounds": result.rounds,
        "initial_n": result.initial_n,
        "final_n": result.final_n,
        "final_positions": [list(p) for p in result.final_positions],
        "stalled": result.stalled,
        "wall_time": result.wall_time,
        "params": {
            "viewing_path_length": result.params.viewing_path_length,
            "start_interval": result.params.start_interval,
            "k_max": result.params.k_max,
            "passing_distance": result.params.passing_distance,
            "travel_steps": result.params.travel_steps,
            "endpoint_guard": result.params.endpoint_guard,
            "sequent_guard": result.params.sequent_guard,
        },
    }
    return json.dumps(doc)


def trace_to_json(trace: Trace) -> str:
    """Serialize a trace's snapshots (positions, ids, runs per round)."""
    doc: Dict[str, Any] = {
        "format": "repro.trace",
        "version": FORMAT_VERSION,
        "snapshots": [
            {
                "round": s.round_index,
                "positions": [list(p) for p in s.positions],
                "ids": list(s.ids),
                "runs": [[r.run_id, r.robot_id, r.direction, r.mode, r.born_round]
                         for r in s.runs],
            }
            for s in trace.snapshots
        ],
    }
    return json.dumps(doc)


def trace_from_json(text: str) -> Trace:
    doc = json.loads(text)
    if doc.get("format") != "repro.trace":
        raise ChainError("not a repro.trace document")
    trace = Trace()
    for s in doc["snapshots"]:
        runs = tuple(RunSnapshot(run_id=r[0], robot_id=r[1], direction=r[2],
                                 mode=r[3], born_round=r[4]) for r in s["runs"])
        trace.record_snapshot(Snapshot(
            round_index=s["round"],
            positions=tuple(tuple(p) for p in s["positions"]),
            ids=tuple(s["ids"]),
            runs=runs,
        ))
    return trace


def save_trace(path: str, trace: Trace) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_json(trace))
    return path


def load_trace(path: str) -> Trace:
    with open(path, "r", encoding="utf-8") as fh:
        return trace_from_json(fh.read())
