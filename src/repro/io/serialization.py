"""JSON (de)serialization for chains, results and traces.

The formats are deliberately simple and versioned so stall cases and
experiment outputs can be archived and replayed across library versions.
Every document carries ``format`` + ``version``; readers go through
:func:`validate_document`, which rejects unknown versions and applies
any :func:`register_migration` hooks for older ones, so formats can
evolve without orphaning archived files (the WAL and snapshot formats
of :mod:`repro.io.wal` ride the same machinery).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import ChainError
from repro.core.chain import ClosedChain, MergeRecord
from repro.core.config import Parameters
from repro.core.events import RoundReport, RunSnapshot, Snapshot, Trace
from repro.core.runs import StopReason
from repro.core.simulator import GatheringResult

FORMAT_VERSION = 1

#: Current reader version per document format.  A document with a
#: *newer* version than listed here is rejected outright; an *older*
#: one is migrated stepwise through the registered hooks.
SUPPORTED_VERSIONS: Dict[str, int] = {
    "repro.chain": FORMAT_VERSION,
    "repro.result": FORMAT_VERSION,
    "repro.trace": FORMAT_VERSION,
    "repro.wal": 1,
    "repro.fleet-snapshot": 1,
}

_MIGRATIONS: Dict[Tuple[str, int], Callable[[dict], dict]] = {}


def register_migration(fmt: str, from_version: int
                       ) -> Callable[[Callable[[dict], dict]],
                                     Callable[[dict], dict]]:
    """Register a one-step document migration (decorator).

    The hook receives a document at ``from_version`` and must return
    one at a strictly higher version (usually ``from_version + 1``);
    :func:`validate_document` chains hooks until the current version is
    reached.  This is how WAL/snapshot formats evolve: bump the entry
    in :data:`SUPPORTED_VERSIONS` and register the upgrade here.
    """
    def deco(fn: Callable[[dict], dict]) -> Callable[[dict], dict]:
        _MIGRATIONS[(fmt, int(from_version))] = fn
        return fn
    return deco


def unregister_migration(fmt: str, from_version: int) -> None:
    """Remove a registered migration hook (testing support)."""
    _MIGRATIONS.pop((fmt, int(from_version)), None)


def validate_document(doc: Any, fmt: str) -> dict:
    """Check a parsed document's format/version; migrate old versions.

    Raises :class:`ChainError` when the document is not of format
    ``fmt``, carries no integer version, is newer than this library
    reads, or is older with no migration path registered.  Returns the
    (possibly migrated) document at the current version.
    """
    if not isinstance(doc, dict) or doc.get("format") != fmt:
        raise ChainError(f"not a {fmt} document")
    current = SUPPORTED_VERSIONS[fmt]
    v = doc.get("version")
    if isinstance(v, bool) or not isinstance(v, int):
        raise ChainError(f"{fmt}: missing or non-integer version field")
    while v < current:
        fn = _MIGRATIONS.get((fmt, v))
        if fn is None:
            raise ChainError(
                f"{fmt}: unknown version {v} (current {current}, "
                f"no migration registered)")
        doc = fn(dict(doc))
        nv = doc.get("version") if isinstance(doc, dict) else None
        if isinstance(nv, bool) or not isinstance(nv, int) or nv <= v:
            raise ChainError(
                f"{fmt}: migration from version {v} must advance the version")
        v = nv
    if v != current:
        raise ChainError(
            f"{fmt}: unknown version {v} (this library reads up to {current})")
    return doc


def open_ndjson_ledger(path: str, resume: bool, key: str = "chain"):
    """Open an append-only NDJSON results ledger; return ``(fh, seen)``.

    The exactly-once delivery ledger shared by ``repro batch --stream
    --out`` and the service tier (§2.12/§2.15).  With ``resume`` the
    existing file is authoritative: a torn trailing line — the crash
    window between a write starting and its flush completing — is
    truncated away, every complete line's ``key`` field joins the
    ``seen`` set (the writer skips those indices), and new lines
    append, so the finished file is byte-identical to an uninterrupted
    run's.  A complete line that fails to parse is corruption, not a
    crash artefact, and raises :class:`ChainError`.
    """
    import os
    seen = set()
    if resume and os.path.exists(path):
        with open(path, "rb") as fh:
            data = fh.read()
        keep = data.rfind(b"\n") + 1
        for line in data[:keep].splitlines():
            if line.strip():
                try:
                    seen.add(json.loads(line)[key])
                except (ValueError, KeyError) as exc:
                    raise ChainError(f"{path}: corrupt NDJSON line "
                                     f"cannot be resumed: {exc}")
        if keep < len(data):
            with open(path, "r+b") as fh:
                fh.truncate(keep)
        return open(path, "a", encoding="utf-8"), seen
    return open(path, "w", encoding="utf-8"), seen


def chain_to_json(chain: ClosedChain) -> str:
    """Serialize a chain (positions in chain order)."""
    doc = {
        "format": "repro.chain",
        "version": FORMAT_VERSION,
        "positions": [list(p) for p in chain.positions],
    }
    return json.dumps(doc)


def chain_from_json(text: str) -> ClosedChain:
    """Deserialize a chain; validates format, version and connectivity."""
    doc = validate_document(json.loads(text), "repro.chain")
    positions = [tuple(p) for p in doc["positions"]]
    return ClosedChain(positions)


def save_chain(path: str, chain: ClosedChain) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chain_to_json(chain))
    return path


def load_chain(path: str) -> ClosedChain:
    with open(path, "r", encoding="utf-8") as fh:
        return chain_from_json(fh.read())


#: Parameters fields carried by every serialized document that embeds
#: an algorithm configuration (results, fleet snapshots, WAL headers).
_PARAM_FIELDS = ("viewing_path_length", "start_interval", "k_max",
                 "passing_distance", "travel_steps", "endpoint_guard",
                 "sequent_guard")


def params_to_doc(params: Parameters) -> Dict[str, Any]:
    """Parameters as a plain JSON-ready mapping."""
    return {f: getattr(params, f) for f in _PARAM_FIELDS}


def params_from_doc(doc: Dict[str, Any]) -> Parameters:
    """Rebuild Parameters from :func:`params_to_doc` output."""
    return Parameters(**{f: doc[f] for f in _PARAM_FIELDS})


def result_to_json(result: GatheringResult) -> str:
    """Serialize the scalar outcome of a gathering run (no trace)."""
    doc = {
        "format": "repro.result",
        "version": FORMAT_VERSION,
        "gathered": result.gathered,
        "rounds": result.rounds,
        "initial_n": result.initial_n,
        "final_n": result.final_n,
        "final_positions": [list(p) for p in result.final_positions],
        "stalled": result.stalled,
        "wall_time": result.wall_time,
        "params": params_to_doc(result.params),
    }
    return json.dumps(doc)


def result_from_json(text: str) -> GatheringResult:
    """Deserialize a result document (reports/trace are not archived)."""
    doc = validate_document(json.loads(text), "repro.result")
    return GatheringResult(
        gathered=bool(doc["gathered"]),
        rounds=int(doc["rounds"]),
        initial_n=int(doc["initial_n"]),
        final_n=int(doc["final_n"]),
        final_positions=[tuple(int(v) for v in p)
                         for p in doc["final_positions"]],
        params=params_from_doc(doc["params"]),
        reports=[],
        trace=None,
        stalled=bool(doc["stalled"]),
        wall_time=float(doc["wall_time"]),
    )


def report_to_doc(report: RoundReport) -> Dict[str, Any]:
    """One RoundReport as a compact JSON-ready mapping (snapshot use)."""
    return {
        "r": report.round_index,
        "nb": report.n_before,
        "na": report.n_after,
        "hops": report.hops,
        "mp": report.merge_patterns,
        "merges": [[m.survivor_id, m.removed_id,
                    int(m.position[0]), int(m.position[1])]
                   for m in report.merges],
        "rs": report.runs_started,
        "rt": {str(reason.value): count
               for reason, count in report.runs_terminated.items()},
        "ar": report.active_runs,
        "mc": report.merge_conflicts,
        "rhc": report.runner_hop_conflicts,
    }


def report_from_doc(doc: Dict[str, Any]) -> RoundReport:
    """Rebuild a RoundReport from :func:`report_to_doc` output."""
    return RoundReport(
        round_index=int(doc["r"]),
        n_before=int(doc["nb"]),
        n_after=int(doc["na"]),
        hops=int(doc["hops"]),
        merge_patterns=int(doc["mp"]),
        merges=[MergeRecord(int(m[0]), int(m[1]), (int(m[2]), int(m[3])))
                for m in doc["merges"]],
        runs_started=int(doc["rs"]),
        runs_terminated={StopReason(int(k)): int(v)
                         for k, v in doc["rt"].items()},
        active_runs=int(doc["ar"]),
        merge_conflicts=int(doc["mc"]),
        runner_hop_conflicts=int(doc["rhc"]),
    )


def trace_to_json(trace: Trace) -> str:
    """Serialize a trace's snapshots (positions, ids, runs per round)."""
    doc: Dict[str, Any] = {
        "format": "repro.trace",
        "version": FORMAT_VERSION,
        "snapshots": [
            {
                "round": s.round_index,
                "positions": [list(p) for p in s.positions],
                "ids": list(s.ids),
                "runs": [[r.run_id, r.robot_id, r.direction, r.mode, r.born_round]
                         for r in s.runs],
            }
            for s in trace.snapshots
        ],
    }
    return json.dumps(doc)


def trace_from_json(text: str) -> Trace:
    doc = validate_document(json.loads(text), "repro.trace")
    trace = Trace()
    for s in doc["snapshots"]:
        runs = tuple(RunSnapshot(run_id=r[0], robot_id=r[1], direction=r[2],
                                 mode=r[3], born_round=r[4]) for r in s["runs"])
        trace.record_snapshot(Snapshot(
            round_index=s["round"],
            positions=tuple(tuple(p) for p in s["positions"]),
            ids=tuple(s["ids"]),
            runs=runs,
        ))
    return trace


def save_trace(path: str, trace: Trace) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_json(trace))
    return path


def load_trace(path: str) -> Trace:
    with open(path, "r", encoding="utf-8") as fh:
        return trace_from_json(fh.read())
