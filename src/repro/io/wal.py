"""Write-ahead log and snapshots for the streaming scheduler.

The durability tier (DESIGN.md §2.12): a WAL directory holds one
append-only NDJSON log (``wal.ndjson``) of versioned delta records
with monotonic LSNs, plus periodic full snapshots of the fleet state
(``snapshot-<lsn>.npz``).  The log records each round's *effects* —
moves, removals, run starts/stops, retire/admit/fault events, stream
yields — which makes a long stream auditable record by record; the
snapshots capture everything the scheduler's behaviour depends on, so
resume restores the latest snapshot and *re-executes* rounds through
the one engine code path (determinism is what makes the continuation
bit-identical, and the re-executed rounds re-log, so a resumed log
stays a valid audit trail).

Durability policy: every record is flushed to the OS page cache as it
is appended — a SIGKILL of the process loses at most the line being
written (readers tolerate exactly one torn trailing line).  Snapshots
are written to a temp file and atomically renamed, so a crash never
leaves a half-written snapshot under a live name.  Power-loss
durability (fsync) is out of scope for the reproduction harness.
"""

from __future__ import annotations

import base64
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import WalError
from repro.io.serialization import (
    params_from_doc,
    params_to_doc,
    report_from_doc,
    report_to_doc,
    validate_document,
)

WAL_FORMAT = "repro.wal"
WAL_VERSION = 1
SNAPSHOT_FORMAT = "repro.fleet-snapshot"
SNAPSHOT_VERSION = 1

LOG_NAME = "wal.ndjson"
#: Snapshot files retained in the directory (older ones are pruned —
#: resume only ever reads the newest one whose file exists).
KEEP_SNAPSHOTS = 2


def _np_default(o):
    """json.dumps fallback: NumPy scalars in payloads become plain."""
    if isinstance(o, np.integer):
        return int(o)
    if isinstance(o, np.floating):
        return float(o)
    if isinstance(o, np.bool_):
        return bool(o)
    raise TypeError(f"not JSON-serializable: {o!r}")


def pack_ints(values) -> str:
    """Bulk-array encoding for WAL v1 round deltas: a width tag
    (``h`` = little-endian int16, ``i`` = int32) plus base64 payload.

    Round records carry thousands of small integers per line (every
    hop of every live chain); encoding them as JSON int lists costs
    one Python object per integer and dominated WAL overhead.  A
    packed blob keeps both ends on the C fast path, and the int16 form
    — which slot indices, robot ids and direction deltas virtually
    always fit — halves the bytes the log scans and writes.
    """
    a = np.ascontiguousarray(np.asarray(values, dtype=np.int64))
    if a.size == 0:
        return "h"
    lo, hi = int(a.min()), int(a.max())
    if -32768 <= lo and hi <= 32767:
        tag, dtype = "h", "<i2"
    else:
        tag, dtype = "i", "<i4"
    return tag + base64.b64encode(a.astype(dtype).tobytes()).decode("ascii")


def unpack_ints(blob: str) -> np.ndarray:
    """Inverse of :func:`pack_ints` (int64 array, host order)."""
    if not blob or blob[0] not in "hi":
        raise WalError(f"packed int blob has no width tag: {blob[:8]!r}")
    raw = base64.b64decode(blob[1:].encode("ascii"))
    dtype = "<i2" if blob[0] == "h" else "<i4"
    return np.frombuffer(raw, dtype=dtype).astype(np.int64)


class WalWriter:
    """Append versioned delta records to a WAL directory.

    Creating a writer on a directory that already holds a non-empty
    log raises :class:`WalError` — an interrupted stream must be
    continued through :meth:`WalReader.continue_writing`, never
    silently overwritten.
    """

    def __init__(self, wal_dir: str, _next_lsn: int = 0,
                 _append: bool = False):
        os.makedirs(wal_dir, exist_ok=True)
        self.dir = wal_dir
        self.path = os.path.join(wal_dir, LOG_NAME)
        if not _append and os.path.exists(self.path) \
                and os.path.getsize(self.path) > 0:
            raise WalError(
                f"{self.path} already holds a log; resume it with "
                f"WalReader.continue_writing() or point at a fresh directory")
        self._fh = open(self.path, "a", encoding="utf-8")
        self.lsn = _next_lsn                # next LSN to hand out

    def append(self, rtype: str, **fields: Any) -> int:
        """Write one record; returns its LSN.  Flushed per record."""
        rec: Dict[str, Any] = {"lsn": self.lsn, "format": WAL_FORMAT,
                               "version": WAL_VERSION, "type": rtype}
        rec.update(fields)
        self._fh.write(json.dumps(rec, separators=(",", ":"),
                                  default=_np_default) + "\n")
        self._fh.flush()
        lsn = self.lsn
        self.lsn = lsn + 1
        return lsn

    def write_snapshot(self, kernel, stream: Dict[str, Any]) -> str:
        """Full fleet snapshot + its log record; prunes old snapshots.

        The snapshot file is named after the LSN of its own record, so
        the record→file association survives any crash ordering: the
        file is fully on disk (atomic rename) before the record that
        names it is appended, and a record whose file is missing is
        simply skipped by :meth:`WalReader.last_snapshot`.
        """
        name = f"snapshot-{self.lsn:010d}.npz"
        save_fleet_snapshot(os.path.join(self.dir, name), kernel, stream)
        self.append("snapshot", file=name, r=kernel.round_index,
                    cursor=stream["consumed"], done=stream["done"],
                    exhausted=stream["exhausted"])
        self._prune_snapshots()
        return name

    def _prune_snapshots(self) -> None:
        snaps = sorted(f for f in os.listdir(self.dir)
                       if f.startswith("snapshot-") and f.endswith(".npz"))
        for f in snaps[:-KEEP_SNAPSHOTS]:
            os.remove(os.path.join(self.dir, f))

    def close(self) -> None:
        self._fh.close()


class WalReader:
    """Parse and validate a WAL directory's log."""

    def __init__(self, wal_dir: str):
        self.dir = wal_dir
        self.path = os.path.join(wal_dir, LOG_NAME)
        if not os.path.exists(self.path):
            raise WalError(f"no log at {self.path}")
        self._records: Optional[List[dict]] = None
        self._good_bytes = 0

    def records(self) -> List[dict]:
        """All complete records, LSN-checked and version-validated.

        A crash can tear at most the trailing line (records are
        flushed one line at a time), so a non-newline-terminated tail
        is silently dropped; a malformed *complete* line or a break in
        the LSN sequence means real corruption and raises
        :class:`WalError`.
        """
        if self._records is not None:
            return self._records
        with open(self.path, "rb") as fh:
            data = fh.read()
        nl = data.rfind(b"\n")
        self._good_bytes = nl + 1
        recs: List[dict] = []
        if nl >= 0:
            for line in data[:nl].split(b"\n"):
                try:
                    doc = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise WalError(
                        f"{self.path}: corrupt record after lsn "
                        f"{len(recs) - 1}: {exc}") from exc
                doc = validate_document(doc, WAL_FORMAT)
                if doc.get("lsn") != len(recs) or "type" not in doc:
                    raise WalError(
                        f"{self.path}: broken LSN sequence — expected "
                        f"{len(recs)}, found {doc.get('lsn')!r}")
                recs.append(doc)
        self._records = recs
        return recs

    def stream_start(self) -> dict:
        """The log's opening record (stream configuration)."""
        recs = self.records()
        if not recs or recs[0]["type"] != "stream_start":
            raise WalError(f"{self.path}: log does not open with a "
                           f"stream_start record")
        return recs[0]

    def last_snapshot(self) -> Optional[dict]:
        """Newest snapshot record whose file is still on disk."""
        for rec in reversed(self.records()):
            if rec["type"] == "snapshot" \
                    and os.path.exists(self.snapshot_path(rec)):
                return rec
        return None

    def snapshot_path(self, rec: dict) -> str:
        return os.path.join(self.dir, rec["file"])

    def yields_after(self, lsn: int) -> Set[int]:
        """Stream indices already delivered after the given record.

        A yield record is appended only once the consumer has resumed
        past its whole batch, so this set is exactly what an
        idempotent resume must re-execute but *not* re-deliver.
        """
        out: Set[int] = set()
        for rec in self.records():
            if rec["type"] == "yield" and rec["lsn"] > lsn:
                i = rec["i"]
                out.update(i if isinstance(i, list) else (i,))
        return out

    def continue_writing(self) -> WalWriter:
        """Truncate any torn tail and return an appending writer."""
        recs = self.records()
        size = os.path.getsize(self.path)
        if size > self._good_bytes:
            with open(self.path, "r+b") as fh:
                fh.truncate(self._good_bytes)
        return WalWriter(self.dir, _next_lsn=len(recs), _append=True)


# ----------------------------------------------------------------------
# fleet snapshots
# ----------------------------------------------------------------------
def save_fleet_snapshot(path: str, kernel, stream: Dict[str, Any]) -> str:
    """Write the kernel's complete streaming state to one ``.npz``.

    Captures the arena and registry buffers, the kernel's per-chain
    scheduling columns, the admission cursor and yield count, and —
    when the kernel keeps reports — the live chains' RoundReport
    history (so a resumed chain's result carries its full report list,
    identical to an uninterrupted run).  Written atomically: temp file
    then rename, and ``np.savez`` gets an open file object so the
    temp name is used exactly as given.
    """
    arena_arrays, arena_meta = kernel.arena.snapshot_state()
    reg_arrays, reg_meta = kernel.registry.snapshot_state()
    meta: Dict[str, Any] = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "params": params_to_doc(kernel.params),
        "round_index": kernel.round_index,
        "submitted": kernel._submitted,
        "single": kernel._single,
        "check": kernel._check,
        "keep": kernel._keep,
        "validate": kernel._validate,
        "numpy_min_runs": kernel.numpy_min_runs,
        "n0": list(kernel._n0),
        "ext_of": list(kernel._ext_of),
        "stream_stats": dict(kernel.stream_stats),
        # pending mid-run fault triggers: fired entries are removed
        # before the snapshot boundary, so resume cannot re-fire them
        "mid_faults": {str(ci): [kind, trig]
                       for ci, (kind, trig) in kernel._mid_faults.items()},
        "arena": arena_meta,
        "registry": reg_meta,
        "stream": dict(stream),
    }
    if kernel._keep:
        meta["reports"] = {
            str(ci): [report_to_doc(r) for r in kernel.reports[ci]]
            for ci in kernel.arena.live_indices().tolist()}
    payload = {"arena_" + k: v for k, v in arena_arrays.items()}
    payload.update(("reg_" + k, v) for k, v in reg_arrays.items())
    payload["k_birth"] = np.array(kernel.birth, dtype=np.int64)
    payload["k_budgets"] = np.array(kernel._budgets, dtype=np.int64)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        np.savez(fh, meta=json.dumps(meta, default=_np_default), **payload)
    os.replace(tmp, path)
    return path


def load_fleet_snapshot(path: str) -> Tuple[Any, Dict[str, Any]]:
    """Rebuild a :class:`FleetKernel` from a snapshot file.

    Returns ``(kernel, stream_state)`` — the kernel with every live
    chain revived over the restored arena, and the stream-progress
    mapping (consumed/done/exhausted plus the run_stream arguments)
    recorded when the snapshot was taken.
    """
    from repro.core.arena import ChainArena
    from repro.core.engine_fleet import FleetKernel
    from repro.core.runs import RunRegistry

    if not os.path.exists(path):
        raise WalError(f"snapshot file missing: {path}")
    with np.load(path, allow_pickle=False) as z:
        meta = validate_document(json.loads(str(z["meta"])), SNAPSHOT_FORMAT)
        arena_arrays = {k[6:]: np.array(z[k]) for k in z.files
                        if k.startswith("arena_")}
        reg_arrays = {k[4:]: np.array(z[k]) for k in z.files
                      if k.startswith("reg_")}
        birth = np.array(z["k_birth"], dtype=np.int64)
        budgets = np.array(z["k_budgets"], dtype=np.int64)

    arena = ChainArena.restore_state(arena_arrays, meta["arena"])
    registry = RunRegistry.restore_state(reg_arrays, meta["registry"])
    count = len(arena.chains)
    kernel = FleetKernel.__new__(FleetKernel)
    kernel.params = params_from_doc(meta["params"])
    kernel.arena = arena
    kernel.registry = registry
    kernel.round_index = int(meta["round_index"])
    kernel.numpy_min_runs = meta["numpy_min_runs"]
    kernel._single = bool(meta["single"])
    kernel._check = bool(meta["check"])
    kernel._keep = bool(meta["keep"])
    kernel._validate = bool(meta["validate"])
    kernel._n0 = [int(n) for n in meta["n0"]]
    kernel._birth_buf = birth
    kernel._budget_buf = budgets
    kernel.birth = birth[:count]
    kernel._budgets = budgets[:count]
    kernel.reports = [[] for _ in range(count)]
    for ci, docs in meta.get("reports", {}).items():
        kernel.reports[int(ci)] = [report_from_doc(d) for d in docs]
    kernel.results = [None] * count
    kernel._ext_of = [int(x) for x in meta["ext_of"]]
    kernel._submitted = int(meta["submitted"])
    kernel.stream_stats = {k: int(v)
                           for k, v in meta["stream_stats"].items()}
    kernel._mid_faults = {int(ci): (str(kind), int(trig))
                          for ci, (kind, trig)
                          in meta.get("mid_faults", {}).items()}
    kernel._budget_memo = {}
    kernel._ext_list = None
    kernel._ext_pos = 0
    kernel._ids_dirty = {}
    kernel._wal = None
    kernel._wal_rec = None
    kernel.slim_results = False
    for ci in arena.live_indices().tolist():
        arena.revive_chain(ci)
    return kernel, dict(meta["stream"])


# ----------------------------------------------------------------------
# machine-checkable audit (§2.13)
# ----------------------------------------------------------------------
#: Record types the audit compares — the deterministic effect trail.
#: ``stream_start``/``snapshot``/``resume`` are control records whose
#: timing legitimately differs between a run and its re-execution.
AUDIT_TYPES = frozenset({"round", "admit", "retire", "yield", "fault",
                         "quarantine", "stream_end"})


@dataclass
class AuditReport:
    """Outcome of :func:`audit_wal`.

    ``ok`` — every audited record the log holds matches the
    re-execution.  ``complete`` — the log ends with ``stream_end``
    (an incomplete log is the crash window: the audit validates the
    prefix and reports ok).  On failure ``divergent_lsn`` is the LSN
    of the first logged record the re-execution contradicts (or the
    LSN just past the log when records are missing) and ``reason``
    says how.
    """

    ok: bool
    checked: int
    audited_from_lsn: int
    complete: bool
    divergent_lsn: Optional[int] = None
    reason: str = ""

    def summary(self) -> str:
        span = f"{self.checked} records from lsn {self.audited_from_lsn}"
        if self.ok:
            tail = "" if self.complete else " (log ends mid-stream)"
            return f"audit ok: {span} re-executed and matched{tail}"
        return (f"audit FAILED at lsn {self.divergent_lsn} after {span}: "
                f"{self.reason}")


class AuditDivergence(Exception):
    """Internal: the re-execution contradicted a logged record."""

    def __init__(self, lsn: int, reason: str):
        super().__init__(f"lsn {lsn}: {reason}")
        self.lsn = lsn
        self.reason = reason


class _AuditLogEnd(Exception):
    """Internal: the re-execution ran past the last logged record."""


def _describe_mismatch(regen: Dict[str, Any],
                       logged: Dict[str, Any]) -> str:
    if regen.get("type") != logged.get("type"):
        return (f"re-execution produced a {regen.get('type')!r} record "
                f"where the log holds {logged.get('type')!r}")
    keys = sorted(set(regen) | set(logged))
    for key in keys:
        if regen.get(key) != logged.get(key):
            return (f"{logged.get('type')} record field {key!r} differs: "
                    f"log has {_clip(logged.get(key))}, re-execution "
                    f"produced {_clip(regen.get(key))}")
    return "records differ"


def _clip(value: Any, limit: int = 80) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "…"


class WalAuditor:
    """A drop-in :class:`WalWriter` that *compares* instead of writes.

    Handed to ``run_stream`` in place of the real writer, it checks
    each record the re-execution generates against the logged sequence
    — same types, same payloads, in order — raising
    :class:`AuditDivergence` at the first contradiction and
    :class:`_AuditLogEnd` when the log has no more records to compare
    (the crash-truncation window).  Snapshots are a no-op: the audit
    never touches the directory it is checking.
    """

    def __init__(self, expected: List[dict]):
        self._expected = expected
        self._pos = 0
        self.checked = 0

    def append(self, rtype: str, **fields: Any) -> int:
        if rtype not in AUDIT_TYPES:
            return -1
        if self._pos >= len(self._expected):
            raise _AuditLogEnd()
        logged = self._expected[self._pos]
        self._pos += 1
        # normalise through one json round-trip so NumPy scalars and
        # tuples compare equal to the parsed log's plain lists/ints
        regen = json.loads(json.dumps(dict(fields, type=rtype),
                                      default=_np_default))
        ref = {k: v for k, v in logged.items()
               if k not in ("lsn", "format", "version")}
        if regen != ref:
            raise AuditDivergence(logged["lsn"],
                                  _describe_mismatch(regen, ref))
        self.checked += 1
        return int(logged["lsn"])

    def remaining(self) -> List[dict]:
        return self._expected[self._pos:]

    def write_snapshot(self, kernel, stream: Dict[str, Any]) -> str:
        return ""

    def close(self) -> None:
        pass


def audit_wal(wal_dir: str, chains: Iterable = (),
              ext_indices: Optional[Sequence[int]] = None) -> AuditReport:
    """Re-execute a logged stream and diff it against its own log.

    The machine-checkable half of the durability story: ``round``
    records are audit-only (resume re-executes, it never applies
    them), so nothing in normal operation would notice a tampered or
    torn effect trail.  The audit closes that gap — it restores the
    *oldest* snapshot still on disk after the last ``resume`` record,
    fast-forwards the (freshly re-created) ``chains`` stream to the
    recorded cursor, re-runs the one engine code path with a
    :class:`WalAuditor` in the writer seat, and reports the first
    logged record the deterministic re-execution contradicts.

    ``chains`` must be the same stream the logged run was fed (the
    log records effects, not inputs).  ``ext_indices`` re-supplies the
    global index mapping for sharded (§2.13 pool) logs.  The log and
    its snapshots are never modified.
    """
    from repro.core.engine_fleet import FleetKernel  # noqa: F401 (cycle)
    from repro.core.faults import FaultPlan

    reader = WalReader(wal_dir)
    recs = reader.records()
    start = reader.stream_start()
    last_resume = max((r["lsn"] for r in recs if r["type"] == "resume"),
                      default=-1)
    snap_rec = None
    for rec in recs:
        if rec["type"] == "snapshot" and rec["lsn"] > last_resume \
                and os.path.exists(reader.snapshot_path(rec)):
            snap_rec = rec
            break
    if snap_rec is None:
        raise WalError(f"{wal_dir}: no on-disk snapshot after the last "
                       f"resume record — nothing to audit from")
    expected = [r for r in recs
                if r["lsn"] > snap_rec["lsn"] and r["type"] in AUDIT_TYPES]
    complete = bool(expected) and expected[-1]["type"] == "stream_end"

    kernel, stream = load_fleet_snapshot(reader.snapshot_path(snap_rec))
    skip = reader.yields_after(snap_rec["lsn"])
    consumed = int(stream["consumed"])
    it = iter(chains)
    for k in range(consumed):
        try:
            next(it)
        except StopIteration:
            raise WalError(
                f"{wal_dir}: chain stream ended after {k} entries but the "
                f"log recorded {consumed} consumed — the audit needs the "
                f"same stream the logged run was fed") from None
    if ext_indices is not None:
        kernel._ext_list = [int(x) for x in ext_indices]
        kernel._ext_pos = consumed
    fd = start.get("faults")
    faults = FaultPlan.from_doc(fd) if fd else None
    auditor = WalAuditor(expected)
    mr = stream["max_rounds"]
    gen = kernel.run_stream(
        it, slots=stream["slots"],
        max_rounds=None if mr is None else int(mr),
        release=bool(stream["release"]), wal=auditor,
        snapshot_every=int(stream["snapshot_every"]), faults=faults,
        on_error=str(stream.get("on_error", "raise")),
        _resume=(bool(stream["exhausted"]), int(stream["done"]),
                 consumed, skip))

    base = AuditReport(ok=True, checked=0,
                       audited_from_lsn=int(snap_rec["lsn"]) + 1,
                       complete=complete)
    try:
        for _ in gen:
            pass
    except AuditDivergence as exc:
        base.ok = False
        base.checked = auditor.checked
        base.divergent_lsn = exc.lsn
        base.reason = exc.reason
        return base
    except _AuditLogEnd:
        base.checked = auditor.checked
        if complete:
            # the log claims the stream ended, yet the re-execution
            # kept producing effects: records were deleted mid-trail
            base.ok = False
            base.divergent_lsn = int(expected[-1]["lsn"])
            base.reason = ("log missing records: re-execution produced "
                           "further effects before its stream_end")
        return base
    except (WalError, ValueError, KeyError) as exc:
        # a tampered log/snapshot can derail the kernel itself
        nxt = auditor.remaining()
        base.ok = False
        base.checked = auditor.checked
        base.divergent_lsn = int(nxt[0]["lsn"]) if nxt else None
        base.reason = f"re-execution failed: {exc}"
        return base
    base.checked = auditor.checked
    leftover = auditor.remaining()
    if leftover:
        base.ok = False
        base.divergent_lsn = int(leftover[0]["lsn"])
        base.reason = (f"log holds {len(leftover)} record(s) the "
                       f"re-execution never produced (first: "
                       f"{leftover[0]['type']!r})")
    return base
