"""Time-model ablations: what happens outside FSYNC.

The paper assumes the fully synchronous FSYNC model; merge safety
depends on all blacks of a pattern hopping in the same instant.  This
package provides an SSYNC-style engine in which an activation policy
decides which robots actually execute their computed moves each round —
demonstrating experimentally (EXP-S1) that partial activation breaks
chain connectivity almost immediately, i.e. the FSYNC assumption is
load-bearing rather than cosmetic.
"""

from repro.schedulers.ssync import (
    ActivationPolicy,
    AlternatingActivation,
    FullActivation,
    RandomActivation,
    SplitPatternAdversary,
    SSyncEngine,
    SSyncOutcome,
    run_ssync,
)

__all__ = [
    "SSyncEngine",
    "ActivationPolicy",
    "FullActivation",
    "RandomActivation",
    "AlternatingActivation",
    "SplitPatternAdversary",
    "SSyncOutcome",
    "run_ssync",
]
