"""SSYNC ablation engine.

Semantics (documented deviation — this is an *ablation*, not part of
the reproduced algorithm): every robot looks and computes from the
common snapshot exactly as in FSYNC, but only the robots chosen by an
activation policy execute their move.  Runs carried by inactive robots
freeze for the round.

Under any policy that can split a merge pattern, two pattern blacks can
end up diagonal to each other, which disconnects the chain — the
algorithm is FSYNC-specific by design, and EXP-S1 measures how quickly
each policy exposes that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Protocol, Set

from repro.errors import InvariantViolation
from repro.grid.lattice import Vec
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.engine import Engine


class ActivationPolicy(Protocol):
    """Chooses the robots that execute their computed move this round."""

    def select(self, round_index: int, candidate_ids: Iterable[int]) -> Set[int]:
        """Subset of ``candidate_ids`` allowed to move."""
        ...  # pragma: no cover - protocol


class FullActivation:
    """Everything executes: identical to FSYNC (sanity baseline)."""

    def select(self, round_index: int, candidate_ids: Iterable[int]) -> Set[int]:
        return set(candidate_ids)


class RandomActivation:
    """Each mover is active independently with probability ``p``."""

    def __init__(self, p: float, seed: int = 0):
        if not 0.0 <= p <= 1.0:
            raise ValueError("activation probability must be in [0, 1]")
        self.p = p
        self._rng = random.Random(seed)

    def select(self, round_index: int, candidate_ids: Iterable[int]) -> Set[int]:
        return {rid for rid in candidate_ids if self._rng.random() < self.p}


class AlternatingActivation:
    """Even-id robots move on even rounds, odd-id robots on odd rounds."""

    def select(self, round_index: int, candidate_ids: Iterable[int]) -> Set[int]:
        parity = round_index % 2
        return {rid for rid in candidate_ids if rid % 2 == parity}


class SplitPatternAdversary:
    """Activates exactly one mover per round — the strongest splitter."""

    def select(self, round_index: int, candidate_ids: Iterable[int]) -> Set[int]:
        ordered = sorted(candidate_ids)
        return {ordered[0]} if ordered else set()


class SSyncEngine(Engine):
    """Engine whose computed moves pass through an activation policy."""

    def __init__(self, chain: ClosedChain, params: Parameters,
                 policy: ActivationPolicy, **kwargs):
        super().__init__(chain, params, **kwargs)
        self.policy = policy

    def _select_moves(self, moves: Dict[int, Vec]) -> Dict[int, Vec]:
        active = self.policy.select(self.round_index, moves.keys())
        return {rid: d for rid, d in moves.items() if rid in active}


@dataclass
class SSyncOutcome:
    """Result of an SSYNC ablation run."""

    gathered: bool
    broke: bool
    rounds: int
    break_round: Optional[int] = None

    @property
    def survived(self) -> bool:
        """True when connectivity held for the whole run."""
        return not self.broke


def run_ssync(positions, policy: ActivationPolicy,
              params: Parameters = DEFAULT_PARAMETERS,
              max_rounds: Optional[int] = None) -> SSyncOutcome:
    """Run the gathering algorithm under an activation policy.

    Invariant checking is forced on; a connectivity violation ends the
    run and is reported as a break (the expected outcome for policies
    that can split a merge pattern).
    """
    chain = ClosedChain(positions)
    engine = SSyncEngine(chain, params, policy, check_invariants=True)
    budget = max_rounds if max_rounds is not None else \
        params.round_budget(chain.n)
    while not chain.is_gathered() and engine.round_index < budget:
        try:
            engine.step()
        except InvariantViolation:
            return SSyncOutcome(gathered=False, broke=True,
                                rounds=engine.round_index,
                                break_round=engine.round_index)
    return SSyncOutcome(gathered=chain.is_gathered(), broke=False,
                        rounds=engine.round_index)
