"""Gathering-as-a-service: the asyncio submission front-end (§2.15).

The network face of the streaming tier: an NDJSON-over-TCP server
(:class:`GatherService`, ``repro serve``) accepts chain submissions
over the wire, feeds them through a bounded, per-client-fair admission
queue (:class:`FairAdmissionQueue`) into
:meth:`~repro.core.batch.BatchSimulator.run_stream`, and pushes
``result`` / ``quarantined`` / ``bad-line`` frames back as chains
finish.  :class:`GatherClient` is the matching asyncio client library.
"""

from repro.service.protocol import (MAX_CHAIN, MAX_LINE, PROTOCOL_VERSION,
                                    ProtocolError, encode_frame,
                                    parse_positions, read_frames)
from repro.service.queue import FairAdmissionQueue
from repro.service.server import GatherService, serve
from repro.service.client import GatherClient

__all__ = [
    "MAX_CHAIN", "MAX_LINE", "PROTOCOL_VERSION", "ProtocolError",
    "encode_frame", "parse_positions", "read_frames",
    "FairAdmissionQueue", "GatherService", "serve", "GatherClient",
]
