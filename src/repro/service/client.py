"""Asyncio client library for the gathering service (§2.15).

:class:`GatherClient` wraps one NDJSON connection: a background reader
task demultiplexes incoming frames into per-kind queues, so callers
can pipeline submissions while results stream back concurrently.

    async with await GatherClient.connect(host, port) as cli:
        for chain in chains:
            await cli.submit(chain)          # waits through backpressure
        async for frame in cli.results(expect=len(chains)):
            ...

The protocol + load test suites and :mod:`scripts.load_harness` drive
the service exclusively through this class, so it doubles as the
reference protocol implementation.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, List, Optional, Sequence, Tuple

from repro.service.protocol import encode_frame

#: frame kinds that answer one specific request, in request order
_ACK_KINDS = ("queued", "backpressure")
_RESULT_KINDS = ("result", "quarantined")


class ServiceError(RuntimeError):
    """The service reported a fatal ``error`` frame or hung up."""


class GatherClient:
    """One NDJSON connection to a :class:`GatherService`."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self.hello: Optional[dict] = None
        self._acks: asyncio.Queue = asyncio.Queue()
        self._results: asyncio.Queue = asyncio.Queue()
        self._status: asyncio.Queue = asyncio.Queue()
        self._drained: asyncio.Queue = asyncio.Queue()
        self._bad: List[dict] = []
        self._eof = asyncio.Event()
        self.error: Optional[dict] = None
        self.submitted = 0
        self.backpressure_seen = 0
        self._pump: Optional[asyncio.Task] = None

    @classmethod
    async def connect(cls, host: str, port: int,
                      timeout: float = 10.0) -> "GatherClient":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout)
        cli = cls(reader, writer)
        cli._pump = asyncio.ensure_future(cli._pump_frames())
        cli.hello = await asyncio.wait_for(cli._status.get(), timeout)
        if cli.hello.get("status") != "hello":
            raise ServiceError(f"expected hello banner, got {cli.hello}")
        return cli

    async def _pump_frames(self) -> None:
        import json
        try:
            while True:
                raw = await self._reader.readline()
                if not raw:
                    break
                raw = raw.strip()
                if not raw:
                    continue
                frame = json.loads(raw.decode("utf-8"))
                kind = frame.get("status")
                if kind in _RESULT_KINDS:
                    self._results.put_nowait(frame)
                elif kind in _ACK_KINDS:
                    if kind == "backpressure":
                        self.backpressure_seen += 1
                    self._acks.put_nowait(frame)
                elif kind == "bad-line":
                    self._bad.append(frame)
                elif kind == "drained":
                    self._drained.put_nowait(frame)
                elif kind == "error":
                    self.error = frame
                else:  # hello, status, bye
                    self._status.put_nowait(frame)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # server died or hung up: surfaced as EOF sentinels
        finally:
            self._eof.set()
            # unblock pending result/ack waiters with the EOF sentinel
            self._results.put_nowait(None)
            self._acks.put_nowait(None)
            self._drained.put_nowait(None)
            self._status.put_nowait(None)

    # -- submission ----------------------------------------------------
    def _send(self, doc: dict) -> None:
        if self._eof.is_set():
            raise ServiceError("connection closed")
        self._writer.write(encode_frame(doc))

    async def submit(self, chain: Sequence[Tuple[int, int]]) -> dict:
        """Submit one chain; wait for its ack, riding out backpressure.

        Returns the terminal ``queued`` frame for this submission.
        """
        self._send({"op": "submit", "chain": [list(p) for p in chain]})
        await self._writer.drain()
        self.submitted += 1
        while True:
            ack = await self._acks.get()
            if ack is None:
                raise ServiceError(
                    f"connection closed awaiting ack ({self.error})")
            if ack["status"] == "queued":
                return ack
            # backpressure: the queued frame follows once space frees

    async def submit_nowait(self, chain: Sequence[Tuple[int, int]]) -> None:
        """Pipeline a submission with acks suppressed (``ack: false``) —
        backpressure is exerted through TCP flow control only."""
        self._send({"op": "submit", "chain": [list(p) for p in chain],
                    "ack": False})
        await self._writer.drain()
        self.submitted += 1

    # -- results -------------------------------------------------------
    async def next_result(self, timeout: Optional[float] = None) -> dict:
        """The next ``result``/``quarantined`` frame (any submission)."""
        frame = await asyncio.wait_for(self._results.get(), timeout)
        if frame is None:
            raise ServiceError(
                f"connection closed awaiting results ({self.error})")
        return frame

    async def results(self, expect: int,
                      timeout: Optional[float] = None
                      ) -> AsyncIterator[dict]:
        """Yield exactly ``expect`` result/quarantined frames."""
        for _ in range(expect):
            yield await self.next_result(timeout)

    @property
    def bad_lines(self) -> List[dict]:
        """``bad-line`` frames received so far (rejected submissions)."""
        return self._bad

    # -- control ops ---------------------------------------------------
    async def status(self, timeout: float = 10.0) -> dict:
        self._send({"op": "status"})
        await self._writer.drain()
        frame = await asyncio.wait_for(self._status.get(), timeout)
        if frame is None:
            raise ServiceError("connection closed awaiting status")
        return frame

    async def drain(self, timeout: Optional[float] = None) -> dict:
        """Block until every submission on this connection delivered."""
        self._send({"op": "drain"})
        await self._writer.drain()
        frame = await asyncio.wait_for(self._drained.get(), timeout)
        if frame is None:
            raise ServiceError(
                f"connection closed awaiting drain ({self.error})")
        return frame

    async def shutdown(self, timeout: float = 10.0) -> dict:
        """Ask the service to drain and exit; returns the ``bye``."""
        self._send({"op": "shutdown"})
        await self._writer.drain()
        frame = await asyncio.wait_for(self._status.get(), timeout)
        if frame is None:
            raise ServiceError("connection closed awaiting bye")
        return frame

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except (asyncio.CancelledError, Exception):
                pass
        if not self._writer.is_closing():
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "GatherClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
