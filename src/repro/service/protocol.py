"""NDJSON wire protocol for the gathering service (DESIGN.md §2.15).

One JSON object per ``\\n``-terminated line, both directions.

Client -> server ops (the ``op`` field):

``{"op": "submit", "chain": [[x, y], ...], "ack": true}``
    Submit one closed chain.  ``ack: false`` suppresses the per-frame
    ``queued`` / ``backpressure`` acknowledgements (pipelined load).
``{"op": "status"}``
    Request a ``status`` frame (health, throughput, queue depth).
``{"op": "drain"}``
    Ask for a ``drained`` frame once every chain this client submitted
    has been delivered.
``{"op": "shutdown"}``
    Close admission; the service drains in-flight chains and exits.

Server -> client frames (the ``status`` field):

``hello``          connection banner: version, slots, queue capacity, limits.
``queued``         submission accepted into the admission queue.
``backpressure``   queue at capacity; the submission is parked and a
                   ``queued`` frame follows once space frees.
``bad-line``       a line was rejected (malformed JSON, not an object,
                   unknown op, invalid or oversized chain); carries the
                   1-based connection line number.  Never fatal.
``result``         a chain finished: same fields as ``repro batch
                   --stream`` output lines, plus ``seq`` (this client's
                   0-based submission index).
``quarantined``    a chain was quarantined (§2.13 ChainOutcome fields).
``status``         health snapshot.
``drained``        all of this client's submissions have been delivered.
``bye``            shutdown acknowledged; connection closes after drain.

Framing is plain NDJSON so ``nc``/``socat`` and the CLI's existing
JSONL tooling interoperate with the service directly.
"""

from __future__ import annotations

import json
from typing import AsyncIterator, List, Tuple, Union

PROTOCOL_VERSION = 1

#: hard cap on one wire line (bytes, newline included)
MAX_LINE = 1 << 20
#: default cap on robots per submitted chain
MAX_CHAIN = 4096
#: coordinate magnitude guard: keeps int64 grid arithmetic overflow-free
MAX_COORD = 1 << 40


class ProtocolError(ValueError):
    """A wire line violated the protocol.  ``code`` is a stable,
    machine-matchable slug carried in ``bad-line`` frames."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def encode_frame(doc: dict) -> bytes:
    """Serialise one frame: compact JSON + newline."""
    return (json.dumps(doc, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(raw: bytes) -> dict:
    """Parse one wire line into a frame dict or raise ProtocolError."""
    try:
        doc = json.loads(raw.decode("utf-8", errors="strict"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("bad-json", f"malformed JSON: {exc}")
    if not isinstance(doc, dict):
        raise ProtocolError(
            "not-object", f"frame must be a JSON object, got "
            f"{type(doc).__name__}")
    return doc


def parse_positions(obj, max_chain: int = MAX_CHAIN) -> List[Tuple[int, int]]:
    """Validate a submitted ``chain`` payload into integer grid points.

    Structural validation only — closed-chain *semantic* invariants
    (connectivity, length parity) stay with the kernel, whose failures
    surface as ``quarantined`` frames.  Anything rejected here never
    reaches the admission queue.
    """
    if not isinstance(obj, list):
        raise ProtocolError(
            "bad-chain", "chain must be a list of [x, y] pairs")
    if not obj:
        raise ProtocolError("bad-chain", "chain must not be empty")
    if len(obj) > max_chain:
        raise ProtocolError(
            "chain-too-long",
            f"chain has {len(obj)} robots, limit is {max_chain}")
    pts: List[Tuple[int, int]] = []
    for p in obj:
        if (not isinstance(p, (list, tuple)) or len(p) != 2):
            raise ProtocolError(
                "bad-position", f"position must be an [x, y] pair, got {p!r}")
        x, y = p
        if (isinstance(x, bool) or isinstance(y, bool)
                or not isinstance(x, int) or not isinstance(y, int)):
            raise ProtocolError(
                "bad-position",
                f"coordinates must be integers, got [{x!r}, {y!r}]")
        if abs(x) > MAX_COORD or abs(y) > MAX_COORD:
            raise ProtocolError(
                "bad-position", f"coordinate out of range: [{x}, {y}]")
        pts.append((x, y))
    return pts


async def read_frames(
        reader, max_line: int = MAX_LINE,
) -> AsyncIterator[Tuple[int, Union[dict, ProtocolError]]]:
    """Yield ``(lineno, frame-or-error)`` per wire line until EOF.

    A line longer than ``max_line`` is discarded up to its newline and
    yielded as a ProtocolError — the connection survives, matching the
    CLI's ``--skip-bad-lines`` posture.  Buffering is manual because
    ``StreamReader.readline``'s limit handling tears the stream
    mid-line instead of resynchronising on the next newline.
    """
    buf = bytearray()
    lineno = 0
    overflowing = False
    while True:
        chunk = await reader.read(65536)
        at_eof = not chunk
        buf.extend(chunk)
        while True:
            nl = buf.find(b"\n")
            if nl < 0:
                if overflowing:
                    buf.clear()  # still inside an oversized line
                elif len(buf) > max_line:
                    lineno += 1
                    overflowing = True
                    buf.clear()
                    yield lineno, ProtocolError(
                        "line-too-long",
                        f"line exceeds {max_line} bytes")
                break
            raw = bytes(buf[:nl]).rstrip(b"\r")
            del buf[:nl + 1]
            if overflowing:
                overflowing = False  # tail of the oversized line
                continue
            lineno += 1
            if nl > max_line:
                yield lineno, ProtocolError(
                    "line-too-long", f"line exceeds {max_line} bytes")
                continue
            if not raw.strip():
                continue
            try:
                yield lineno, decode_line(raw)
            except ProtocolError as exc:
                yield lineno, exc
        if at_eof:
            return
