"""Bounded, per-client-fair admission queue for the service tier.

DESIGN.md §2.15.  :class:`FairAdmissionQueue` implements the
admission-source protocol of :mod:`repro.core.admission` — ``take`` /
``Starved`` / ``StopIteration`` / ``close`` plus blocking iteration —
so it plugs straight into ``BatchSimulator.run_stream`` and the
supervised pool.  On top of the plain :class:`QueueSource` contract it
adds:

**Fairness.**  Submissions are held in per-client FIFO deques and the
consumer side round-robins across clients, so one client pipelining a
million chains cannot starve another's trickle.  Per-client order is
preserved; cross-client order is interleaved by take order, which is
the global ``chain`` index clients see in result frames.

**Backpressure with handoff.**  ``capacity`` bounds the *aggregate*
client backlog.  A submission arriving at capacity is parked:
:meth:`submit` returns an asyncio future the connection handler
awaits (after sending a ``backpressure`` frame).  When the kernel
takes an item, the freed slot is handed directly to the oldest parked
submission under the queue lock — depth can never overshoot the bound,
and parked arrival order is preserved.

**Intake logging.**  ``on_take`` (when set) is called with each
entry's accept index *inside* ``take``, under the lock, before the
item is returned — giving the server a durable record of the exact
kernel admission order, which crash-resume replays verbatim
(:mod:`repro.service.server`).  Replayed entries carry a per-entry
flag so already-logged takes are not logged twice.

Thread model: ``submit``/``close`` run on the asyncio loop thread,
``take`` on the kernel executor thread; the single lock plus
``loop.call_soon_threadsafe`` for future resolution keeps the handoff
race-free.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.admission import Starved


class FairAdmissionQueue:
    """Admission source with per-client round-robin and a hard bound."""

    def __init__(self, capacity: Optional[int] = None, loop=None,
                 on_take: Optional[Callable[[Optional[int]], None]] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None: unbounded)")
        self.capacity = capacity
        self._loop = loop
        self._on_take = on_take
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # client id -> FIFO of (seq, accept_index, item)
        self._queues: Dict[str, deque] = {}
        self._rr: deque = deque()        # round-robin rotation of client ids
        self._replay: deque = deque()    # (accept_index, item, log) — resume
        self._waiters: deque = deque()   # parked (future, client, seq, k, item)
        self._depth = 0                  # live client backlog (bounded)
        self._closed = False
        #: take order -> (client_id, seq) or None (replayed entries)
        self.owners: List[Optional[Tuple[str, int]]] = []
        self.accepted = 0
        self.taken = 0
        self.peak_depth = 0

    # -- producer side (asyncio loop thread) ---------------------------
    def submit(self, client: str, seq: int, accept_index: Optional[int],
               item):
        """Enqueue a client submission.

        Returns ``None`` when the item entered the queue, or an asyncio
        future (submission parked at capacity) that resolves once the
        item has been admitted; the future raises if the queue closes
        first.
        """
        with self._lock:
            if self._closed:
                raise ValueError("admission queue is closed")
            if (self.capacity is not None
                    and self._depth >= self.capacity):
                if self._loop is None:
                    raise BlockingIOError("admission queue full")
                fut = self._loop.create_future()
                self._waiters.append((fut, client, seq, accept_index, item))
                return fut
            self._enqueue_locked(client, seq, accept_index, item)
            return None

    def feed_replay(self, entries) -> None:
        """Preload resume-replay entries: ``(accept_index, item, log)``
        triples, served before any live submission, exempt from the
        capacity bound (they were admitted before the crash)."""
        with self._lock:
            for k, item, log in entries:
                self._replay.append((k, item, log))
                self.accepted += 1
            self._not_empty.notify_all()

    def _enqueue_locked(self, client, seq, k, item) -> None:
        q = self._queues.get(client)
        if q is None:
            q = self._queues[client] = deque()
            self._rr.append(client)
        q.append((seq, k, item))
        self._depth += 1
        self.accepted += 1
        if self._depth > self.peak_depth:
            self.peak_depth = self._depth
        self._not_empty.notify()

    def close(self) -> None:
        """Stop admission; the backlog still drains through ``take``.
        Parked submissions are failed (their accept-log line, if any,
        makes them eligible for resume replay instead)."""
        with self._lock:
            self._closed = True
            waiters, self._waiters = list(self._waiters), deque()
            self._not_empty.notify_all()
        for fut, *_ in waiters:
            self._call_in_loop(fut, ConnectionAbortedError(
                "admission queue closed"))

    @property
    def closed(self) -> bool:
        return self._closed

    # -- consumer side (kernel executor thread) ------------------------
    def take(self, block: bool = False, timeout: Optional[float] = None):
        with self._not_empty:
            if block:
                if not self._not_empty.wait_for(
                        lambda: (self._replay or self._rr
                                 or self._closed), timeout):
                    raise Starved
            if self._replay or self._rr:
                return self._take_locked()
            if self._closed:
                raise StopIteration
            raise Starved

    def _take_locked(self):
        if self._replay:
            k, item, log = self._replay.popleft()
            owner = None
        else:
            client = self._rr.popleft()
            q = self._queues[client]
            seq, k, item = q.popleft()
            if q:
                self._rr.append(client)
            else:
                del self._queues[client]
            self._depth -= 1
            owner = (client, seq)
            log = True
            self._promote_locked()
        if log and self._on_take is not None:
            self._on_take(k)
        self.owners.append(owner)
        self.taken += 1
        return item

    def _promote_locked(self) -> None:
        # hand freed space straight to the oldest parked submission —
        # under the lock, so depth never overshoots the bound
        while self._waiters and (self.capacity is None
                                 or self._depth < self.capacity):
            fut, client, seq, k, item = self._waiters.popleft()
            self._enqueue_locked(client, seq, k, item)
            self._call_in_loop(fut, None)

    def _call_in_loop(self, fut, exc) -> None:
        def _resolve():
            if fut.done():
                return
            if exc is None:
                fut.set_result(None)
            else:
                fut.set_exception(exc)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(_resolve)
        else:
            _resolve()

    # -- introspection -------------------------------------------------
    def owner_of(self, index: int) -> Optional[Tuple[str, int]]:
        """Map a global chain index (take order) to ``(client, seq)``."""
        if 0 <= index < len(self.owners):
            return self.owners[index]
        return None

    def qsize(self) -> int:
        with self._lock:
            return self._depth

    def replay_backlog(self) -> int:
        with self._lock:
            return len(self._replay)

    def parked(self) -> int:
        with self._lock:
            return len(self._waiters)

    # -- iterable face (restore fast-forward) --------------------------
    def __iter__(self):
        return self

    def __next__(self):
        while True:
            try:
                return self.take(block=True)
            except Starved:
                continue
