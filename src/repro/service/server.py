"""The gathering service: asyncio TCP front-end over ``run_stream``.

DESIGN.md §2.15.  :class:`GatherService` binds an NDJSON TCP listener
(:mod:`repro.service.protocol`), pushes accepted submissions through a
:class:`~repro.service.queue.FairAdmissionQueue`, and bridges the
synchronous streaming kernel with ``loop.run_in_executor``: the kernel
thread blocks in ``BatchSimulator.run_stream(queue, ...)`` — parking
in a blocking ``take`` whenever the arena is empty and the wire idle —
while finished chains are handed back to the loop thread with
``call_soon_threadsafe`` and pushed to their submitting client as
``result`` / ``quarantined`` frames.  The service always runs the
supervision tier (``on_error="quarantine"``): hostile input degrades
into structured frames, never a dead server loop.

Durability (``wal_dir``): three logs alongside the kernel's own WAL —

``submissions.jsonl``
    one line per *accepted* submission (``{"k": accept_index,
    "chain": [...]}``), flushed before the ``queued`` ack.
``intake.jsonl``
    one line per kernel *take* (``{"k": ...}``), appended under the
    queue lock in exact admission order — the replayable record of
    the fair interleaving, which is what the kernel's WAL cursor
    counts.
``results.ndjson``
    the exactly-once delivery ledger (§2.12), written in the kernel
    thread *before* the generator is re-entered, so a recorded WAL
    yield always implies a durable ledger line.

A killed service resumes with ``resume=True``: accepted submissions
are replayed to the queue in logged intake order (then any never-taken
accepts in accept order), the kernel restores its snapshot and
fast-forwards through the replay, and the ledger dedupes re-yields —
the finished ``results.ndjson`` is byte-identical to an uninterrupted
run's.  Resumed entries have no live client; they complete into the
ledger only.  ``service.json`` records the worker count, so a killed
``--workers K`` service restores its full shard set (the shm tier,
§2.16) — there the kernel re-runs the replay deterministically from
scratch and the ledger dedup alone provides exactly-once.

Result frames are written without awaiting ``drain()`` (they originate
on the kernel thread); a client that stops reading accumulates server
send-buffer, bounded in practice by ``slots`` in-flight results.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.results import ChainOutcome
from repro.service.protocol import (MAX_CHAIN, MAX_LINE, PROTOCOL_VERSION,
                                    ProtocolError, encode_frame,
                                    parse_positions, read_frames)
from repro.service.queue import FairAdmissionQueue

SUBMISSIONS_LOG = "submissions.jsonl"
INTAKE_LOG = "intake.jsonl"
RESULTS_LEDGER = "results.ndjson"
#: Service WAL header: the topology a --resume must restore (worker
#: count decides the execution tier, which no per-stream log records)
SERVICE_HEADER = "service.json"


class _Client:
    """Per-connection bookkeeping."""

    __slots__ = ("cid", "writer", "accepted", "delivered", "draining",
                 "bad_lines")

    def __init__(self, cid: str, writer):
        self.cid = cid
        self.writer = writer
        self.accepted = 0    # submissions admitted to the queue
        self.delivered = 0   # result/quarantined frames pushed back
        self.draining = False
        self.bad_lines = 0


def _load_jsonl(path: str) -> List[dict]:
    """Complete lines of a crash-prone JSONL log (torn tail dropped)."""
    if not os.path.exists(path):
        return []
    with open(path, "rb") as fh:
        data = fh.read()
    keep = data.rfind(b"\n") + 1
    return [json.loads(line) for line in data[:keep].splitlines()
            if line.strip()]


class GatherService:
    """NDJSON-over-TCP submission front-end for the streaming tier."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 slots: int = 256, workers: int = 1,
                 queue_capacity: Optional[int] = None,
                 params: Parameters = DEFAULT_PARAMETERS,
                 wal_dir: Optional[str] = None, resume: bool = False,
                 snapshot_every: int = 512,
                 max_rounds: Optional[int] = None,
                 max_chain: int = MAX_CHAIN, max_line: int = MAX_LINE,
                 check_invariants: bool = False):
        if resume and wal_dir is None:
            raise ValueError("resume=True needs wal_dir")
        self.host = host
        self.port = port
        self.slots = slots
        self.workers = workers
        self.queue_capacity = (queue_capacity if queue_capacity is not None
                               else max(slots, 1))
        self.params = params
        self.wal_dir = wal_dir
        self.resume = resume
        self.snapshot_every = snapshot_every
        self.max_rounds = max_rounds
        self.max_chain = max_chain
        self.max_line = max_line
        self.check_invariants = check_invariants

        self.queue: Optional[FairAdmissionQueue] = None
        self.sim = None
        self.served = 0
        self.kernel_error: Optional[BaseException] = None
        self._loop = None
        self._server = None
        self._kernel_task = None
        self._clients: Dict[str, _Client] = {}
        self._next_cid = 0
        self._accept_index = 0
        self._subs_fh = None
        self._intake_fh = None
        self._ledger_fh = None
        self._ledger_seen = set()
        self._finished = None
        self._shutting_down = False
        self._t0 = 0.0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind the listener, start the kernel thread, load any WAL."""
        from repro.core.batch import BatchSimulator
        from repro.io.serialization import open_ndjson_ledger
        self._loop = asyncio.get_running_loop()
        self._finished = asyncio.Event()
        self._t0 = time.monotonic()

        replay: List[Tuple[Optional[int], object, bool]] = []
        if self.wal_dir is not None:
            os.makedirs(self.wal_dir, exist_ok=True)
            subs_path = os.path.join(self.wal_dir, SUBMISSIONS_LOG)
            intake_path = os.path.join(self.wal_dir, INTAKE_LOG)
            header_path = os.path.join(self.wal_dir, SERVICE_HEADER)
            if self.resume and os.path.exists(header_path):
                # the recorded topology wins: a killed --workers K
                # service restores its full shard set, not the default
                with open(header_path, "r", encoding="utf-8") as fh:
                    header = json.load(fh)
                self.workers = int(header.get("workers", self.workers))
            else:
                with open(header_path, "w", encoding="utf-8") as fh:
                    json.dump({"workers": self.workers,
                               "slots": self.slots}, fh)
                    fh.write("\n")
            if self.resume:
                accepts = [[tuple(p) for p in doc["chain"]]
                           for doc in _load_jsonl(subs_path)]
                takes = [int(doc["k"]) for doc in _load_jsonl(intake_path)
                         if int(doc["k"]) < len(accepts)]
                taken = set(takes)
                # logged takes replay in admission order (the kernel's
                # WAL cursor counts exactly these), then never-taken
                # accepts in accept order — both without live owners
                replay = [(k, accepts[k], False) for k in takes]
                replay += [(k, accepts[k], True)
                           for k in range(len(accepts)) if k not in taken]
                self._accept_index = len(accepts)
            mode = "a" if self.resume else "w"
            self._subs_fh = open(subs_path, mode, encoding="utf-8")
            self._intake_fh = open(intake_path, mode, encoding="utf-8")
            self._ledger_fh, self._ledger_seen = open_ndjson_ledger(
                os.path.join(self.wal_dir, RESULTS_LEDGER), self.resume)

        self.queue = FairAdmissionQueue(
            capacity=self.queue_capacity, loop=self._loop,
            on_take=self._log_take if self._intake_fh is not None else None)
        if replay:
            self.queue.feed_replay(replay)
        # workers >= 2 runs the zero-copy shared-memory shard tier
        # (§2.16): K slab-backed kernel processes, crash-respawning
        # shards, per-shard WALs under wal_dir/shard-<k>
        self.sim = BatchSimulator(
            [], params=self.params, engine="kernel",
            backend="shm" if self.workers > 1 else "fleet",
            workers=self.workers, keep_reports=False,
            check_invariants=self.check_invariants)
        self._kernel_task = self._loop.run_in_executor(
            None, self._kernel_main)
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_finished(self) -> None:
        """Block until the stream ends (shutdown op, signal, or kernel
        death); then reap the kernel thread and release the logs."""
        await self._finished.wait()
        try:
            await self._kernel_task
        except BaseException:
            pass  # already captured in kernel_error
        self._server.close()
        await self._server.wait_closed()
        for fh in (self._subs_fh, self._intake_fh, self._ledger_fh):
            if fh is not None:
                fh.close()
        if self.kernel_error is not None:
            raise self.kernel_error

    def begin_shutdown(self) -> None:
        """Close admission; the kernel drains the backlog and exits.
        Safe to call repeatedly / from signal handlers (loop thread)."""
        if self._shutting_down:
            return
        self._shutting_down = True
        self.queue.close()

    # -- kernel bridge (executor thread) -------------------------------
    def _log_take(self, accept_index: Optional[int]) -> None:
        # called by the queue, under its lock, in exact take order
        if accept_index is None:
            return
        self._intake_fh.write(
            json.dumps({"k": accept_index}, separators=(",", ":")) + "\n")
        self._intake_fh.flush()

    def _kernel_main(self) -> None:
        try:
            # the shm tier has no kernel-level snapshot resume (per-
            # shard WALs are effect logs); exactly-once on resume comes
            # from the service-level replay (queue feed_replay) plus
            # the results-ledger dedup below, so the stream re-runs
            # deterministically and only unseen indices append
            resume = self.resume and self.sim.backend != "shm"
            gen = self.sim.run_stream(
                self.queue, slots=self.slots, max_rounds=self.max_rounds,
                wal_dir=self.wal_dir, snapshot_every=self.snapshot_every,
                resume=resume, on_error="quarantine")
            for idx, payload in gen:
                doc = self._outcome_doc(idx, payload)
                if self._ledger_fh is not None \
                        and idx not in self._ledger_seen:
                    # durable before the generator is re-entered: a WAL
                    # yield record always implies a ledger line (§2.12)
                    self._ledger_fh.write(
                        json.dumps(doc, separators=(",", ":")) + "\n")
                    self._ledger_fh.flush()
                self._loop.call_soon_threadsafe(self._deliver, idx, doc)
        except BaseException as exc:  # noqa: BLE001 — surfaced to caller
            self.kernel_error = exc
            self._loop.call_soon_threadsafe(self._stream_ended, exc)
        else:
            self._loop.call_soon_threadsafe(self._stream_ended, None)

    @staticmethod
    def _outcome_doc(idx: int, payload) -> dict:
        if isinstance(payload, ChainOutcome):
            if not payload.ok:
                return payload.to_doc()
            payload = payload.result
        return {"chain": idx, "n": payload.initial_n,
                "rounds": payload.rounds, "gathered": payload.gathered,
                "rounds_per_robot": round(payload.rounds_per_robot, 3)}

    # -- loop-thread delivery ------------------------------------------
    def _deliver(self, idx: int, doc: dict) -> None:
        self.served += 1
        owner = self.queue.owner_of(idx)
        if owner is None:
            return  # resumed entry: ledger-only, original client is gone
        cs = self._clients.get(owner[0])
        if cs is None:
            return
        frame = {k: v for k, v in doc.items() if k != "kind"}
        frame["status"] = ("quarantined" if doc.get("quarantined")
                           else "result")
        frame["seq"] = owner[1]
        self._write(cs, frame)
        cs.delivered += 1
        if cs.draining and cs.delivered >= cs.accepted:
            cs.draining = False
            self._write(cs, {"status": "drained",
                             "delivered": cs.delivered})

    def _stream_ended(self, exc: Optional[BaseException]) -> None:
        if exc is not None:
            frame = {"status": "error", "error": type(exc).__name__,
                     "message": str(exc)}
            for cs in self._clients.values():
                self._write(cs, frame)
        for cs in self._clients.values():
            if cs.draining:
                cs.draining = False
                self._write(cs, {"status": "drained",
                                 "delivered": cs.delivered})
            if not cs.writer.is_closing():
                cs.writer.close()
        self._finished.set()

    def _write(self, cs: _Client, doc: dict) -> None:
        if not cs.writer.is_closing():
            cs.writer.write(encode_frame(doc))

    # -- connection handling -------------------------------------------
    async def _on_client(self, reader, writer) -> None:
        cid = f"c{self._next_cid}"
        self._next_cid += 1
        cs = _Client(cid, writer)
        self._clients[cid] = cs
        try:
            await self._send(cs, {
                "status": "hello", "service": "repro-serve",
                "version": PROTOCOL_VERSION, "slots": self.slots,
                "workers": self.workers,
                "queue_capacity": self.queue_capacity,
                "max_chain": self.max_chain, "max_line": self.max_line})
            async for lineno, parsed in read_frames(reader, self.max_line):
                if isinstance(parsed, ProtocolError):
                    cs.bad_lines += 1
                    await self._send(cs, {
                        "status": "bad-line", "line": lineno,
                        "error": parsed.code, "message": str(parsed)})
                    continue
                await self._dispatch(cs, lineno, parsed)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # mid-frame disconnects are a client's prerogative
        finally:
            self._clients.pop(cid, None)
            if not writer.is_closing():
                writer.close()

    async def _dispatch(self, cs: _Client, lineno: int, doc: dict) -> None:
        op = doc.get("op")
        if op == "submit":
            await self._op_submit(cs, lineno, doc)
        elif op == "status":
            await self._send(cs, self.status_doc())
        elif op == "drain":
            if cs.delivered >= cs.accepted:
                await self._send(cs, {"status": "drained",
                                      "delivered": cs.delivered})
            else:
                cs.draining = True
        elif op == "shutdown":
            await self._send(cs, {"status": "bye"})
            self.begin_shutdown()
        else:
            cs.bad_lines += 1
            await self._send(cs, {
                "status": "bad-line", "line": lineno, "error": "unknown-op",
                "message": f"unknown op {op!r}"})

    async def _op_submit(self, cs: _Client, lineno: int, doc: dict) -> None:
        try:
            pts = parse_positions(doc.get("chain"), self.max_chain)
        except ProtocolError as exc:
            cs.bad_lines += 1
            await self._send(cs, {"status": "bad-line", "line": lineno,
                                  "error": exc.code, "message": str(exc)})
            return
        if self.queue.closed:
            await self._send(cs, {
                "status": "bad-line", "line": lineno, "error": "closed",
                "message": "service is draining; submission rejected"})
            return
        ack = doc.get("ack") is not False
        k = None
        if self._subs_fh is not None:
            # accept log flushed before the item can possibly be taken:
            # an intake.jsonl line always has its submissions.jsonl line
            k = self._accept_index
            self._accept_index += 1
            self._subs_fh.write(json.dumps(
                {"k": k, "chain": [list(p) for p in pts]},
                separators=(",", ":")) + "\n")
            self._subs_fh.flush()
        seq = cs.accepted
        parked = self.queue.submit(cs.cid, seq, k, pts)
        cs.accepted += 1
        if parked is not None:
            if ack:
                await self._send(cs, {
                    "status": "backpressure", "seq": seq,
                    "queued": self.queue.qsize(),
                    "capacity": self.queue_capacity})
            try:
                # the handler stalls here, so this connection's TCP
                # stream stalls too: wire-level backpressure
                await parked
            except ConnectionAbortedError:
                await self._send(cs, {
                    "status": "bad-line", "line": lineno, "error": "closed",
                    "message": "service closed while submission parked"})
                return
        if ack:
            await self._send(cs, {"status": "queued", "seq": seq,
                                  "queued": self.queue.qsize()})

    async def _send(self, cs: _Client, doc: dict) -> None:
        if cs.writer.is_closing():
            return
        cs.writer.write(encode_frame(doc))
        try:
            await cs.writer.drain()
        except (ConnectionError, OSError):
            pass

    # -- health --------------------------------------------------------
    def status_doc(self) -> dict:
        """The ``status`` frame: /healthz for NDJSON consumers.

        Kernel scalars (occupancy, rounds, topology telemetry) are read
        racily across threads — single word-sized reads of monotone
        counters, documented as approximate.
        """
        up = time.monotonic() - self._t0
        doc = {
            "status": "status", "uptime_s": round(up, 3),
            "slots": self.slots, "workers": self.workers,
            "clients": len(self._clients), "served": self.served,
            "accepted": self.queue.accepted,
            "queue_depth": self.queue.qsize(),
            "queue_capacity": self.queue_capacity,
            "peak_queue_depth": self.queue.peak_depth,
            "parked": self.queue.parked(),
            "replay_backlog": self.queue.replay_backlog(),
            "draining": self.queue.closed,
            "chains_per_s": round(self.served / up, 2) if up > 0 else 0.0,
        }
        kernel = getattr(self.sim, "stream_kernel", None)
        if kernel is not None:
            arena = kernel.arena
            doc.update({
                "occupancy": int(arena.n_live),
                "rounds": int(kernel.round_index),
                "topo_rebuilds": int(arena.topo_stats["rebuilds"]),
                "topo_delta_ops": int(arena.topo_stats["delta_ops"]),
                "topo_delta_cells": int(arena.topo_stats["delta_cells"]),
            })
        stream_stats = getattr(self.sim, "last_stream_stats", None)
        if stream_stats and "per_shard" in stream_stats:
            # shm tier: the parent scheduler maintains these live —
            # per-shard occupancy, throughput and respawn counts make
            # the scale-out observable from a status frame
            doc.update({
                "occupancy": sum(r["live"]
                                 for r in stream_stats["per_shard"]),
                "respawns": stream_stats.get("respawns", 0),
                "per_shard": [dict(r)
                              for r in stream_stats["per_shard"]],
            })
        return doc


async def serve(service: GatherService, ready=None,
                install_signals: bool = True) -> GatherService:
    """Start a service, print/announce readiness, run it to completion.

    ``ready`` (when given) is called with the service once the port is
    bound — the CLI prints its parse-friendly ready line there.
    SIGINT/SIGTERM trigger a graceful drain-and-exit.
    """
    import signal
    await service.start()
    if install_signals:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, service.begin_shutdown)
            except (NotImplementedError, RuntimeError):
                break
    if ready is not None:
        ready(service)
    await service.wait_finished()
    return service
