"""Exhaustive small-case verification.

For small ``n`` the space of initial configurations is finite: a valid
initial closed chain is a closed unit-step walk on the grid (robots may
share cells as long as chain neighbours do not).  This package
enumerates *all* of them up to symmetry and verifies the theorem on
every single one — a model-checking-style complement to the randomized
property tests.
"""

from repro.verification.enumerate_chains import (
    VerificationReport,
    canonical_signature,
    closed_edge_sequences,
    count_closed_chains,
    enumerate_closed_chains,
    verify_all,
)

__all__ = [
    "closed_edge_sequences",
    "enumerate_closed_chains",
    "canonical_signature",
    "count_closed_chains",
    "verify_all",
    "VerificationReport",
]
