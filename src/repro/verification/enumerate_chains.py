"""Enumeration of all closed chains of a given length, and verification.

A valid initial configuration of ``n`` robots is (up to translation) a
closed walk ``e_1 … e_n`` of axis unit steps summing to zero; chain
neighbours automatically occupy distinct cells, and non-neighbour
collisions are allowed by the model.  Symmetries quotiented out:

* translation — walks start at the origin;
* rotation (no compass) — plus reflections: the dihedral group acts on
  the edge codes;
* re-labelling — robots are indistinguishable, so cyclic rotations and
  reversal of the edge sequence describe the same configuration.

``verify_all(n)`` gathers every canonical representative and reports
failures — an exhaustive check of Theorem 1 for small ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.simulator import gather
from repro.grid.lattice import Vec

#: edge codes: 0=E, 1=N, 2=W, 3=S (rotation = +1 mod 4, reflection swaps)
_CODE_TO_VEC: Tuple[Vec, ...] = ((1, 0), (0, 1), (-1, 0), (0, -1))

#: code permutations realising the dihedral group on directions
_DIHEDRAL_CODE_MAPS: Tuple[Tuple[int, ...], ...] = (
    (0, 1, 2, 3),   # identity
    (1, 2, 3, 0),   # rot90
    (2, 3, 0, 1),   # rot180
    (3, 0, 1, 2),   # rot270
    (2, 1, 0, 3),   # flip x
    (0, 3, 2, 1),   # flip y
    (1, 0, 3, 2),   # flip diagonal
    (3, 2, 1, 0),   # flip antidiagonal
)


def closed_edge_sequences(n: int) -> Iterator[Tuple[int, ...]]:
    """All closed walks of ``n`` unit steps, as edge-code tuples.

    Walks start with code 0 (east) — a free rotation normalisation —
    and are pruned by the Manhattan-distance-to-origin bound.
    """
    if n < 4 or n % 2 != 0:
        return
    seq: List[int] = [0]

    def backtrack(x: int, y: int, remaining: int) -> Iterator[Tuple[int, ...]]:
        if remaining == 0:
            if x == 0 and y == 0:
                yield tuple(seq)
            return
        if abs(x) + abs(y) > remaining:
            return
        for code in range(4):
            dx, dy = _CODE_TO_VEC[code]
            seq.append(code)
            yield from backtrack(x + dx, y + dy, remaining - 1)
            seq.pop()

    yield from backtrack(1, 0, n - 1)


def canonical_signature(codes: Sequence[int]) -> Tuple[int, ...]:
    """Smallest image of an edge-code sequence under all symmetries.

    Symmetries: the 8 dihedral code maps × ``n`` cyclic rotations ×
    traversal reversal (reversing the walk flips each edge's direction
    and the order).
    """
    n = len(codes)
    best: Optional[Tuple[int, ...]] = None
    reversed_codes = tuple((c + 2) % 4 for c in reversed(codes))
    for variant in (tuple(codes), reversed_codes):
        for mapping in _DIHEDRAL_CODE_MAPS:
            mapped = tuple(mapping[c] for c in variant)
            for shift in range(n):
                cand = mapped[shift:] + mapped[:shift]
                if best is None or cand < best:
                    best = cand
    assert best is not None
    return best


def _codes_to_positions(codes: Sequence[int]) -> List[Vec]:
    pts: List[Vec] = [(0, 0)]
    for c in codes[:-1]:
        dx, dy = _CODE_TO_VEC[c]
        last = pts[-1]
        pts.append((last[0] + dx, last[1] + dy))
    return pts


def enumerate_closed_chains(n: int, dedup: bool = True) -> Iterator[List[Vec]]:
    """All closed chains of length ``n`` (positions, origin-anchored).

    With ``dedup`` (default) one representative per symmetry class is
    produced; otherwise every east-starting walk.
    """
    if not dedup:
        for codes in closed_edge_sequences(n):
            yield _codes_to_positions(codes)
        return
    seen = set()
    for codes in closed_edge_sequences(n):
        sig = canonical_signature(codes)
        if sig in seen:
            continue
        seen.add(sig)
        yield _codes_to_positions(sig)


def count_closed_chains(n: int, dedup: bool = True) -> int:
    """Number of (canonical) closed chains of length ``n``."""
    return sum(1 for _ in enumerate_closed_chains(n, dedup=dedup))


@dataclass
class VerificationReport:
    """Outcome of an exhaustive verification sweep."""

    n: int
    total: int = 0
    gathered: int = 0
    max_rounds: int = 0
    failures: List[List[Vec]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every enumerated configuration gathered."""
        return self.total > 0 and self.gathered == self.total


def verify_all(n: int, params: Parameters = DEFAULT_PARAMETERS,
               dedup: bool = True, engine: str = "reference",
               limit: Optional[int] = None) -> VerificationReport:
    """Gather every closed chain of length ``n``; report the outcome.

    ``limit`` caps the number of configurations (for sampling sweeps of
    larger ``n``); the report records any failing initial configuration
    verbatim so it can be replayed.
    """
    report = VerificationReport(n=n)
    for i, pts in enumerate(enumerate_closed_chains(n, dedup=dedup)):
        if limit is not None and i >= limit:
            break
        report.total += 1
        result = gather(list(pts), params=params, engine=engine,
                        check_invariants=False)
        if result.gathered:
            report.gathered += 1
            report.max_rounds = max(report.max_rounds, result.rounds)
        else:
            report.failures.append(pts)
    return report
