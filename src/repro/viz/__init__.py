"""Visualisation: ASCII and SVG renderers, trace animation."""

from repro.viz.ascii_render import render_ascii, render_rounds, render_trace_strip
from repro.viz.svg_render import render_svg, save_svg
from repro.viz.animate import trace_frames, save_frames
from repro.viz.plots import Series, line_chart, save_line_chart

__all__ = [
    "render_ascii",
    "render_rounds",
    "render_trace_strip",
    "render_svg",
    "save_svg",
    "trace_frames",
    "save_frames",
    "Series",
    "line_chart",
    "save_line_chart",
]
