"""Trace animation: export per-round frames (ASCII or SVG)."""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.core.events import Snapshot, Trace
from repro.viz.ascii_render import render_snapshot
from repro.viz.svg_render import render_svg


def trace_frames(trace: Trace, every: int = 1, fmt: str = "ascii") -> List[str]:
    """Render the snapshots of a trace to frames.

    ``fmt`` is ``"ascii"`` or ``"svg"``.
    """
    frames: List[str] = []
    for snap in trace.snapshots[::every]:
        if fmt == "ascii":
            frames.append(render_snapshot(snap))
        elif fmt == "svg":
            id_to_pos = dict(zip(snap.ids, snap.positions))
            runners = {id_to_pos[r.robot_id]: r.direction
                       for r in snap.runs if r.robot_id in id_to_pos}
            frames.append(render_svg(list(snap.positions), runners=runners,
                                     title=f"round {snap.round_index}"))
        else:
            raise ValueError(f"unknown frame format {fmt!r}")
    return frames


def save_frames(trace: Trace, directory: str, every: int = 1,
                fmt: str = "svg") -> List[str]:
    """Write one file per rendered frame; returns the file paths."""
    os.makedirs(directory, exist_ok=True)
    ext = "svg" if fmt == "svg" else "txt"
    paths: List[str] = []
    for snap, frame in zip(trace.snapshots[::every], trace_frames(trace, every, fmt)):
        path = os.path.join(directory, f"round_{snap.round_index:05d}.{ext}")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(frame)
        paths.append(path)
    return paths
