"""ASCII rendering of chains and traces.

Terminal-friendly views used by the examples, the CLI and debugging
sessions.  Cells show robot multiplicity (``1``-``9``, ``+`` for more);
optional run markers overlay ``>``/``<`` for runner cells.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.grid.lattice import Vec, bounding_box
from repro.core.events import Snapshot


def render_ascii(positions: Sequence[Vec],
                 runners: Optional[Dict[Vec, int]] = None,
                 empty: str = "·") -> str:
    """Render a set of robot positions as a text grid.

    ``runners`` maps positions to chain directions; such cells render as
    ``>`` (direction +1) or ``<`` (direction -1) regardless of count.
    The y axis points up, matching the paper's figures.
    """
    if not positions:
        return "(empty chain)"
    box = bounding_box(positions)
    counts = Counter(positions)
    runners = runners or {}
    rows: List[str] = []
    for y in range(box.max_y, box.min_y - 1, -1):
        row = []
        for x in range(box.min_x, box.max_x + 1):
            p = (x, y)
            if p in runners:
                row.append(">" if runners[p] > 0 else "<")
            elif p in counts:
                c = counts[p]
                row.append(str(c) if c <= 9 else "+")
            else:
                row.append(empty)
        rows.append("".join(row))
    return "\n".join(rows)


def render_snapshot(snap: Snapshot, empty: str = "·") -> str:
    """Render a trace snapshot with runner markers."""
    id_to_pos = dict(zip(snap.ids, snap.positions))
    runners = {id_to_pos[r.robot_id]: r.direction
               for r in snap.runs if r.robot_id in id_to_pos}
    return render_ascii(list(snap.positions), runners=runners, empty=empty)


def render_rounds(frames: Sequence[str], labels: Optional[Sequence[str]] = None,
                  gap: int = 3) -> str:
    """Place several rendered frames side by side (like the paper's figures)."""
    blocks = [f.splitlines() for f in frames]
    heights = [len(b) for b in blocks]
    height = max(heights) if heights else 0
    widths = [max((len(l) for l in b), default=0) for b in blocks]
    sep = " " * gap
    out: List[str] = []
    if labels:
        out.append(sep.join(label.ljust(w) for label, w in zip(labels, widths)))
    for row in range(height):
        cells = []
        for b, w in zip(blocks, widths):
            line = b[row] if row < len(b) else ""
            cells.append(line.ljust(w))
        out.append(sep.join(cells))
    return "\n".join(out)


def render_trace_strip(snapshots: Sequence[Snapshot], every: int = 1,
                       max_frames: int = 8) -> str:
    """Render a trace as a film strip of at most ``max_frames`` rounds."""
    chosen = snapshots[::every][:max_frames]
    frames = [render_snapshot(s) for s in chosen]
    labels = [f"round {s.round_index}" for s in chosen]
    return render_rounds(frames, labels=labels)
