"""Dependency-free SVG line charts for experiment series.

matplotlib is unavailable offline, so the experiment figures (rounds vs
n, ablation sweeps) are rendered as small hand-built SVGs: axes, ticks,
polyline series with markers, and a legend.  Enough for the paper-style
scaling plots; not a general plotting library.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

_PALETTE = ("#1f6feb", "#d73a49", "#2da44e", "#bf8700", "#8250df", "#57606a")


@dataclass
class Series:
    """One polyline: a label and its (x, y) points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)


def _nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(count - 1, 1)
    magnitude = 10 ** int(f"{raw:e}".split("e")[1])
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if span / step <= count:
            break
    first = step * int(lo / step)
    ticks = []
    t = first
    while t <= hi + step / 2:
        if t >= lo - step / 2:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def line_chart(series: Sequence[Series], title: str = "",
               x_label: str = "", y_label: str = "",
               width: int = 560, height: int = 360) -> str:
    """Render series as an SVG line chart string."""
    pad_l, pad_r, pad_t, pad_b = 64, 16, 36, 48
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b

    xs = [p[0] for s in series for p in s.points]
    ys = [p[1] for s in series for p in s.points]
    if not xs:
        xs, ys = [0.0, 1.0], [0.0, 1.0]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(min(ys), 0.0), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1

    def sx(x: float) -> float:
        return pad_l + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return pad_t + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}' "
        f"font-family='sans-serif'>",
        f"<rect width='{width}' height='{height}' fill='white'/>",
    ]
    if title:
        parts.append(f"<text x='{width / 2:.0f}' y='22' text-anchor='middle' "
                     f"font-size='15'>{html.escape(title)}</text>")
    # axes
    parts.append(f"<line x1='{pad_l}' y1='{pad_t}' x2='{pad_l}' "
                 f"y2='{pad_t + plot_h}' stroke='black'/>")
    parts.append(f"<line x1='{pad_l}' y1='{pad_t + plot_h}' "
                 f"x2='{pad_l + plot_w}' y2='{pad_t + plot_h}' stroke='black'/>")
    for t in _nice_ticks(x_lo, x_hi):
        x = sx(t)
        parts.append(f"<line x1='{x:.1f}' y1='{pad_t + plot_h}' x2='{x:.1f}' "
                     f"y2='{pad_t + plot_h + 5}' stroke='black'/>")
        parts.append(f"<text x='{x:.1f}' y='{pad_t + plot_h + 18}' "
                     f"text-anchor='middle' font-size='11'>{t:g}</text>")
    for t in _nice_ticks(y_lo, y_hi):
        y = sy(t)
        parts.append(f"<line x1='{pad_l - 5}' y1='{y:.1f}' x2='{pad_l}' "
                     f"y2='{y:.1f}' stroke='black'/>")
        parts.append(f"<text x='{pad_l - 8}' y='{y + 4:.1f}' "
                     f"text-anchor='end' font-size='11'>{t:g}</text>")
        parts.append(f"<line x1='{pad_l}' y1='{y:.1f}' x2='{pad_l + plot_w}' "
                     f"y2='{y:.1f}' stroke='#eeeeee'/>")
    if x_label:
        parts.append(f"<text x='{pad_l + plot_w / 2:.0f}' y='{height - 8}' "
                     f"text-anchor='middle' font-size='12'>"
                     f"{html.escape(x_label)}</text>")
    if y_label:
        cx, cy = 16, pad_t + plot_h / 2
        parts.append(f"<text x='{cx}' y='{cy:.0f}' text-anchor='middle' "
                     f"font-size='12' transform='rotate(-90 {cx} {cy:.0f})'>"
                     f"{html.escape(y_label)}</text>")
    # series
    for i, s in enumerate(sorted(series, key=lambda s: s.label)):
        color = _PALETTE[i % len(_PALETTE)]
        pts = sorted(s.points)
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        if len(pts) > 1:
            parts.append(f"<polyline points='{path}' fill='none' "
                         f"stroke='{color}' stroke-width='2'/>")
        for x, y in pts:
            parts.append(f"<circle cx='{sx(x):.1f}' cy='{sy(y):.1f}' r='3' "
                         f"fill='{color}'/>")
        ly = pad_t + 14 + 16 * i
        lx = pad_l + plot_w - 130
        parts.append(f"<line x1='{lx}' y1='{ly - 4}' x2='{lx + 18}' "
                     f"y2='{ly - 4}' stroke='{color}' stroke-width='2'/>")
        parts.append(f"<text x='{lx + 24}' y='{ly}' font-size='11'>"
                     f"{html.escape(s.label)}</text>")
    parts.append("</svg>")
    return "".join(parts)


def save_line_chart(path: str, series: Sequence[Series], **kwargs) -> str:
    """Render and write a line chart; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(line_chart(series, **kwargs))
    return path
