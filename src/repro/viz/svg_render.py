"""SVG rendering of chains (publication-style figures, no dependencies).

Robots are dots, chain edges are line segments, runners get direction
arrows.  Output is a plain SVG string; :func:`save_svg` writes it to a
file.  matplotlib is deliberately not used (not available offline).
"""

from __future__ import annotations

import html
from typing import Dict, Optional, Sequence

from repro.grid.lattice import Vec, bounding_box

_STYLE = {
    "robot_fill": "#1f6feb",
    "robot_stroke": "#0b3d91",
    "edge_stroke": "#999999",
    "runner_fill": "#d73a49",
    "coincident_fill": "#6f42c1",
}


def render_svg(positions: Sequence[Vec], cell: int = 24, radius: float = 6.5,
               runners: Optional[Dict[Vec, int]] = None,
               title: str = "", closed: bool = True) -> str:
    """Render a chain as an SVG document string.

    ``runners`` marks runner positions with their chain direction.
    ``closed`` draws the wrap-around edge.
    """
    if not positions:
        return "<svg xmlns='http://www.w3.org/2000/svg' width='10' height='10'/>"
    box = bounding_box(positions)
    pad = cell
    width = box.width * cell + 2 * pad
    height = box.height * cell + 2 * pad

    def xy(p: Vec):
        return (pad + (p[0] - box.min_x) * cell,
                pad + (box.max_y - p[1]) * cell)   # flip y: paper draws y up

    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>",
        f"<rect width='{width}' height='{height}' fill='white'/>",
    ]
    if title:
        parts.append(
            f"<text x='{pad}' y='{pad * 0.7:.1f}' font-family='sans-serif' "
            f"font-size='{cell * 0.55:.1f}'>{html.escape(title)}</text>")

    n = len(positions)
    last = n if closed else n - 1
    for i in range(last):
        a, b = positions[i], positions[(i + 1) % n]
        (x1, y1), (x2, y2) = xy(a), xy(b)
        parts.append(
            f"<line x1='{x1}' y1='{y1}' x2='{x2}' y2='{y2}' "
            f"stroke='{_STYLE['edge_stroke']}' stroke-width='2'/>")

    seen: Dict[Vec, int] = {}
    for p in positions:
        seen[p] = seen.get(p, 0) + 1
    runners = runners or {}
    for p, count in seen.items():
        x, y = xy(p)
        if p in runners:
            fill = _STYLE["runner_fill"]
        elif count > 1:
            fill = _STYLE["coincident_fill"]
        else:
            fill = _STYLE["robot_fill"]
        parts.append(
            f"<circle cx='{x}' cy='{y}' r='{radius}' fill='{fill}' "
            f"stroke='{_STYLE['robot_stroke']}' stroke-width='1'/>")
        if count > 1:
            parts.append(
                f"<text x='{x + radius}' y='{y - radius}' font-family='sans-serif' "
                f"font-size='{cell * 0.45:.1f}'>{count}</text>")
        if p in runners:
            d = runners[p]
            arrow = "&#8594;" if d > 0 else "&#8592;"
            parts.append(
                f"<text x='{x - radius}' y='{y - radius * 1.3}' font-family='sans-serif' "
                f"font-size='{cell * 0.5:.1f}'>{arrow}</text>")
    parts.append("</svg>")
    return "".join(parts)


def save_svg(path: str, positions: Sequence[Vec], **kwargs) -> str:
    """Render and write an SVG file; returns the path."""
    svg = render_svg(positions, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
    return path
