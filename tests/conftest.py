"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.chains import (
    comb,
    crenellation,
    needle,
    outline,
    perturb,
    random_chain,
    random_polyomino,
)

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def params() -> Parameters:
    return DEFAULT_PARAMETERS


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

@st.composite
def closed_chain_positions(draw, max_cells: int = 40):
    """Random valid initial closed chains via random polyomino outlines."""
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    cells = draw(st.integers(min_value=1, max_value=max_cells))
    elong = draw(st.sampled_from([0.0, 0.3, 0.7]))
    blob = random_polyomino(cells, random.Random(seed), elongation=elong)
    return outline(blob)


@st.composite
def small_vectors(draw, bound: int = 50):
    x = draw(st.integers(min_value=-bound, max_value=bound))
    y = draw(st.integers(min_value=-bound, max_value=bound))
    return (x, y)


@st.composite
def merge_dense_chain_positions(draw, max_teeth: int = 10):
    """Chains whose early rounds are dominated by merge events.

    Width-1 teeth (crenellations, combs, needles) are spike patterns:
    every tooth fires a merge in the first rounds, so robots go
    coincident in many cells at once — long blocks of zero edges, the
    stress input for the contraction survivor pass and the merge
    planner's overlap resolution.  Optional perturbation adds
    off-phase spikes so merges also spread over later rounds.
    """
    family = draw(st.sampled_from(
        ["crenellation", "comb", "needle", "perturbed_crenellation"]))
    if family == "crenellation":
        return crenellation(teeth=draw(st.integers(2, max_teeth)),
                            tooth_width=1,
                            base_height=draw(st.integers(2, 8)))
    if family == "comb":
        return comb(teeth=draw(st.integers(2, 6)),
                    tooth_height=draw(st.integers(2, 6)))
    if family == "needle":
        return needle(draw(st.integers(3, 16)))
    pts = crenellation(teeth=draw(st.integers(2, 6)), tooth_width=1,
                       base_height=4)
    return perturb(list(pts), draw(st.integers(1, 8)),
                   random.Random(draw(st.integers(0, 2 ** 16))))
