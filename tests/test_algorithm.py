"""decide_run: the per-round run policy (paper Fig. 15 step 2)."""

import pytest

from repro.grid.lattice import EAST, NORTH, WEST
from repro.core.algorithm import decide_run
from repro.core.chain import ClosedChain
from repro.core.config import DEFAULT_PARAMETERS, Parameters
from repro.core.runs import RunMode, RunRegistry, StopReason
from repro.core.view import ChainWindow
from repro.chains import outline, rectangle_ring, square_ring

P = DEFAULT_PARAMETERS


def _setup(positions, runner_index, direction, axis=EAST, mode=RunMode.NORMAL):
    chain = ClosedChain(positions)
    registry = RunRegistry()
    run = registry.start(chain.id_at(runner_index), direction, axis, 0,
                         mode=mode)
    window = ChainWindow(chain, runner_index, P.viewing_path_length,
                         registry.runs_lookup())
    return chain, registry, run, window


class TestOperationA:
    def test_reshapement_hop(self):
        # corner of a mergeless rectangle: behind perpendicular, 4 aligned
        chain, reg, run, w = _setup(rectangle_ring(20, 13), 0, 1)
        dec = decide_run(run, w, P, set())
        assert dec.stop_reason is None
        assert dec.hop == (1, 1)               # behind (0,1) + ahead (1,0)

    def test_no_hop_when_behind_collinear(self):
        chain, reg, run, w = _setup(rectangle_ring(20, 13), 5, 1)
        dec = decide_run(run, w, P, set())
        assert dec.hop is None
        assert dec.mode_after is RunMode.NORMAL


class TestOperationB:
    def test_travel_entry(self):
        cells = {(x, y) for x in range(13) for y in range(13)}
        cells |= {(x, y) for x in range(13, 26) for y in range(1, 13)}
        ring = outline(cells)
        chain = ClosedChain(ring)
        idx = chain.positions.index((11, 0))
        direction = 1 if chain.position(idx + 1) == (12, 0) else -1
        _, reg, run, w = _setup(ring, idx, direction)
        dec = decide_run(run, w, P, set())
        assert dec.mode_after is RunMode.TRAVEL
        assert dec.travel_steps_after == P.travel_steps
        assert dec.target_after == w.id_at(3 * direction)

    def test_travel_continues_and_counts_down(self):
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        run.mode = RunMode.TRAVEL
        run.target_id = chain.id_at(9)
        run.travel_steps_left = 2
        dec = decide_run(run, w, P, set())
        assert dec.mode_after is RunMode.TRAVEL
        assert dec.travel_steps_after == 1
        assert dec.hop is None

    def test_travel_arrival_resumes_normal(self):
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        run.mode = RunMode.TRAVEL
        run.target_id = chain.id_at(5)          # already on the target
        run.travel_steps_left = 1
        dec = decide_run(run, w, P, set())
        assert dec.mode_after in (RunMode.NORMAL, RunMode.TRAVEL)
        assert dec.stop_reason is None


class TestTerminations:
    def test_merge_participation(self):
        chain, reg, run, w = _setup(rectangle_ring(20, 13), 5, 1)
        dec = decide_run(run, w, P, {chain.id_at(5)})
        assert dec.stop_reason is StopReason.MERGE_PARTICIPATION

    def test_sequent_run_ahead(self):
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        reg.start(chain.id_at(10), 1, EAST, 0)   # same direction, 5 ahead
        dec = decide_run(run, w, P, set())
        assert dec.stop_reason is StopReason.SEQUENT_RUN_AHEAD

    def test_sequent_guard_with_closer_oncoming(self):
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        reg.start(chain.id_at(10), 1, EAST, 0)   # sequent at 5
        reg.start(chain.id_at(9), -1, WEST, 0)   # oncoming at 4 (closer)
        dec = decide_run(run, w, P, set())
        assert dec.stop_reason is None           # guard suppresses cond 1

    def test_sequent_guard_disabled(self):
        params = Parameters(sequent_guard=False)
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        reg.start(chain.id_at(10), 1, EAST, 0)
        reg.start(chain.id_at(9), -1, WEST, 0)
        dec = decide_run(run, w, params, set())
        assert dec.stop_reason is StopReason.SEQUENT_RUN_AHEAD

    def test_endpoint_visible(self):
        chain, reg, run, w = _setup(square_ring(10), 2, 1)
        dec = decide_run(run, w, P, set())
        assert dec.stop_reason is StopReason.ENDPOINT_VISIBLE

    def test_endpoint_guard_with_oncoming(self):
        chain = ClosedChain(square_ring(10))
        reg = RunRegistry()
        run = reg.start(chain.id_at(2), 1, EAST, 0)
        reg.start(chain.id_at(7), -1, WEST, 0)   # partner approaching
        w = ChainWindow(chain, 2, P.viewing_path_length, reg.runs_lookup())
        dec = decide_run(run, w, P, set())
        assert dec.stop_reason is None

    def test_endpoint_guard_disabled(self):
        params = Parameters(endpoint_guard=False)
        chain = ClosedChain(square_ring(10))
        reg = RunRegistry()
        run = reg.start(chain.id_at(2), 1, EAST, 0)
        reg.start(chain.id_at(7), -1, WEST, 0)
        w = ChainWindow(chain, 2, params.viewing_path_length, reg.runs_lookup())
        dec = decide_run(run, w, params, set())
        assert dec.stop_reason is StopReason.ENDPOINT_VISIBLE


class TestPassing:
    def test_trigger_at_distance_three(self):
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        other = reg.start(chain.id_at(8), -1, WEST, 0)
        dec = decide_run(run, w, P, set())
        assert dec.mode_after is RunMode.PASSING
        assert dec.target_after == other.robot_id

    def test_no_trigger_at_distance_four(self):
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        reg.start(chain.id_at(9), -1, WEST, 0)
        dec = decide_run(run, w, P, set())
        assert dec.mode_after is not RunMode.PASSING

    def test_travel_target_kept_when_interrupted(self):
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        run.mode = RunMode.TRAVEL
        settled = chain.id_at(9)
        run.target_id = settled
        run.travel_steps_left = 3
        reg.start(chain.id_at(8), -1, WEST, 0)
        dec = decide_run(run, w, P, set())
        assert dec.mode_after is RunMode.PASSING
        assert dec.target_after == settled       # Fig. 14

    def test_passing_continues_until_target(self):
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        run.mode = RunMode.PASSING
        run.target_id = chain.id_at(7)
        dec = decide_run(run, w, P, set())
        assert dec.mode_after is RunMode.PASSING
        assert dec.hop is None

    def test_passing_arrival_resumes(self):
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1)
        run.mode = RunMode.PASSING
        run.target_id = chain.id_at(5)           # arrived
        dec = decide_run(run, w, P, set())
        assert dec.mode_after is not RunMode.PASSING
        assert dec.stop_reason is None


class TestCornerCut:
    def test_init_corner_hop(self):
        chain, reg, run, w = _setup(square_ring(16), 0, 1, axis=EAST,
                                    mode=RunMode.INIT_CORNER)
        dec = decide_run(run, w, P, set())
        assert dec.hop == (1, 1)                 # toward both neighbours
        assert dec.mode_after is RunMode.NORMAL

    def test_init_corner_shape_gone(self):
        # robot no longer at a corner: no hop, just move on
        chain, reg, run, w = _setup(rectangle_ring(40, 13), 5, 1,
                                    mode=RunMode.INIT_CORNER)
        dec = decide_run(run, w, P, set())
        assert dec.hop is None
        assert dec.mode_after is RunMode.NORMAL
