"""Analysis tooling: fits, summaries, good pairs, progress accounting."""

import pytest

from repro.core.chain import ClosedChain
from repro.core.simulator import Simulator, gather
from repro.chains import (
    rectangle_ring, square_ring, stairway_octagon, needle,
)
from repro.analysis import (
    classify_pairs,
    find_start_points,
    fit_rounds,
    format_table,
    lemma1_windows,
    merge_free_intervals,
    merges_per_wave,
    summarize,
)
from repro.analysis.good_pairs import good_pair_exists


class TestLinearFit:
    def test_perfect_line(self):
        fit = fit_rounds([10, 20, 30], [25, 45, 65])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(40) == pytest.approx(85.0)
        assert "rounds" in fit.describe()

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_rounds([1], [2])

    def test_real_needle_scaling_is_linear(self):
        ns, rounds = [], []
        for k in (20, 40, 80, 160):
            res = gather(needle(k))
            ns.append(res.initial_n)
            rounds.append(res.rounds)
        fit = fit_rounds(ns, rounds)
        assert fit.r_squared > 0.99
        assert fit.slope < 27                  # the theorem's constant


class TestSummaries:
    def test_summarize_fields(self):
        result = gather(square_ring(8), record_trace=True)
        s = summarize(result)
        assert s["n"] == 28 and s["gathered"] == 1
        assert s["rounds"] == result.rounds
        assert s["total_hops"] > 0

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 4 + 0 + 0 or len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])


class TestGoodPairs:
    def test_square_has_good_pairs(self):
        chain = ClosedChain(square_ring(16))
        pairs = classify_pairs(chain)
        assert pairs
        assert all(p.good for p in pairs)      # ring sides all point inward

    def test_start_points_match_corners(self):
        chain = ClosedChain(square_ring(16))
        pts = find_start_points(chain)
        assert len(pts) == 8                   # 4 corners x 2 directions

    def test_octagon_good_pair_exists(self):
        chain = ClosedChain(stairway_octagon(16, 3))
        assert good_pair_exists(chain)

    def test_pair_lengths_positive(self):
        chain = ClosedChain(rectangle_ring(30, 13))
        for p in classify_pairs(chain):
            assert 2 <= p.length <= chain.n


class TestProgress:
    def test_merge_free_intervals(self):
        sim = Simulator(square_ring(20), record_trace=True)
        res = sim.run()
        gaps = merge_free_intervals(res.reports)
        assert all(g > 0 for g in gaps)
        assert sum(gaps) <= res.rounds

    def test_lemma1_windows(self):
        sim = Simulator(square_ring(20), record_trace=True)
        res = sim.run()
        w = lemma1_windows(res.reports, 13)
        assert w["windows_with_neither"] == 0
        assert w["windows_with_merge"] >= 1

    def test_merges_per_wave_sums_to_total(self):
        sim = Simulator(square_ring(20), record_trace=True)
        res = sim.run()
        assert sum(merges_per_wave(res.reports, 13)) == res.total_merges
